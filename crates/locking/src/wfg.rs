//! Waits-for graphs and deadlock cycles.
//!
//! A transaction waits for the holder of the lock it needs next; a cycle in
//! the waits-for relation is a deadlock (the discrete counterpart of the
//! geometric region `D` in Figure 3).

use ccopt_model::ids::TxnId;

/// A waits-for graph over `n` transactions.
#[derive(Clone, Debug)]
pub struct WaitsForGraph {
    n: usize,
    edges: Vec<bool>,
}

impl WaitsForGraph {
    /// Empty graph over `n` transactions.
    pub fn new(n: usize) -> Self {
        WaitsForGraph {
            n,
            edges: vec![false; n * n],
        }
    }

    /// Record that `waiter` waits for `holder`.
    pub fn add_wait(&mut self, waiter: TxnId, holder: TxnId) {
        self.edges[waiter.index() * self.n + holder.index()] = true;
    }

    /// Does `waiter` wait for `holder`?
    pub fn waits(&self, waiter: TxnId, holder: TxnId) -> bool {
        self.edges[waiter.index() * self.n + holder.index()]
    }

    /// All wait edges.
    pub fn edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for k in 0..self.n {
                if self.edges[i * self.n + k] {
                    out.push((TxnId(i as u32), TxnId(k as u32)));
                }
            }
        }
        out
    }

    /// Find a deadlock cycle, if any (DFS with colors).
    pub fn find_cycle(&self) -> Option<Vec<TxnId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Gray,
            Black,
        }
        let mut color = vec![Color::White; self.n];
        let mut stack: Vec<usize> = Vec::new();

        fn dfs(
            g: &WaitsForGraph,
            u: usize,
            color: &mut [Color],
            stack: &mut Vec<usize>,
        ) -> Option<Vec<TxnId>> {
            color[u] = Color::Gray;
            stack.push(u);
            for v in 0..g.n {
                if !g.edges[u * g.n + v] {
                    continue;
                }
                match color[v] {
                    Color::Gray => {
                        let start = stack.iter().position(|&w| w == v).expect("on stack");
                        return Some(stack[start..].iter().map(|&w| TxnId(w as u32)).collect());
                    }
                    Color::White => {
                        if let Some(c) = dfs(g, v, color, stack) {
                            return Some(c);
                        }
                    }
                    Color::Black => {}
                }
            }
            stack.pop();
            color[u] = Color::Black;
            None
        }

        for u in 0..self.n {
            if color[u] == Color::White {
                if let Some(c) = dfs(self, u, &mut color, &mut stack) {
                    return Some(c);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_cycle() {
        let g = WaitsForGraph::new(3);
        assert!(g.find_cycle().is_none());
        assert!(g.edges().is_empty());
    }

    #[test]
    fn two_cycle_detected() {
        let mut g = WaitsForGraph::new(2);
        g.add_wait(TxnId(0), TxnId(1));
        g.add_wait(TxnId(1), TxnId(0));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 2);
        assert!(g.waits(TxnId(0), TxnId(1)));
    }

    #[test]
    fn chain_is_acyclic() {
        let mut g = WaitsForGraph::new(4);
        g.add_wait(TxnId(0), TxnId(1));
        g.add_wait(TxnId(1), TxnId(2));
        g.add_wait(TxnId(2), TxnId(3));
        assert!(g.find_cycle().is_none());
    }

    #[test]
    fn three_cycle_found_even_with_tail() {
        let mut g = WaitsForGraph::new(5);
        g.add_wait(TxnId(0), TxnId(1)); // tail into the cycle
        g.add_wait(TxnId(1), TxnId(2));
        g.add_wait(TxnId(2), TxnId(3));
        g.add_wait(TxnId(3), TxnId(1));
        let c = g.find_cycle().unwrap();
        assert_eq!(c.len(), 3);
        // The cycle is 1 -> 2 -> 3 -> 1 in some rotation.
        assert!(c.contains(&TxnId(1)) && c.contains(&TxnId(2)) && c.contains(&TxnId(3)));
    }
}
