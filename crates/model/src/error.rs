//! Error types for the model crate.

use crate::expr::EvalError;
use crate::ids::{StepId, TxnId};
use std::fmt;

/// Errors produced while constructing or executing transaction systems.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ModelError {
    /// A step was submitted for execution out of program order.
    NotEligible {
        /// The offending step.
        step: StepId,
        /// The program counter the transaction was actually at.
        pc: u32,
    },
    /// A step id referenced a transaction or position outside the syntax.
    UnknownStep(StepId),
    /// The initial global state has the wrong arity for the system.
    StateArity {
        /// Number of variables the system declares.
        expected: usize,
        /// Number of values supplied.
        got: usize,
    },
    /// A step function failed to evaluate.
    Eval {
        /// The step whose function failed.
        step: StepId,
        /// The underlying expression error.
        source: EvalError,
    },
    /// The paper's basic assumption failed: a transaction run alone mapped a
    /// consistent state to an inconsistent one.
    TransactionIncorrect {
        /// The incorrect transaction.
        txn: TxnId,
        /// A consistent initial state it breaks (rendered).
        from_state: String,
    },
    /// Syntax validation failed.
    InvalidSyntax(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::NotEligible { step, pc } => write!(
                f,
                "step {step} is not eligible: transaction is at step {}",
                pc + 1
            ),
            ModelError::UnknownStep(s) => write!(f, "unknown step {s}"),
            ModelError::StateArity { expected, got } => {
                write!(f, "state has {got} values but system declares {expected}")
            }
            ModelError::Eval { step, source } => {
                write!(f, "evaluating f at {step}: {source}")
            }
            ModelError::TransactionIncorrect { txn, from_state } => write!(
                f,
                "basic assumption violated: {txn} alone breaks consistency from {from_state}"
            ),
            ModelError::InvalidSyntax(msg) => write!(f, "invalid syntax: {msg}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ModelError::NotEligible {
            step: StepId::new(0, 1),
            pc: 0,
        };
        assert!(e.to_string().contains("T1,2"));
        let e = ModelError::StateArity {
            expected: 4,
            got: 2,
        };
        assert!(e.to_string().contains('4'));
        assert!(e.to_string().contains('2'));
        let e = ModelError::TransactionIncorrect {
            txn: TxnId(2),
            from_state: "(0)".into(),
        };
        assert!(e.to_string().contains("T3"));
    }
}
