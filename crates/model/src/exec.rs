//! Execution of transaction steps and step sequences.
//!
//! Section 2: "if transaction step T_ij is eligible for execution at state
//! (J, L, G) [...] then its execution modifies the three components of the
//! state as follows: j_i ← j_i + 1; t_ij ← x_ij; x_ij ← ρ_ij(t_i1, ..., t_ij)."

use crate::error::ModelError;
use crate::ids::{StepId, TxnId};
use crate::state::{GlobalState, SystemState};
use crate::system::TransactionSystem;
use crate::value::Value;

/// Step-by-step executor for a transaction system.
///
/// The executor borrows the system; states are owned by the caller so that
/// search procedures can fork them freely.
pub struct Executor<'a> {
    sys: &'a TransactionSystem,
    format: Vec<u32>,
}

impl<'a> Executor<'a> {
    /// Create an executor for `sys`.
    pub fn new(sys: &'a TransactionSystem) -> Self {
        Executor {
            format: sys.format(),
            sys,
        }
    }

    /// The system being executed.
    pub fn system(&self) -> &TransactionSystem {
        self.sys
    }

    /// Fresh initial state with the given globals.
    pub fn initial_state(&self, globals: GlobalState) -> Result<SystemState, ModelError> {
        if globals.len() != self.sys.syntax.num_vars() {
            return Err(ModelError::StateArity {
                expected: self.sys.syntax.num_vars(),
                got: globals.len(),
            });
        }
        Ok(SystemState::initial(&self.format, globals))
    }

    /// Execute one step, enforcing eligibility.
    pub fn execute_step(&self, state: &mut SystemState, step: StepId) -> Result<(), ModelError> {
        let ti = step.txn.index();
        if ti >= self.format.len() || step.idx >= self.format[ti] {
            return Err(ModelError::UnknownStep(step));
        }
        if !state.eligible(step) {
            return Err(ModelError::NotEligible {
                step,
                pc: state.pc[ti],
            });
        }
        let var = self.sys.syntax.var_of(step);
        // t_ij <- x_ij
        let read = state
            .globals
            .get(var)
            .expect("syntax validated: variable in range");
        state.locals[ti][step.idx as usize] = Some(read);
        // x_ij <- rho_ij(t_i1 .. t_ij)
        let args = state.declared_locals(step.txn, step.idx as usize + 1);
        let new_value = self.sys.interp.apply(step, &args)?;
        state.globals.set(var, new_value);
        // j_i <- j_i + 1
        state.pc[ti] += 1;
        Ok(())
    }

    /// Execute a sequence of steps from the given initial globals, returning
    /// the final state. The sequence need not contain every step of the
    /// system, but must respect program order.
    pub fn run_sequence(
        &self,
        globals: GlobalState,
        steps: &[StepId],
    ) -> Result<SystemState, ModelError> {
        let mut state = self.initial_state(globals)?;
        for &s in steps {
            self.execute_step(&mut state, s)?;
        }
        Ok(state)
    }

    /// Execute one whole transaction serially from the given globals.
    pub fn run_transaction(
        &self,
        globals: GlobalState,
        txn: TxnId,
    ) -> Result<SystemState, ModelError> {
        let steps: Vec<StepId> = (0..self.format[txn.index()])
            .map(|j| StepId { txn, idx: j })
            .collect();
        self.run_sequence(globals, &steps)
    }

    /// Execute the transactions serially in the given order (a
    /// *concatenation* in the paper's sense, possibly with repetitions and
    /// omissions) and return the final globals.
    ///
    /// Repetitions restart the transaction from a fresh local state — this is
    /// what "concatenation of serial executions of transactions" means for
    /// straight-line programs.
    pub fn run_concatenation(
        &self,
        globals: GlobalState,
        order: &[TxnId],
    ) -> Result<GlobalState, ModelError> {
        let mut g = globals;
        for &t in order {
            // Each occurrence runs against a fresh (J, L): build a one-shot
            // state so repetitions are legal.
            let st = self.run_transaction(g, t)?;
            g = st.globals;
        }
        Ok(g)
    }

    /// Is the step sequence *correct* in the paper's sense: does its serial
    /// execution map every consistent initial state of the check space to a
    /// consistent state?
    ///
    /// Returns `Ok(())` when correct, or the first witness initial state
    /// (rendered) when not. Execution errors count as incorrect.
    pub fn check_sequence_correct(&self, steps: &[StepId]) -> Result<(), String> {
        for init in &self.sys.space.initial_states {
            match self.run_sequence(init.clone(), steps) {
                Ok(st) => {
                    if !self.sys.ic.is_consistent(&st.globals) {
                        return Err(format!(
                            "from {} execution reaches inconsistent {}",
                            init, st.globals
                        ));
                    }
                }
                Err(e) => return Err(format!("from {init}: execution error: {e}")),
            }
        }
        Ok(())
    }

    /// Verify the paper's *basic assumption*: every transaction, run alone,
    /// maps each consistent check state to a consistent state.
    pub fn verify_basic_assumption(&self) -> Result<(), ModelError> {
        for i in 0..self.format.len() {
            let txn = TxnId(i as u32);
            for init in &self.sys.space.initial_states {
                let ok = self
                    .run_transaction(init.clone(), txn)
                    .map(|st| self.sys.ic.is_consistent(&st.globals));
                if !matches!(ok, Ok(true)) {
                    return Err(ModelError::TransactionIncorrect {
                        txn,
                        from_state: init.to_string(),
                    });
                }
            }
        }
        Ok(())
    }

    /// Final global state of a full serial execution in transaction order
    /// `order` (each transaction exactly once), from `globals`.
    pub fn run_serial(
        &self,
        globals: GlobalState,
        order: &[TxnId],
    ) -> Result<GlobalState, ModelError> {
        debug_assert_eq!(order.len(), self.format.len());
        self.run_concatenation(globals, order)
    }

    /// Convenience: the values read by each step when running `steps` from
    /// `globals` (used by reads-from analyses and the engine tests).
    pub fn trace_reads(
        &self,
        globals: GlobalState,
        steps: &[StepId],
    ) -> Result<Vec<(StepId, Value)>, ModelError> {
        let mut state = self.initial_state(globals)?;
        let mut trace = Vec::with_capacity(steps.len());
        for &s in steps {
            let var = self.sys.syntax.var_of(s);
            let before = state.globals.get(var).expect("validated");
            self.execute_step(&mut state, s)?;
            trace.push((s, before));
        }
        Ok(trace)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, Expr};
    use crate::ic::{CondIc, TrueIc};
    use crate::ids::VarId;
    use crate::interp::ExprInterpretation;
    use crate::syntax::SyntaxBuilder;
    use crate::system::{StateSpace, TransactionSystem};
    use std::sync::Arc;

    /// T1: x += 1 ; x -= 1.  T2: x *= 2.  IC: x = 0. (Theorem 2's adversary.)
    fn counter_system() -> TransactionSystem {
        let syntax = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("x"))
            .txn("T2", |t| t.update("x"))
            .build();
        let interp = ExprInterpretation::new(vec![
            vec![
                Expr::add(Expr::Local(0), Expr::Const(1)),
                Expr::sub(Expr::Local(1), Expr::Const(1)),
            ],
            vec![Expr::mul(Expr::Local(0), Expr::Const(2))],
        ]);
        interp.validate(&syntax).unwrap();
        TransactionSystem::new(
            "counter",
            syntax,
            Arc::new(interp),
            Arc::new(CondIc(Cond::Eq(Expr::Var(VarId(0)), Expr::Const(0)))),
            StateSpace::from_ints(&[&[0]]),
        )
    }

    #[test]
    fn step_execution_follows_the_paper() {
        let sys = counter_system();
        let ex = Executor::new(&sys);
        let mut st = ex.initial_state(GlobalState::from_ints(&[0])).unwrap();
        ex.execute_step(&mut st, StepId::new(0, 0)).unwrap();
        assert_eq!(st.globals.get(VarId(0)), Some(Value::Int(1)));
        assert_eq!(st.pc[0], 1);
        assert_eq!(st.locals[0][0], Some(Value::Int(0)));
        ex.execute_step(&mut st, StepId::new(0, 1)).unwrap();
        assert_eq!(st.globals.get(VarId(0)), Some(Value::Int(0)));
    }

    #[test]
    fn eligibility_is_enforced() {
        let sys = counter_system();
        let ex = Executor::new(&sys);
        let mut st = ex.initial_state(GlobalState::from_ints(&[0])).unwrap();
        let err = ex.execute_step(&mut st, StepId::new(0, 1)).unwrap_err();
        assert!(matches!(err, ModelError::NotEligible { .. }));
        let err = ex.execute_step(&mut st, StepId::new(5, 0)).unwrap_err();
        assert!(matches!(err, ModelError::UnknownStep(_)));
    }

    #[test]
    fn state_arity_is_checked() {
        let sys = counter_system();
        let ex = Executor::new(&sys);
        assert!(matches!(
            ex.initial_state(GlobalState::from_ints(&[0, 0])),
            Err(ModelError::StateArity { .. })
        ));
    }

    #[test]
    fn interleaving_that_breaks_ic_is_detected() {
        // (T11, T21, T12): 0 -> 1 -> 2 -> 1, inconsistent under x = 0.
        let sys = counter_system();
        let ex = Executor::new(&sys);
        let h = [StepId::new(0, 0), StepId::new(1, 0), StepId::new(0, 1)];
        let st = ex.run_sequence(GlobalState::from_ints(&[0]), &h).unwrap();
        assert_eq!(st.globals.get(VarId(0)), Some(Value::Int(1)));
        assert!(ex.check_sequence_correct(&h).is_err());
    }

    #[test]
    fn serial_schedules_are_correct() {
        let sys = counter_system();
        let ex = Executor::new(&sys);
        let serial = [StepId::new(0, 0), StepId::new(0, 1), StepId::new(1, 0)];
        assert!(ex.check_sequence_correct(&serial).is_ok());
        let serial = [StepId::new(1, 0), StepId::new(0, 0), StepId::new(0, 1)];
        assert!(ex.check_sequence_correct(&serial).is_ok());
    }

    #[test]
    fn basic_assumption_holds_for_counter_system() {
        let sys = counter_system();
        Executor::new(&sys).verify_basic_assumption().unwrap();
    }

    #[test]
    fn basic_assumption_detects_bad_transaction() {
        // T1: x += 1 with IC x = 0 is individually incorrect.
        let syntax = SyntaxBuilder::new().txn("T1", |t| t.update("x")).build();
        let interp = ExprInterpretation::new(vec![vec![Expr::add(Expr::Local(0), Expr::Const(1))]]);
        let sys = TransactionSystem::new(
            "bad",
            syntax,
            Arc::new(interp),
            Arc::new(CondIc(Cond::Eq(Expr::Var(VarId(0)), Expr::Const(0)))),
            StateSpace::from_ints(&[&[0]]),
        );
        assert!(matches!(
            Executor::new(&sys).verify_basic_assumption(),
            Err(ModelError::TransactionIncorrect { .. })
        ));
    }

    #[test]
    fn concatenation_supports_repetition_and_omission() {
        let sys = counter_system();
        let ex = Executor::new(&sys);
        // T2; T2 from x = 3: 3 -> 6 -> 12. T1 omitted entirely.
        let g = ex
            .run_concatenation(GlobalState::from_ints(&[3]), &[TxnId(1), TxnId(1)])
            .unwrap();
        assert_eq!(g.get(VarId(0)), Some(Value::Int(12)));
        // Empty concatenation is identity.
        let g = ex
            .run_concatenation(GlobalState::from_ints(&[3]), &[])
            .unwrap();
        assert_eq!(g.get(VarId(0)), Some(Value::Int(3)));
    }

    #[test]
    fn trace_reads_reports_pre_values() {
        let sys = counter_system();
        let ex = Executor::new(&sys);
        let h = [StepId::new(0, 0), StepId::new(1, 0), StepId::new(0, 1)];
        let tr = ex.trace_reads(GlobalState::from_ints(&[0]), &h).unwrap();
        assert_eq!(tr[0].1, Value::Int(0)); // T11 read 0
        assert_eq!(tr[1].1, Value::Int(1)); // T21 read 1
        assert_eq!(tr[2].1, Value::Int(2)); // T12 read 2
    }

    #[test]
    fn executor_with_true_ic_accepts_everything() {
        let sys = counter_system().with_ic(Arc::new(TrueIc), StateSpace::from_ints(&[&[5]]));
        let ex = Executor::new(&sys);
        let h = [StepId::new(0, 0), StepId::new(1, 0), StepId::new(0, 1)];
        assert!(ex.check_sequence_correct(&h).is_ok());
    }
}
