//! A small first-order expression language for step functions and integrity
//! constraints.
//!
//! Concrete interpretations can be given as Rust closures
//! ([`crate::interp::FnInterpretation`]) — opaque but convenient — or as
//! [`Expr`] terms, which are comparable, printable, hashable and
//! *enumerable*. Enumerability is what the optimality theorems need: the
//! adversary of Theorem 2 ranges over "transaction systems with any integrity
//! constraints and interpretations for steps", and `ccopt-core` realizes that
//! by enumerating small `Expr`/[`Cond`] programs.
//!
//! Expressions are evaluated over the locals `t_i1 .. t_ij` of the executing
//! transaction ([`Expr::Local`] indexes into them); conditions additionally
//! evaluate over global states when used as integrity constraints
//! ([`Expr::Var`]).

use crate::ids::VarId;
use crate::state::GlobalState;
use crate::value::Value;
use std::fmt;

/// An integer-valued expression.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// The local variable `t_{i,k+1}` of the executing transaction
    /// (zero-based `k`). Only valid in step functions.
    Local(usize),
    /// The global variable `v`. Only valid in integrity constraints.
    Var(VarId),
    /// Sum of two expressions.
    Add(Box<Expr>, Box<Expr>),
    /// Difference of two expressions.
    Sub(Box<Expr>, Box<Expr>),
    /// Product of two expressions.
    Mul(Box<Expr>, Box<Expr>),
    /// Conditional expression.
    If(Box<Cond>, Box<Expr>, Box<Expr>),
}

/// A boolean condition over expressions.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    /// Constant truth value.
    Bool(bool),
    /// `a == b`.
    Eq(Expr, Expr),
    /// `a >= b`.
    Ge(Expr, Expr),
    /// `a < b`.
    Lt(Expr, Expr),
    /// Conjunction.
    And(Box<Cond>, Box<Cond>),
    /// Disjunction.
    Or(Box<Cond>, Box<Cond>),
    /// Negation.
    Not(Box<Cond>),
}

/// Evaluation environment: transaction locals and (optionally) the global
/// state.
#[derive(Clone, Copy)]
pub struct Env<'a> {
    /// Values of the declared locals `t_i1 .. t_ij` (may be empty).
    pub locals: &'a [Value],
    /// Global state for `Expr::Var`; `None` inside step functions.
    pub globals: Option<&'a GlobalState>,
}

impl Env<'_> {
    /// Environment with locals only (step-function evaluation).
    pub fn locals(locals: &[Value]) -> Env<'_> {
        Env {
            locals,
            globals: None,
        }
    }

    /// Environment with globals only (integrity-constraint evaluation).
    pub fn globals(g: &GlobalState) -> Env<'_> {
        Env {
            locals: &[],
            globals: Some(g),
        }
    }
}

/// Errors arising during expression evaluation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EvalError {
    /// `Expr::Local(k)` referenced a local that is not yet declared.
    UnboundLocal(usize),
    /// `Expr::Var` used where no global state is available.
    NoGlobals,
    /// `Expr::Var(v)` referenced a variable outside the state.
    UnboundVar(VarId),
    /// A symbolic (Herbrand) value reached an arithmetic operator.
    SymbolicValue,
    /// Arithmetic overflow (we use checked arithmetic; domains are
    /// enumerable, not modular).
    Overflow,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundLocal(k) => write!(f, "unbound local t{}", k + 1),
            EvalError::NoGlobals => write!(f, "global variable used without a global state"),
            EvalError::UnboundVar(v) => write!(f, "unbound global variable {v}"),
            EvalError::SymbolicValue => write!(f, "symbolic value in arithmetic"),
            EvalError::Overflow => write!(f, "integer overflow"),
        }
    }
}

impl std::error::Error for EvalError {}

#[allow(clippy::should_implement_trait)] // smart constructors, deliberately named like the AST nodes
impl Expr {
    /// Evaluate to an integer under `env`.
    pub fn eval(&self, env: Env<'_>) -> Result<i64, EvalError> {
        match self {
            Expr::Const(c) => Ok(*c),
            Expr::Local(k) => env
                .locals
                .get(*k)
                .ok_or(EvalError::UnboundLocal(*k))?
                .as_int()
                .ok_or(EvalError::SymbolicValue),
            Expr::Var(v) => {
                let g = env.globals.ok_or(EvalError::NoGlobals)?;
                g.get(*v)
                    .ok_or(EvalError::UnboundVar(*v))?
                    .as_int()
                    .ok_or(EvalError::SymbolicValue)
            }
            Expr::Add(a, b) => a
                .eval(env)?
                .checked_add(b.eval(env)?)
                .ok_or(EvalError::Overflow),
            Expr::Sub(a, b) => a
                .eval(env)?
                .checked_sub(b.eval(env)?)
                .ok_or(EvalError::Overflow),
            Expr::Mul(a, b) => a
                .eval(env)?
                .checked_mul(b.eval(env)?)
                .ok_or(EvalError::Overflow),
            Expr::If(c, t, e) => {
                if c.eval(env)? {
                    t.eval(env)
                } else {
                    e.eval(env)
                }
            }
        }
    }

    /// The largest `Local` index mentioned, if any — used to validate that a
    /// step function only reads declared locals.
    pub fn max_local(&self) -> Option<usize> {
        match self {
            Expr::Const(_) | Expr::Var(_) => None,
            Expr::Local(k) => Some(*k),
            Expr::Add(a, b) | Expr::Sub(a, b) | Expr::Mul(a, b) => {
                opt_max(a.max_local(), b.max_local())
            }
            Expr::If(c, t, e) => opt_max(c.max_local(), opt_max(t.max_local(), e.max_local())),
        }
    }

    /// Shorthand: `a + b`.
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::Add(Box::new(a), Box::new(b))
    }

    /// Shorthand: `a - b`.
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::Sub(Box::new(a), Box::new(b))
    }

    /// Shorthand: `a * b`.
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::Mul(Box::new(a), Box::new(b))
    }

    /// Shorthand: `if c then t else e`.
    pub fn ite(c: Cond, t: Expr, e: Expr) -> Expr {
        Expr::If(Box::new(c), Box::new(t), Box::new(e))
    }
}

impl Cond {
    /// Evaluate to a boolean under `env`.
    pub fn eval(&self, env: Env<'_>) -> Result<bool, EvalError> {
        match self {
            Cond::Bool(b) => Ok(*b),
            Cond::Eq(a, b) => Ok(a.eval(env)? == b.eval(env)?),
            Cond::Ge(a, b) => Ok(a.eval(env)? >= b.eval(env)?),
            Cond::Lt(a, b) => Ok(a.eval(env)? < b.eval(env)?),
            Cond::And(a, b) => Ok(a.eval(env)? && b.eval(env)?),
            Cond::Or(a, b) => Ok(a.eval(env)? || b.eval(env)?),
            Cond::Not(a) => Ok(!a.eval(env)?),
        }
    }

    /// The largest `Local` index mentioned, if any.
    pub fn max_local(&self) -> Option<usize> {
        match self {
            Cond::Bool(_) => None,
            Cond::Eq(a, b) | Cond::Ge(a, b) | Cond::Lt(a, b) => {
                opt_max(a.max_local(), b.max_local())
            }
            Cond::And(a, b) | Cond::Or(a, b) => opt_max(a.max_local(), b.max_local()),
            Cond::Not(a) => a.max_local(),
        }
    }

    /// Shorthand: `a && b`.
    pub fn and(a: Cond, b: Cond) -> Cond {
        Cond::And(Box::new(a), Box::new(b))
    }

    /// Shorthand: `a || b`.
    pub fn or(a: Cond, b: Cond) -> Cond {
        Cond::Or(Box::new(a), Box::new(b))
    }
}

fn opt_max(a: Option<usize>, b: Option<usize>) -> Option<usize> {
    match (a, b) {
        (Some(x), Some(y)) => Some(x.max(y)),
        (x, None) => x,
        (None, y) => y,
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Local(k) => write!(f, "t{}", k + 1),
            Expr::Var(v) => write!(f, "{v}"),
            Expr::Add(a, b) => write!(f, "({a} + {b})"),
            Expr::Sub(a, b) => write!(f, "({a} - {b})"),
            Expr::Mul(a, b) => write!(f, "({a} * {b})"),
            Expr::If(c, t, e) => write!(f, "(if {c} then {t} else {e})"),
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Bool(b) => write!(f, "{b}"),
            Cond::Eq(a, b) => write!(f, "{a} = {b}"),
            Cond::Ge(a, b) => write!(f, "{a} >= {b}"),
            Cond::Lt(a, b) => write!(f, "{a} < {b}"),
            Cond::And(a, b) => write!(f, "({a} and {b})"),
            Cond::Or(a, b) => write!(f, "({a} or {b})"),
            Cond::Not(a) => write!(f, "not {a}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(locals: &[Value]) -> Env<'_> {
        Env::locals(locals)
    }

    #[test]
    fn arithmetic_evaluates() {
        let e = Expr::add(Expr::Local(0), Expr::Const(1));
        let locals = [Value::Int(41)];
        assert_eq!(e.eval(env_with(&locals)), Ok(42));
        let e = Expr::mul(Expr::Const(2), Expr::Local(0));
        assert_eq!(e.eval(env_with(&locals)), Ok(82));
        let e = Expr::sub(Expr::Local(0), Expr::Const(50));
        assert_eq!(e.eval(env_with(&locals)), Ok(-9));
    }

    #[test]
    fn conditional_selects_branch() {
        // if t1 >= 100 then t1 - 100 else t1  (the banking debit)
        let e = Expr::ite(
            Cond::Ge(Expr::Local(0), Expr::Const(100)),
            Expr::sub(Expr::Local(0), Expr::Const(100)),
            Expr::Local(0),
        );
        assert_eq!(e.eval(env_with(&[Value::Int(150)])), Ok(50));
        assert_eq!(e.eval(env_with(&[Value::Int(80)])), Ok(80));
    }

    #[test]
    fn unbound_local_errors() {
        let e = Expr::Local(2);
        assert_eq!(
            e.eval(env_with(&[Value::Int(1)])),
            Err(EvalError::UnboundLocal(2))
        );
    }

    #[test]
    fn var_requires_globals() {
        let e = Expr::Var(VarId(0));
        assert_eq!(e.eval(env_with(&[])), Err(EvalError::NoGlobals));
        let g = GlobalState::from_ints(&[7]);
        assert_eq!(e.eval(Env::globals(&g)), Ok(7));
        let bad = Expr::Var(VarId(9));
        assert_eq!(
            bad.eval(Env::globals(&g)),
            Err(EvalError::UnboundVar(VarId(9)))
        );
    }

    #[test]
    fn symbolic_values_are_rejected() {
        use crate::term::TermId;
        let e = Expr::add(Expr::Local(0), Expr::Const(1));
        let locals = [Value::Term(TermId(0))];
        assert_eq!(e.eval(env_with(&locals)), Err(EvalError::SymbolicValue));
    }

    #[test]
    fn overflow_is_detected() {
        let e = Expr::add(Expr::Const(i64::MAX), Expr::Const(1));
        assert_eq!(e.eval(env_with(&[])), Err(EvalError::Overflow));
        let e = Expr::mul(Expr::Const(i64::MAX), Expr::Const(2));
        assert_eq!(e.eval(env_with(&[])), Err(EvalError::Overflow));
    }

    #[test]
    fn cond_operators() {
        let env = env_with(&[]);
        assert_eq!(
            Cond::and(Cond::Bool(true), Cond::Bool(false)).eval(env),
            Ok(false)
        );
        assert_eq!(
            Cond::or(Cond::Bool(true), Cond::Bool(false)).eval(env),
            Ok(true)
        );
        assert_eq!(Cond::Not(Box::new(Cond::Bool(true))).eval(env), Ok(false));
        assert_eq!(Cond::Eq(Expr::Const(3), Expr::Const(3)).eval(env), Ok(true));
        assert_eq!(
            Cond::Lt(Expr::Const(3), Expr::Const(3)).eval(env),
            Ok(false)
        );
    }

    #[test]
    fn max_local_is_computed() {
        let e = Expr::ite(
            Cond::Ge(Expr::Local(0), Expr::Const(100)),
            Expr::add(Expr::Local(3), Expr::Const(1)),
            Expr::Local(1),
        );
        assert_eq!(e.max_local(), Some(3));
        assert_eq!(Expr::Const(1).max_local(), None);
    }

    #[test]
    fn display_round_trip_is_readable() {
        let e = Expr::ite(
            Cond::Ge(Expr::Local(0), Expr::Const(100)),
            Expr::sub(Expr::Local(0), Expr::Const(100)),
            Expr::Local(0),
        );
        assert_eq!(e.to_string(), "(if t1 >= 100 then (t1 - 100) else t1)");
    }
}
