//! Integrity constraints.
//!
//! Section 2: "The integrity constraints of a transaction system T
//! correspond to a subset IC of the product Π_v D(v). A state (J, L, G) of T
//! is said to be consistent if G belongs to IC."

use crate::expr::{Cond, Env};
use crate::state::GlobalState;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A predicate selecting the consistent global states.
pub trait IntegrityConstraint: Send + Sync {
    /// Does `g` belong to IC?
    fn is_consistent(&self, g: &GlobalState) -> bool;

    /// Human-readable description (e.g. `A >= 0 and A + B = S - 50*C`).
    fn describe(&self) -> String {
        "IC".to_string()
    }
}

/// The trivial constraint: every state is consistent. Used when studying
/// levels of information that exclude integrity constraints (Theorem 4).
#[derive(Clone, Copy, Default, Debug)]
pub struct TrueIc;

impl IntegrityConstraint for TrueIc {
    fn is_consistent(&self, _g: &GlobalState) -> bool {
        true
    }

    fn describe(&self) -> String {
        "true".to_string()
    }
}

/// A constraint given by a [`Cond`] over the global variables.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CondIc(pub Cond);

impl IntegrityConstraint for CondIc {
    fn is_consistent(&self, g: &GlobalState) -> bool {
        self.0.eval(Env::globals(g)).unwrap_or(false)
    }

    fn describe(&self) -> String {
        self.0.to_string()
    }
}

/// A constraint given by explicit enumeration of the consistent states
/// (useful for adversary constructions where IC is "the set of states
/// reachable by serial executions").
#[derive(Clone, Default, Debug)]
pub struct EnumeratedIc {
    states: BTreeSet<GlobalState>,
    label: String,
}

impl EnumeratedIc {
    /// Build from an explicit state set.
    pub fn new(states: impl IntoIterator<Item = GlobalState>, label: &str) -> Self {
        EnumeratedIc {
            states: states.into_iter().collect(),
            label: label.to_string(),
        }
    }

    /// Number of consistent states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// True when no state is consistent (degenerate but legal).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

impl IntegrityConstraint for EnumeratedIc {
    fn is_consistent(&self, g: &GlobalState) -> bool {
        self.states.contains(g)
    }

    fn describe(&self) -> String {
        format!("{} ({} states)", self.label, self.states.len())
    }
}

/// A constraint given by an arbitrary closure.
pub struct PredIc {
    pred: Arc<dyn Fn(&GlobalState) -> bool + Send + Sync>,
    label: String,
}

impl PredIc {
    /// Build from a closure and a description.
    pub fn new(label: &str, pred: impl Fn(&GlobalState) -> bool + Send + Sync + 'static) -> Self {
        PredIc {
            pred: Arc::new(pred),
            label: label.to_string(),
        }
    }
}

impl IntegrityConstraint for PredIc {
    fn is_consistent(&self, g: &GlobalState) -> bool {
        (self.pred)(g)
    }

    fn describe(&self) -> String {
        self.label.clone()
    }
}

impl fmt::Debug for PredIc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PredIc({})", self.label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::ids::VarId;

    #[test]
    fn true_ic_accepts_everything() {
        let ic = TrueIc;
        assert!(ic.is_consistent(&GlobalState::from_ints(&[-5, 0, 3])));
        assert_eq!(ic.describe(), "true");
    }

    #[test]
    fn cond_ic_evaluates_predicate() {
        // x = 0 (the Theorem 2 adversary's constraint).
        let ic = CondIc(Cond::Eq(Expr::Var(VarId(0)), Expr::Const(0)));
        assert!(ic.is_consistent(&GlobalState::from_ints(&[0])));
        assert!(!ic.is_consistent(&GlobalState::from_ints(&[1])));
        assert_eq!(ic.describe(), "v0 = 0");
    }

    #[test]
    fn cond_ic_eval_error_means_inconsistent() {
        // References an unbound variable: treated as inconsistent, not panic.
        let ic = CondIc(Cond::Eq(Expr::Var(VarId(7)), Expr::Const(0)));
        assert!(!ic.is_consistent(&GlobalState::from_ints(&[0])));
    }

    #[test]
    fn enumerated_ic_membership() {
        let ic = EnumeratedIc::new(
            [
                GlobalState::from_ints(&[0, 0]),
                GlobalState::from_ints(&[1, 1]),
            ],
            "diag",
        );
        assert_eq!(ic.len(), 2);
        assert!(ic.is_consistent(&GlobalState::from_ints(&[1, 1])));
        assert!(!ic.is_consistent(&GlobalState::from_ints(&[0, 1])));
        assert!(ic.describe().contains("diag"));
    }

    #[test]
    fn pred_ic_wraps_closures() {
        let ic = PredIc::new("x even", |g| {
            g.get(VarId(0))
                .and_then(|v| v.as_int())
                .is_some_and(|i| i % 2 == 0)
        });
        assert!(ic.is_consistent(&GlobalState::from_ints(&[4])));
        assert!(!ic.is_consistent(&GlobalState::from_ints(&[3])));
        assert_eq!(ic.describe(), "x even");
    }
}
