//! Identifiers for transactions, steps and variables.
//!
//! The paper writes transactions `T_1 .. T_n`, steps `T_ij` and global
//! variables `x_ij ∈ V`. We use dense zero-based indices internally and
//! render the paper's one-based notation in `Display` impls.

use std::fmt;

/// Index of a transaction within a transaction system (`T_{i+1}` in the paper).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TxnId(pub u32);

impl TxnId {
    /// Zero-based index usable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0 + 1)
    }
}

/// Index of a global variable name in `V`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct VarId(pub u32);

impl VarId {
    /// Zero-based index usable for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A single transaction step `T_ij`: the `idx`-th step (zero-based) of
/// transaction `txn`.
///
/// `StepId` orders first by transaction, then by position; this matches the
/// program order required of schedules (`π(T_ij) < π(T_ik)` for `j < k`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct StepId {
    /// Owning transaction.
    pub txn: TxnId,
    /// Zero-based position within the transaction (`j-1` in paper notation).
    pub idx: u32,
}

impl StepId {
    /// Construct a step id from zero-based transaction and step indices.
    #[inline]
    pub fn new(txn: u32, idx: u32) -> Self {
        StepId {
            txn: TxnId(txn),
            idx,
        }
    }

    /// The step that follows this one in the same transaction.
    #[inline]
    pub fn next(self) -> StepId {
        StepId {
            txn: self.txn,
            idx: self.idx + 1,
        }
    }

    /// True when `self` precedes `other` in program order (same transaction,
    /// earlier position).
    #[inline]
    pub fn program_precedes(self, other: StepId) -> bool {
        self.txn == other.txn && self.idx < other.idx
    }
}

impl fmt::Display for StepId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{},{}", self.txn.0 + 1, self.idx + 1)
    }
}

/// The format `(m_1, ..., m_n)` of a transaction system: the number of steps
/// in each transaction. The paper's *minimum information* level is exactly
/// this tuple.
pub type Format = Vec<u32>;

/// Total number of steps `Σ m_i` in a format.
pub fn total_steps(format: &[u32]) -> usize {
    format.iter().map(|&m| m as usize).sum()
}

/// Enumerate every step id of a format in program order, transaction by
/// transaction.
pub fn all_steps(format: &[u32]) -> impl Iterator<Item = StepId> + '_ {
    format
        .iter()
        .enumerate()
        .flat_map(|(i, &m)| (0..m).map(move |j| StepId::new(i as u32, j)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_paper_one_based_notation() {
        assert_eq!(StepId::new(0, 0).to_string(), "T1,1");
        assert_eq!(StepId::new(2, 3).to_string(), "T3,4");
        assert_eq!(TxnId(1).to_string(), "T2");
    }

    #[test]
    fn program_order_is_reflected_by_ord() {
        let a = StepId::new(0, 0);
        let b = StepId::new(0, 1);
        let c = StepId::new(1, 0);
        assert!(a < b);
        assert!(b < c);
        assert!(a.program_precedes(b));
        assert!(!a.program_precedes(c));
        assert!(!b.program_precedes(a));
    }

    #[test]
    fn next_advances_within_transaction() {
        let s = StepId::new(1, 0);
        assert_eq!(s.next(), StepId::new(1, 1));
        assert_eq!(s.next().txn, TxnId(1));
    }

    #[test]
    fn total_and_enumeration_agree() {
        let format = vec![3, 2, 4];
        assert_eq!(total_steps(&format), 9);
        let steps: Vec<StepId> = all_steps(&format).collect();
        assert_eq!(steps.len(), 9);
        assert_eq!(steps[0], StepId::new(0, 0));
        assert_eq!(steps[3], StepId::new(1, 0));
        assert_eq!(steps[8], StepId::new(2, 3));
        // Program order within each transaction.
        for w in steps.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn empty_format_has_no_steps() {
        assert_eq!(total_steps(&[]), 0);
        assert_eq!(all_steps(&[]).count(), 0);
    }
}
