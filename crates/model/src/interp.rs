//! Interpretations of the function symbols `f_ij`.
//!
//! Section 2: "the semantics of T: associated with the function symbol
//! `f_ij` at each step `T_ij` is a function
//! `ρ_ij : Π_{1≤k≤j} D(x_ik) → D(x_ij)` which is the interpretation of
//! `f_ij`."
//!
//! Three interpretation families are provided:
//!
//! * [`FnInterpretation`] — arbitrary Rust closures, for hand-written
//!   examples;
//! * [`ExprInterpretation`] — step functions given as [`Expr`] programs:
//!   comparable, printable and enumerable (used by the adversary machinery);
//! * [`HerbrandInterpretation`] — the canonical free interpretation of
//!   Section 4.2, building formal terms in a shared [`TermArena`].

use crate::expr::{Env, Expr};
use crate::ids::{StepId, TxnId};
use crate::syntax::{StepKind, Syntax};
use crate::term::{TermArena, TermId};
use crate::value::Value;
use parking_lot::Mutex;
use std::fmt;
use std::sync::Arc;

/// An interpretation assigns meaning `ρ_ij` to every function symbol.
///
/// `args` holds the values of the declared locals `t_i1 .. t_ij`
/// (so `args.len() == j`, and `args[j-1]` is the value just read from
/// `x_ij`). The return value is stored into `x_ij`.
pub trait Interpretation: Send + Sync {
    /// Apply `ρ_ij` for step `T_ij` (`site`) to the declared locals.
    fn apply(&self, site: StepId, args: &[Value]) -> Result<Value, crate::ModelError>;

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "interpretation"
    }
}

/// Interpretation given by one Rust closure per step.
pub struct FnInterpretation {
    name: String,
    // funcs[i][j] computes ρ_{i,j+1}.
    #[allow(clippy::type_complexity)]
    funcs: Vec<Vec<Arc<dyn Fn(&[Value]) -> Value + Send + Sync>>>,
}

impl FnInterpretation {
    /// Start building a closure interpretation with the given name.
    pub fn builder(name: &str) -> FnInterpretationBuilder {
        FnInterpretationBuilder {
            name: name.to_string(),
            funcs: Vec::new(),
        }
    }
}

/// Builder for [`FnInterpretation`]; add transactions then steps in order.
pub struct FnInterpretationBuilder {
    name: String,
    #[allow(clippy::type_complexity)]
    funcs: Vec<Vec<Arc<dyn Fn(&[Value]) -> Value + Send + Sync>>>,
}

impl FnInterpretationBuilder {
    /// Begin the next transaction.
    pub fn txn(mut self) -> Self {
        self.funcs.push(Vec::new());
        self
    }

    /// Add the next step function of the current transaction.
    ///
    /// # Panics
    /// Panics if called before any [`txn`](Self::txn).
    pub fn step(mut self, f: impl Fn(&[Value]) -> Value + Send + Sync + 'static) -> Self {
        self.funcs
            .last_mut()
            .expect("call txn() before step()")
            .push(Arc::new(f));
        self
    }

    /// Finish the interpretation.
    pub fn build(self) -> FnInterpretation {
        FnInterpretation {
            name: self.name,
            funcs: self.funcs,
        }
    }
}

impl Interpretation for FnInterpretation {
    fn apply(&self, site: StepId, args: &[Value]) -> Result<Value, crate::ModelError> {
        let f = self
            .funcs
            .get(site.txn.index())
            .and_then(|t| t.get(site.idx as usize))
            .ok_or(crate::ModelError::UnknownStep(site))?;
        Ok(f(args))
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl fmt::Debug for FnInterpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnInterpretation({})", self.name)
    }
}

/// Interpretation where every `ρ_ij` is an [`Expr`] over the declared locals.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExprInterpretation {
    /// `exprs[i][j]` is the body of `ρ_{i,j+1}`.
    pub exprs: Vec<Vec<Expr>>,
}

impl ExprInterpretation {
    /// Build from per-transaction expression lists.
    pub fn new(exprs: Vec<Vec<Expr>>) -> Self {
        ExprInterpretation { exprs }
    }

    /// The expression of step `site`, if present.
    pub fn expr(&self, site: StepId) -> Option<&Expr> {
        self.exprs
            .get(site.txn.index())
            .and_then(|t| t.get(site.idx as usize))
    }

    /// Validate against a syntax: one expression per step; step `j` only
    /// reads locals `t_1..t_j`; and the declared step kinds hold — a
    /// [`StepKind::Read`] expression is the identity on `t_j`, and a
    /// [`StepKind::Write`] expression does not reference its own read
    /// `t_j`. The engine relies on the kind contract (reads leave storage
    /// untouched, writes install independent values), so violating it
    /// would silently diverge from the executor semantics.
    pub fn validate(&self, syntax: &Syntax) -> Result<(), String> {
        if self.exprs.len() != syntax.num_txns() {
            return Err(format!(
                "{} transactions in interpretation, {} in syntax",
                self.exprs.len(),
                syntax.num_txns()
            ));
        }
        for (i, (es, t)) in self.exprs.iter().zip(&syntax.transactions).enumerate() {
            if es.len() != t.steps.len() {
                return Err(format!(
                    "T{} has {} steps but {} expressions",
                    i + 1,
                    t.steps.len(),
                    es.len()
                ));
            }
            for (j, (e, s)) in es.iter().zip(&t.steps).enumerate() {
                if let Some(k) = e.max_local() {
                    if k > j {
                        return Err(format!(
                            "expression of T{},{} reads undeclared local t{}",
                            i + 1,
                            j + 1,
                            k + 1
                        ));
                    }
                    if s.kind == StepKind::Write && k == j {
                        return Err(format!(
                            "expression of T{},{} is declared Write but depends on its own read t{}",
                            i + 1,
                            j + 1,
                            j + 1
                        ));
                    }
                }
                if s.kind == StepKind::Read && *e != Expr::Local(j) {
                    return Err(format!(
                        "expression of T{},{} is declared Read but is not the identity t{}",
                        i + 1,
                        j + 1,
                        j + 1
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Interpretation for ExprInterpretation {
    fn apply(&self, site: StepId, args: &[Value]) -> Result<Value, crate::ModelError> {
        let e = self
            .expr(site)
            .ok_or(crate::ModelError::UnknownStep(site))?;
        e.eval(Env::locals(args))
            .map(Value::Int)
            .map_err(|source| crate::ModelError::Eval { step: site, source })
    }

    fn name(&self) -> &str {
        "expr"
    }
}

/// The canonical free (Herbrand) interpretation of Section 4.2.
///
/// Every application builds the formal term `f_ij(a_1, ..., a_j)` in a
/// shared hash-consing arena. Step kinds refine the paper's two remarks:
/// a declared [`StepKind::Read`] returns `t_ij` unchanged (identity), and a
/// declared [`StepKind::Write`] applies `f_ij` to `t_i1..t_i,j-1` only
/// (independent of `t_ij`). [`StepKind::Update`] — the paper's base model —
/// applies `f_ij` to all declared locals.
pub struct HerbrandInterpretation {
    arena: Arc<Mutex<TermArena>>,
    kinds: Vec<Vec<StepKind>>,
}

impl HerbrandInterpretation {
    /// Create a Herbrand interpretation for the given syntax with a fresh
    /// arena.
    pub fn for_syntax(syntax: &Syntax) -> Self {
        HerbrandInterpretation {
            arena: Arc::new(Mutex::new(TermArena::new())),
            kinds: syntax
                .transactions
                .iter()
                .map(|t| t.steps.iter().map(|s| s.kind).collect())
                .collect(),
        }
    }

    /// Handle to the shared term arena (for rendering and initial terms).
    pub fn arena(&self) -> Arc<Mutex<TermArena>> {
        Arc::clone(&self.arena)
    }

    /// Intern the initial term of variable `v`.
    pub fn init_term(&self, v: crate::ids::VarId) -> TermId {
        self.arena.lock().init(v)
    }

    fn kind(&self, site: StepId) -> StepKind {
        self.kinds
            .get(site.txn.index())
            .and_then(|t| t.get(site.idx as usize))
            .copied()
            .unwrap_or(StepKind::Update)
    }
}

impl Interpretation for HerbrandInterpretation {
    fn apply(&self, site: StepId, args: &[Value]) -> Result<Value, crate::ModelError> {
        let terms: Option<Vec<TermId>> = args.iter().map(|v| v.as_term()).collect();
        let terms = terms.ok_or(crate::ModelError::Eval {
            step: site,
            source: crate::expr::EvalError::SymbolicValue,
        })?;
        match self.kind(site) {
            StepKind::Read => {
                // Identity on t_ij: the variable is unchanged.
                Ok(Value::Term(
                    *terms.last().ok_or(crate::ModelError::UnknownStep(site))?,
                ))
            }
            StepKind::Write => {
                // Independent of t_ij: drop the just-read local.
                let upto = terms.len().saturating_sub(1);
                Ok(Value::Term(self.arena.lock().app(site, &terms[..upto])))
            }
            StepKind::Update => Ok(Value::Term(self.arena.lock().app(site, &terms))),
        }
    }

    fn name(&self) -> &str {
        "herbrand"
    }
}

impl fmt::Debug for HerbrandInterpretation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HerbrandInterpretation")
    }
}

/// Convenience: interpretation names used in displays.
pub fn describe(interp: &dyn Interpretation) -> String {
    interp.name().to_string()
}

/// A helper wrapper making any interpretation usable for a *renamed* system:
/// sites pass through unchanged (renaming variables does not change the
/// function symbols), so the same interpretation object is reused.
pub struct SharedInterpretation(pub Arc<dyn Interpretation>);

impl Interpretation for SharedInterpretation {
    fn apply(&self, site: StepId, args: &[Value]) -> Result<Value, crate::ModelError> {
        self.0.apply(site, args)
    }

    fn name(&self) -> &str {
        self.0.name()
    }
}

/// Identify a step site for error messages.
pub fn site_label(txn: TxnId, idx: u32) -> String {
    StepId { txn, idx }.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;
    use crate::syntax::SyntaxBuilder;

    #[test]
    fn fn_interpretation_applies_per_step() {
        let interp = FnInterpretation::builder("inc-dec")
            .txn()
            .step(|args| Value::Int(args[0].as_int().unwrap() + 1))
            .step(|args| Value::Int(args[1].as_int().unwrap() - 1))
            .build();
        let v = interp.apply(StepId::new(0, 0), &[Value::Int(5)]).unwrap();
        assert_eq!(v, Value::Int(6));
        let v = interp
            .apply(StepId::new(0, 1), &[Value::Int(5), Value::Int(9)])
            .unwrap();
        assert_eq!(v, Value::Int(8));
        assert!(interp.apply(StepId::new(3, 0), &[]).is_err());
    }

    #[test]
    fn expr_interpretation_validates_locals() {
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("y"))
            .build();
        let good = ExprInterpretation::new(vec![vec![
            Expr::Local(0),
            Expr::add(Expr::Local(0), Expr::Local(1)),
        ]]);
        assert!(good.validate(&syn).is_ok());
        let bad = ExprInterpretation::new(vec![vec![Expr::Local(1), Expr::Local(0)]]);
        assert!(bad.validate(&syn).is_err());
        let wrong_arity = ExprInterpretation::new(vec![vec![Expr::Local(0)]]);
        assert!(wrong_arity.validate(&syn).is_err());
    }

    #[test]
    fn validate_enforces_declared_step_kinds() {
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.read("x").write("y"))
            .build();
        let good = ExprInterpretation::new(vec![vec![Expr::Local(0), Expr::Local(0)]]);
        assert!(good.validate(&syn).is_ok());
        // A declared Read whose expression is not the identity observes
        // nothing it may observe — and would silently diverge from the
        // engine, which leaves storage untouched for reads.
        let fake_read = ExprInterpretation::new(vec![vec![
            Expr::add(Expr::Local(0), Expr::Const(1)),
            Expr::Local(0),
        ]]);
        assert!(fake_read.validate(&syn).is_err());
        // A declared Write that depends on its own read t_j is really an
        // update: under blind-write scheduling (MVTO/SI install order) it
        // could commit non-serializable states.
        let fake_write = ExprInterpretation::new(vec![vec![Expr::Local(0), Expr::Local(1)]]);
        assert!(fake_write.validate(&syn).is_err());
    }

    #[test]
    fn herbrand_update_builds_full_application() {
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("x"))
            .build();
        let h = HerbrandInterpretation::for_syntax(&syn);
        let x0 = h.init_term(VarId(0));
        let v1 = h
            .apply(StepId::new(0, 0), &[Value::Term(x0)])
            .unwrap()
            .as_term()
            .unwrap();
        let v2 = h
            .apply(StepId::new(0, 1), &[Value::Term(x0), Value::Term(v1)])
            .unwrap()
            .as_term()
            .unwrap();
        let arena = h.arena();
        let arena = arena.lock();
        assert_eq!(arena.render(v2, None), "f12(x00, f11(x00))");
    }

    #[test]
    fn herbrand_read_is_identity() {
        let syn = SyntaxBuilder::new().txn("T1", |t| t.read("x")).build();
        let h = HerbrandInterpretation::for_syntax(&syn);
        let x0 = h.init_term(VarId(0));
        let v = h.apply(StepId::new(0, 0), &[Value::Term(x0)]).unwrap();
        assert_eq!(v, Value::Term(x0));
    }

    #[test]
    fn herbrand_write_ignores_own_read() {
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.read("y").write("x"))
            .build();
        let h = HerbrandInterpretation::for_syntax(&syn);
        let y0 = h.init_term(VarId(0));
        let x0 = h.init_term(VarId(1));
        // Step 2 (write x) receives [t1=y0, t2=x0] and must not embed x0.
        let v = h
            .apply(StepId::new(0, 1), &[Value::Term(y0), Value::Term(x0)])
            .unwrap()
            .as_term()
            .unwrap();
        let arena = h.arena();
        let arena = arena.lock();
        assert_eq!(arena.render(v, None), "f12(x00)");
    }

    #[test]
    fn herbrand_rejects_concrete_values() {
        let syn = SyntaxBuilder::new().txn("T1", |t| t.update("x")).build();
        let h = HerbrandInterpretation::for_syntax(&syn);
        assert!(h.apply(StepId::new(0, 0), &[Value::Int(3)]).is_err());
    }

    #[test]
    fn deterministic_interning_across_applies() {
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x"))
            .txn("T2", |t| t.update("x"))
            .build();
        let h = HerbrandInterpretation::for_syntax(&syn);
        let x0 = h.init_term(VarId(0));
        let a = h.apply(StepId::new(0, 0), &[Value::Term(x0)]).unwrap();
        let b = h.apply(StepId::new(0, 0), &[Value::Term(x0)]).unwrap();
        assert_eq!(a, b);
    }
}
