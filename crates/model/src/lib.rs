//! # `ccopt-model` — the transaction-system model of Kung & Papadimitriou (1979)
//!
//! This crate implements Section 2 of *An Optimality Theory of Concurrency
//! Control for Databases* verbatim:
//!
//! * **Syntax** — a transaction system `T = {T_1, ..., T_n}` where each
//!   transaction `T_i` is a straight-line sequence of steps
//!   `T_i1, ..., T_im_i`, each step naming one global variable `x_ij`.
//!   The tuple `(m_1, ..., m_n)` is the *format*. See [`syntax`].
//! * **Semantics** — every variable has an enumerable domain; step `T_ij`
//!   executes the indivisible pair
//!   `t_ij ← x_ij ; x_ij ← f_ij(t_i1, ..., t_ij)` where the `t_ik` are the
//!   transaction's local variables and `f_ij` is a function symbol whose
//!   *interpretation* `ρ_ij` gives it meaning. See [`interp`] and [`exec`].
//! * **Herbrand semantics** — the canonical free interpretation in which
//!   every `f_ij` builds the formal term `f_ij(a_1, ..., a_j)`; used in
//!   Section 4.2 of the paper to define serializability. See [`term`].
//! * **Integrity constraints** — a predicate over global states; a state is
//!   *consistent* when the predicate holds. See [`ic`].
//! * **States** `(J, L, G)` — program counters, local values, global values —
//!   and step execution over them. See [`state`] and [`exec`].
//!
//! The crate also ships the paper's running examples ([`systems`]) and a
//! seeded random-system generator ([`random`]) used by the test suite,
//! benchmarks and the simulator.
//!
//! ## Quick start
//!
//! ```
//! use ccopt_model::systems;
//! use ccopt_model::exec::Executor;
//!
//! // The banking example from Section 2 of the paper.
//! let sys = systems::banking();
//! assert_eq!(sys.syntax.format(), vec![3, 2, 4]);
//!
//! // Every transaction is individually correct (the paper's basic assumption).
//! Executor::new(&sys).verify_basic_assumption().unwrap();
//! ```

pub mod error;
pub mod exec;
pub mod expr;
pub mod ic;
pub mod ids;
pub mod interp;
pub mod random;
pub mod state;
pub mod syntax;
pub mod system;
pub mod systems;
pub mod term;
pub mod value;

pub use error::ModelError;
pub use exec::Executor;
pub use ic::IntegrityConstraint;
pub use ids::{Format, StepId, TxnId, VarId};
pub use interp::Interpretation;
pub use state::{GlobalState, SystemState};
pub use syntax::{StepKind, StepSyntax, Syntax, TransactionSyntax};
pub use system::{StateSpace, TransactionSystem};
pub use value::Value;
