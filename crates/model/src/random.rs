//! Seeded random transaction-system generation.
//!
//! Used by the property tests ("serial ⊆ CSR ⊆ SR ⊆ WSR ⊆ C on random small
//! systems"), the workload generator in `ccopt-sim`, and the adversary
//! families in `ccopt-core`.

use crate::expr::{Cond, Expr};
use crate::ic::TrueIc;
use crate::interp::ExprInterpretation;
use crate::syntax::{StepKind, StepSyntax, Syntax, TransactionSyntax};
use crate::system::{StateSpace, TransactionSystem};
use crate::value::Value;
use crate::GlobalState;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Configuration for random system generation.
#[derive(Clone, Debug)]
pub struct RandomConfig {
    /// Number of transactions `n`.
    pub num_txns: usize,
    /// Inclusive range of steps per transaction.
    pub steps_per_txn: (usize, usize),
    /// Number of global variables.
    pub num_vars: usize,
    /// Probability that a step is a pure read (vs update). Writes are
    /// produced with the same probability; the rest are updates.
    pub read_fraction: f64,
    /// Hotspot skew: with this probability a step accesses variable 0.
    pub hot_fraction: f64,
    /// Number of random initial check states.
    pub num_check_states: usize,
    /// Range of initial values.
    pub value_range: (i64, i64),
}

impl Default for RandomConfig {
    fn default() -> Self {
        RandomConfig {
            num_txns: 2,
            steps_per_txn: (1, 3),
            num_vars: 2,
            read_fraction: 0.0,
            hot_fraction: 0.0,
            num_check_states: 3,
            value_range: (-4, 4),
        }
    }
}

/// Generate a random transaction system with affine step functions
/// (`a * t_j + b` with small coefficients) and the trivial IC.
///
/// Deterministic in `seed`.
pub fn random_system(cfg: &RandomConfig, seed: u64) -> TransactionSystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let vars: Vec<String> = (0..cfg.num_vars).map(|i| format!("v{i}")).collect();

    let mut transactions = Vec::with_capacity(cfg.num_txns);
    let mut exprs: Vec<Vec<Expr>> = Vec::with_capacity(cfg.num_txns);
    for i in 0..cfg.num_txns {
        let len = rng.gen_range(cfg.steps_per_txn.0..=cfg.steps_per_txn.1.max(cfg.steps_per_txn.0));
        let mut steps = Vec::with_capacity(len);
        let mut es = Vec::with_capacity(len);
        for j in 0..len {
            let var = if cfg.num_vars > 1 && rng.gen_bool(cfg.hot_fraction) {
                0
            } else {
                rng.gen_range(0..cfg.num_vars)
            };
            let roll: f64 = rng.gen();
            let kind = if roll < cfg.read_fraction {
                StepKind::Read
            } else if roll < 2.0 * cfg.read_fraction {
                StepKind::Write
            } else {
                StepKind::Update
            };
            steps.push(StepSyntax {
                var: crate::ids::VarId(var as u32),
                kind,
            });
            es.push(random_affine(&mut rng, j, kind));
        }
        transactions.push(TransactionSyntax {
            name: format!("T{}", i + 1),
            steps,
        });
        exprs.push(es);
    }

    let syntax = Syntax { vars, transactions };
    let interp = ExprInterpretation::new(exprs);
    debug_assert!(interp.validate(&syntax).is_ok());

    let mut states = Vec::with_capacity(cfg.num_check_states);
    for _ in 0..cfg.num_check_states {
        let g = GlobalState::new(
            (0..cfg.num_vars)
                .map(|_| Value::Int(rng.gen_range(cfg.value_range.0..=cfg.value_range.1)))
                .collect(),
        );
        states.push(g);
    }

    TransactionSystem::new(
        &format!("random-{seed}"),
        syntax,
        Arc::new(interp),
        Arc::new(TrueIc),
        StateSpace::new(states),
    )
}

/// Random affine step function; reads are the identity on the just-read
/// local, writes ignore it.
fn random_affine(rng: &mut SmallRng, j: usize, kind: StepKind) -> Expr {
    match kind {
        StepKind::Read => Expr::Local(j),
        StepKind::Write => {
            // Blind write of a constant, or of an earlier local when present.
            if j > 0 && rng.gen_bool(0.5) {
                let k = rng.gen_range(0..j);
                Expr::add(Expr::Local(k), Expr::Const(rng.gen_range(-2..=2)))
            } else {
                Expr::Const(rng.gen_range(-3..=3))
            }
        }
        StepKind::Update => {
            let a = *[1i64, 1, 1, 2, -1, 3]
                .get(rng.gen_range(0..6usize))
                .expect("non-empty");
            let b = rng.gen_range(-2..=2);
            Expr::add(Expr::mul(Expr::Const(a), Expr::Local(j)), Expr::Const(b))
        }
    }
}

/// A library of tiny expressions used by adversary enumerations in
/// `ccopt-core`: all step functions the Theorem 2 proof draws from
/// (identity, ±1, doubling, constants, and combinations of earlier locals).
pub fn small_step_functions(j: usize) -> Vec<Expr> {
    let mut out = vec![
        Expr::Local(j),                            // identity (read)
        Expr::add(Expr::Local(j), Expr::Const(1)), // x + 1
        Expr::sub(Expr::Local(j), Expr::Const(1)), // x - 1
        Expr::mul(Expr::Const(2), Expr::Local(j)), // 2x
        Expr::Const(0),                            // blind write 0
        Expr::Const(1),                            // blind write 1
    ];
    if j > 0 {
        out.push(Expr::Local(j - 1)); // copy previous local
        out.push(Expr::add(Expr::Local(j - 1), Expr::Local(j)));
    }
    out
}

/// Small integrity-constraint library for adversary enumerations: over
/// variable `v0`, the constraints the paper's proofs use.
pub fn small_ics() -> Vec<Cond> {
    use crate::ids::VarId;
    let x = || Expr::Var(VarId(0));
    vec![
        Cond::Bool(true),
        Cond::Eq(x(), Expr::Const(0)),
        Cond::Ge(x(), Expr::Const(0)),
        Cond::Lt(x(), Expr::Const(2)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;

    #[test]
    fn generation_is_deterministic_in_seed() {
        let cfg = RandomConfig::default();
        let a = random_system(&cfg, 42);
        let b = random_system(&cfg, 42);
        assert_eq!(a.syntax, b.syntax);
        assert_eq!(a.space, b.space);
        let c = random_system(&cfg, 43);
        // Extremely likely to differ somewhere; check the weakest claim that
        // is still deterministic: same config bounds.
        assert_eq!(c.num_txns(), cfg.num_txns);
    }

    #[test]
    fn generated_systems_execute() {
        let cfg = RandomConfig {
            num_txns: 3,
            steps_per_txn: (1, 3),
            num_vars: 2,
            read_fraction: 0.2,
            hot_fraction: 0.3,
            num_check_states: 2,
            value_range: (-2, 2),
        };
        for seed in 0..20 {
            let sys = random_system(&cfg, seed);
            let ex = Executor::new(&sys);
            // Trivial IC: the basic assumption always holds.
            ex.verify_basic_assumption().unwrap();
            // Run some serial order to exercise evaluation.
            for init in &sys.space.initial_states {
                let order: Vec<crate::ids::TxnId> = (0..sys.num_txns())
                    .map(|i| crate::ids::TxnId(i as u32))
                    .collect();
                ex.run_concatenation(init.clone(), &order).unwrap();
            }
        }
    }

    #[test]
    fn format_respects_bounds() {
        let cfg = RandomConfig {
            num_txns: 4,
            steps_per_txn: (2, 2),
            ..RandomConfig::default()
        };
        let sys = random_system(&cfg, 7);
        assert_eq!(sys.format(), vec![2, 2, 2, 2]);
    }

    #[test]
    fn step_function_library_is_usable() {
        for j in 0..3 {
            for e in small_step_functions(j) {
                assert!(e.max_local().unwrap_or(0) <= j);
            }
        }
        assert!(!small_ics().is_empty());
    }

    #[test]
    fn read_fraction_one_yields_reads_and_writes_only() {
        let cfg = RandomConfig {
            read_fraction: 0.5,
            num_txns: 2,
            steps_per_txn: (4, 4),
            ..RandomConfig::default()
        };
        let sys = random_system(&cfg, 11);
        // All kinds valid; reads use identity semantics so executing works.
        Executor::new(&sys).verify_basic_assumption().unwrap();
    }
}
