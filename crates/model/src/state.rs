//! States of a transaction system.
//!
//! Section 2: "A state of a transaction system T is a triple (J, L, G)" —
//! program counters, declared-local values, and global-variable values.

use crate::ids::{StepId, TxnId, VarId};
use crate::value::Value;
use std::fmt;

/// The values `G` of all global variables (index = `VarId`).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct GlobalState(pub Vec<Value>);

impl GlobalState {
    /// A state with all variables initialized to the given values.
    pub fn new(values: Vec<Value>) -> Self {
        GlobalState(values)
    }

    /// Convenience constructor from integers.
    pub fn from_ints(ints: &[i64]) -> Self {
        GlobalState(ints.iter().map(|&i| Value::Int(i)).collect())
    }

    /// Number of global variables.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when there are no variables.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Value of variable `v`, if in range.
    pub fn get(&self, v: VarId) -> Option<Value> {
        self.0.get(v.index()).copied()
    }

    /// Set the value of variable `v`.
    ///
    /// # Panics
    /// Panics when `v` is out of range.
    pub fn set(&mut self, v: VarId, value: Value) {
        self.0[v.index()] = value;
    }

    /// Iterate `(VarId, Value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VarId, Value)> + '_ {
        self.0
            .iter()
            .enumerate()
            .map(|(i, &v)| (VarId(i as u32), v))
    }
}

impl fmt::Display for GlobalState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// The full state `(J, L, G)` of a transaction system mid-execution.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SystemState {
    /// Program counters `J`: `pc[i]` is the index of the *next* step of
    /// transaction `i`; `pc[i] == m_i` means the transaction has terminated.
    pub pc: Vec<u32>,
    /// Declared locals `L`: `locals[i][k]` is `Some` once step `k` of
    /// transaction `i` has executed and stored `t_{i,k+1}`.
    pub locals: Vec<Vec<Option<Value>>>,
    /// Global values `G`.
    pub globals: GlobalState,
}

impl SystemState {
    /// Initial state for a system with the given format and initial globals:
    /// all counters at 0, no locals declared.
    pub fn initial(format: &[u32], globals: GlobalState) -> Self {
        SystemState {
            pc: vec![0; format.len()],
            locals: format.iter().map(|&m| vec![None; m as usize]).collect(),
            globals,
        }
    }

    /// Is step `s` eligible for execution (it is the next step of its
    /// transaction)?
    pub fn eligible(&self, s: StepId) -> bool {
        self.pc.get(s.txn.index()).is_some_and(|&pc| pc == s.idx)
    }

    /// Has transaction `t` executed all of its steps?
    pub fn terminated(&self, t: TxnId, format: &[u32]) -> bool {
        self.pc[t.index()] == format[t.index()]
    }

    /// Have all transactions terminated?
    pub fn all_terminated(&self, format: &[u32]) -> bool {
        self.pc.iter().zip(format.iter()).all(|(&pc, &m)| pc == m)
    }

    /// The declared locals `t_i1..t_ij` of transaction `i` (values up to but
    /// not including index `upto`). Panics if any of them is undeclared —
    /// that would indicate out-of-order execution.
    pub fn declared_locals(&self, t: TxnId, upto: usize) -> Vec<Value> {
        self.locals[t.index()][..upto]
            .iter()
            .map(|v| v.expect("local declared out of order"))
            .collect()
    }
}

impl fmt::Display for SystemState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "J=(")?;
        for (i, pc) in self.pc.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", pc + 1)?;
        }
        write!(f, ") G={}", self.globals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_state_shape() {
        let s = SystemState::initial(&[3, 2], GlobalState::from_ints(&[10, 20]));
        assert_eq!(s.pc, vec![0, 0]);
        assert_eq!(s.locals[0].len(), 3);
        assert_eq!(s.locals[1].len(), 2);
        assert_eq!(s.globals.get(VarId(1)), Some(Value::Int(20)));
    }

    #[test]
    fn eligibility_tracks_program_counter() {
        let mut s = SystemState::initial(&[2, 1], GlobalState::from_ints(&[0]));
        assert!(s.eligible(StepId::new(0, 0)));
        assert!(!s.eligible(StepId::new(0, 1)));
        s.pc[0] = 1;
        assert!(s.eligible(StepId::new(0, 1)));
        assert!(!s.eligible(StepId::new(0, 0)));
        // Unknown transaction is never eligible.
        assert!(!s.eligible(StepId::new(7, 0)));
    }

    #[test]
    fn termination_checks() {
        let format = [2, 1];
        let mut s = SystemState::initial(&format, GlobalState::from_ints(&[0]));
        assert!(!s.all_terminated(&format));
        s.pc = vec![2, 1];
        assert!(s.terminated(TxnId(0), &format));
        assert!(s.all_terminated(&format));
    }

    #[test]
    fn global_state_accessors() {
        let mut g = GlobalState::from_ints(&[1, 2, 3]);
        assert_eq!(g.len(), 3);
        g.set(VarId(0), Value::Int(9));
        assert_eq!(g.get(VarId(0)), Some(Value::Int(9)));
        assert_eq!(g.get(VarId(7)), None);
        let pairs: Vec<_> = g.iter().collect();
        assert_eq!(pairs[2], (VarId(2), Value::Int(3)));
    }

    #[test]
    fn display_renders_one_based_counters() {
        let s = SystemState::initial(&[1], GlobalState::from_ints(&[5]));
        assert_eq!(s.to_string(), "J=(1) G=(5)");
    }

    #[test]
    fn declared_locals_returns_prefix() {
        let mut s = SystemState::initial(&[3], GlobalState::from_ints(&[0]));
        s.locals[0][0] = Some(Value::Int(4));
        s.locals[0][1] = Some(Value::Int(5));
        assert_eq!(
            s.declared_locals(TxnId(0), 2),
            vec![Value::Int(4), Value::Int(5)]
        );
        assert_eq!(s.declared_locals(TxnId(0), 0), Vec::<Value>::new());
    }
}
