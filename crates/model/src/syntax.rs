//! Transaction-system syntax.
//!
//! Section 2: "A transaction system T is a finite set of transactions
//! {T_1, ..., T_n}, where each transaction T_i is a finite sequence of
//! transaction steps T_i1, ..., T_im_i. [...] The transactions in a
//! transaction system operate on a set of variable names V."
//!
//! Each step `T_ij` names exactly one global variable `x_ij`. The paper
//! notes two special shapes of the step function `f_ij`: the identity on
//! `t_ij` (a pure *read*) and functions independent of `t_ij` (a pure
//! *write*). We record that declaration as [`StepKind`] so downstream
//! conflict analysis can exploit it; the paper's base model declares every
//! step [`StepKind::Update`].

use crate::ids::{Format, StepId, VarId};
use std::collections::BTreeSet;
use std::fmt;

/// Declared shape of a step's function symbol `f_ij`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum StepKind {
    /// `f_ij` is the identity on `t_ij`: the step only observes `x_ij`.
    Read,
    /// `f_ij` does not depend on `t_ij`: the step overwrites `x_ij` using
    /// only earlier locals (a *blind* write when it ignores all of them).
    Write,
    /// The general read-modify-write step of the paper's base model.
    Update,
}

impl StepKind {
    /// Does executing the step observe the current value of its variable?
    pub fn reads(self) -> bool {
        matches!(self, StepKind::Read | StepKind::Update)
    }

    /// Does executing the step change the value of its variable?
    pub fn writes(self) -> bool {
        matches!(self, StepKind::Write | StepKind::Update)
    }

    /// Two steps on the *same* variable conflict unless both are reads.
    pub fn conflicts_with(self, other: StepKind) -> bool {
        self.writes() || other.writes()
    }
}

impl fmt::Display for StepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StepKind::Read => write!(f, "r"),
            StepKind::Write => write!(f, "w"),
            StepKind::Update => write!(f, "u"),
        }
    }
}

/// Syntax of one step: the global variable it accesses and its declared kind.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StepSyntax {
    /// The global variable `x_ij` accessed by the step.
    pub var: VarId,
    /// Declared shape of `f_ij`.
    pub kind: StepKind,
}

/// Syntax of one transaction: an ordered sequence of steps.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TransactionSyntax {
    /// Human-readable name (`T1`, `transfer`, ...).
    pub name: String,
    /// The steps in program order.
    pub steps: Vec<StepSyntax>,
}

impl TransactionSyntax {
    /// Number of steps `m_i`.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True when the transaction has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The set of variables the transaction accesses (its *read/write set*).
    pub fn accessed_vars(&self) -> BTreeSet<VarId> {
        self.steps.iter().map(|s| s.var).collect()
    }

    /// Position of the first access of `v`, if any.
    pub fn first_access(&self, v: VarId) -> Option<usize> {
        self.steps.iter().position(|s| s.var == v)
    }

    /// Position of the last access of `v`, if any.
    pub fn last_access(&self, v: VarId) -> Option<usize> {
        self.steps.iter().rposition(|s| s.var == v)
    }
}

/// Complete syntax of a transaction system: variable names plus the
/// transactions. This is exactly the paper's "complete syntactic
/// information" — what a scheduler at the level of Theorem 3 may see.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Syntax {
    /// Names of the global variables `V` (index = `VarId`).
    pub vars: Vec<String>,
    /// The transactions `T_1 .. T_n`.
    pub transactions: Vec<TransactionSyntax>,
}

impl Syntax {
    /// Number of transactions `n`.
    pub fn num_txns(&self) -> usize {
        self.transactions.len()
    }

    /// Number of global variables `|V|`.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// The format `(m_1, ..., m_n)`.
    pub fn format(&self) -> Format {
        self.transactions
            .iter()
            .map(|t| t.steps.len() as u32)
            .collect()
    }

    /// Total number of steps `Σ m_i`.
    pub fn total_steps(&self) -> usize {
        self.transactions.iter().map(|t| t.steps.len()).sum()
    }

    /// Syntax of step `T_ij`.
    ///
    /// # Panics
    /// Panics when the id is out of range for this syntax.
    pub fn step(&self, id: StepId) -> StepSyntax {
        self.transactions[id.txn.index()].steps[id.idx as usize]
    }

    /// The variable accessed by step `T_ij`.
    pub fn var_of(&self, id: StepId) -> VarId {
        self.step(id).var
    }

    /// Name of variable `v`.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.index()]
    }

    /// Look up a variable id by name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Enumerate every step id in program order.
    pub fn all_steps(&self) -> impl Iterator<Item = StepId> + '_ {
        self.transactions
            .iter()
            .enumerate()
            .flat_map(|(i, t)| (0..t.steps.len() as u32).map(move |j| StepId::new(i as u32, j)))
    }

    /// Do two steps *conflict*: distinct transactions, same variable, and not
    /// both reads? This is the syntactic conflict relation used by the
    /// serialization-graph machinery.
    pub fn conflict(&self, a: StepId, b: StepId) -> bool {
        if a.txn == b.txn {
            return false;
        }
        let sa = self.step(a);
        let sb = self.step(b);
        sa.var == sb.var && sa.kind.conflicts_with(sb.kind)
    }

    /// Structural validation: every step's variable id is in range and every
    /// transaction is non-empty.
    pub fn validate(&self) -> Result<(), String> {
        for (i, t) in self.transactions.iter().enumerate() {
            if t.steps.is_empty() {
                return Err(format!("transaction {} (T{}) has no steps", t.name, i + 1));
            }
            for (j, s) in t.steps.iter().enumerate() {
                if s.var.index() >= self.vars.len() {
                    return Err(format!(
                        "step T{},{} references unknown variable {}",
                        i + 1,
                        j + 1,
                        s.var
                    ));
                }
            }
        }
        Ok(())
    }

    /// Apply a per-transaction variable renaming (used for the §5.4
    /// *unstructured variables* analysis: 2PL must stay correct under
    /// arbitrary renamings local to the transactions' access patterns).
    ///
    /// `rename[v]` gives the new id for old variable `v`; `new_vars` the new
    /// name table.
    pub fn renamed(&self, rename: &[VarId], new_vars: Vec<String>) -> Syntax {
        let transactions = self
            .transactions
            .iter()
            .map(|t| TransactionSyntax {
                name: t.name.clone(),
                steps: t
                    .steps
                    .iter()
                    .map(|s| StepSyntax {
                        var: rename[s.var.index()],
                        kind: s.kind,
                    })
                    .collect(),
            })
            .collect();
        Syntax {
            vars: new_vars,
            transactions,
        }
    }
}

impl fmt::Display for Syntax {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.transactions.iter().enumerate() {
            write!(f, "T{} ({}):", i + 1, t.name)?;
            for s in &t.steps {
                write!(f, " {}[{}]", s.kind, self.var_name(s.var))?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Convenience builder for [`Syntax`].
///
/// ```
/// use ccopt_model::syntax::{SyntaxBuilder, StepKind};
///
/// let syn = SyntaxBuilder::new()
///     .vars(["x", "y"])
///     .txn("T1", |t| t.update("x").update("y"))
///     .txn("T2", |t| t.read("y").write("x"))
///     .build();
/// assert_eq!(syn.format(), vec![2, 2]);
/// ```
#[derive(Default)]
pub struct SyntaxBuilder {
    vars: Vec<String>,
    transactions: Vec<TransactionSyntax>,
}

/// Builder for one transaction's steps; obtained through
/// [`SyntaxBuilder::txn`].
pub struct TxnBuilder<'a> {
    vars: &'a mut Vec<String>,
    steps: Vec<StepSyntax>,
}

impl SyntaxBuilder {
    /// Start an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare variables up front (otherwise they are auto-registered on
    /// first use).
    pub fn vars<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        for n in names {
            let n = n.into();
            if !self.vars.contains(&n) {
                self.vars.push(n);
            }
        }
        self
    }

    /// Add a transaction, describing its steps through the closure.
    pub fn txn(mut self, name: &str, f: impl FnOnce(TxnBuilder<'_>) -> TxnBuilder<'_>) -> Self {
        let b = TxnBuilder {
            vars: &mut self.vars,
            steps: Vec::new(),
        };
        let b = f(b);
        self.transactions.push(TransactionSyntax {
            name: name.to_string(),
            steps: b.steps,
        });
        self
    }

    /// Finish, validating the result.
    pub fn build(self) -> Syntax {
        let s = Syntax {
            vars: self.vars,
            transactions: self.transactions,
        };
        if let Err(e) = s.validate() {
            panic!("invalid syntax: {e}");
        }
        s
    }
}

impl TxnBuilder<'_> {
    fn var_id(&mut self, name: &str) -> VarId {
        if let Some(i) = self.vars.iter().position(|n| n == name) {
            VarId(i as u32)
        } else {
            self.vars.push(name.to_string());
            VarId((self.vars.len() - 1) as u32)
        }
    }

    /// Append a step of the given kind on `var`.
    pub fn step(mut self, var: &str, kind: StepKind) -> Self {
        let var = self.var_id(var);
        self.steps.push(StepSyntax { var, kind });
        self
    }

    /// Append a read step on `var`.
    pub fn read(self, var: &str) -> Self {
        self.step(var, StepKind::Read)
    }

    /// Append a write step on `var`.
    pub fn write(self, var: &str) -> Self {
        self.step(var, StepKind::Write)
    }

    /// Append a general update step on `var` (the paper's base step).
    pub fn update(self, var: &str) -> Self {
        self.step(var, StepKind::Update)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_txn() -> Syntax {
        SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("y"))
            .txn("T2", |t| t.read("y").write("x"))
            .build()
    }

    #[test]
    fn builder_registers_vars_in_order_of_first_use() {
        let s = two_txn();
        assert_eq!(s.vars, vec!["x".to_string(), "y".to_string()]);
        assert_eq!(s.var_by_name("y"), Some(VarId(1)));
        assert_eq!(s.var_by_name("zz"), None);
    }

    #[test]
    fn format_and_steps() {
        let s = two_txn();
        assert_eq!(s.format(), vec![2, 2]);
        assert_eq!(s.total_steps(), 4);
        assert_eq!(s.var_of(StepId::new(0, 1)), VarId(1));
        assert_eq!(s.step(StepId::new(1, 0)).kind, StepKind::Read);
    }

    #[test]
    fn conflict_relation_respects_kinds() {
        let s = two_txn();
        // T1,2 (update y) vs T2,1 (read y): conflict (update writes).
        assert!(s.conflict(StepId::new(0, 1), StepId::new(1, 0)));
        // T1,1 (update x) vs T2,2 (write x): conflict.
        assert!(s.conflict(StepId::new(0, 0), StepId::new(1, 1)));
        // Different variables: no conflict.
        assert!(!s.conflict(StepId::new(0, 0), StepId::new(1, 0)));
        // Same transaction: never a conflict.
        assert!(!s.conflict(StepId::new(0, 0), StepId::new(0, 1)));
    }

    #[test]
    fn read_read_does_not_conflict() {
        let s = SyntaxBuilder::new()
            .txn("T1", |t| t.read("x"))
            .txn("T2", |t| t.read("x"))
            .build();
        assert!(!s.conflict(StepId::new(0, 0), StepId::new(1, 0)));
    }

    #[test]
    fn first_and_last_access() {
        let s = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("y").update("x").update("z"))
            .build();
        let t = &s.transactions[0];
        let x = s.var_by_name("x").unwrap();
        assert_eq!(t.first_access(x), Some(0));
        assert_eq!(t.last_access(x), Some(2));
        assert_eq!(t.accessed_vars().len(), 3);
    }

    #[test]
    fn validate_rejects_empty_transaction() {
        let s = Syntax {
            vars: vec!["x".into()],
            transactions: vec![TransactionSyntax {
                name: "T1".into(),
                steps: vec![],
            }],
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_var() {
        let s = Syntax {
            vars: vec!["x".into()],
            transactions: vec![TransactionSyntax {
                name: "T1".into(),
                steps: vec![StepSyntax {
                    var: VarId(5),
                    kind: StepKind::Update,
                }],
            }],
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn renaming_is_structure_preserving() {
        let s = two_txn();
        // Swap x and y.
        let r = s.renamed(&[VarId(1), VarId(0)], vec!["x".into(), "y".into()]);
        assert_eq!(r.var_of(StepId::new(0, 0)), VarId(1));
        assert_eq!(r.var_of(StepId::new(0, 1)), VarId(0));
        assert_eq!(r.format(), s.format());
    }

    #[test]
    fn display_is_readable() {
        let s = two_txn();
        let d = s.to_string();
        assert!(d.contains("T1"));
        assert!(d.contains("u[x]"));
        assert!(d.contains("r[y]"));
    }

    #[test]
    fn step_kind_predicates() {
        assert!(StepKind::Read.reads() && !StepKind::Read.writes());
        assert!(!StepKind::Write.reads() && StepKind::Write.writes());
        assert!(StepKind::Update.reads() && StepKind::Update.writes());
        assert!(!StepKind::Read.conflicts_with(StepKind::Read));
        assert!(StepKind::Read.conflicts_with(StepKind::Write));
        assert!(StepKind::Update.conflicts_with(StepKind::Update));
    }
}
