//! The full transaction system: syntax + interpretation + integrity
//! constraints, plus the finite state space used for correctness checking.

use crate::ic::{IntegrityConstraint, TrueIc};
use crate::ids::Format;
use crate::interp::{HerbrandInterpretation, Interpretation};
use crate::state::GlobalState;
use crate::syntax::Syntax;
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// A finite set of initial global states over which correctness is decided.
///
/// The paper's domains are enumerable and possibly infinite; deciding
/// "maps every consistent state to a consistent state" is then undecidable
/// in general. We follow the standard reproduction tactic: correctness is
/// checked over a finite, explicitly supplied set of consistent initial
/// states (all the paper's examples have natural finite check sets).
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct StateSpace {
    /// The initial states to check from; each should be consistent.
    pub initial_states: Vec<GlobalState>,
}

impl StateSpace {
    /// Build from explicit states.
    pub fn new(initial_states: Vec<GlobalState>) -> Self {
        StateSpace { initial_states }
    }

    /// Build from integer tuples.
    pub fn from_ints(tuples: &[&[i64]]) -> Self {
        StateSpace {
            initial_states: tuples.iter().map(|t| GlobalState::from_ints(t)).collect(),
        }
    }

    /// Enumerate the full grid `range^num_vars`, keeping states accepted by
    /// `ic`. Suitable for small domains only.
    pub fn enumerate_grid(
        num_vars: usize,
        range: std::ops::RangeInclusive<i64>,
        ic: &dyn IntegrityConstraint,
    ) -> Self {
        let values: Vec<i64> = range.collect();
        let mut states = Vec::new();
        let mut cursor = vec![0usize; num_vars];
        'outer: loop {
            let g = GlobalState::new(cursor.iter().map(|&i| Value::Int(values[i])).collect());
            if ic.is_consistent(&g) {
                states.push(g);
            }
            // Odometer increment.
            for slot in cursor.iter_mut() {
                *slot += 1;
                if *slot < values.len() {
                    continue 'outer;
                }
                *slot = 0;
            }
            break;
        }
        if num_vars == 0 {
            states.clear();
        }
        StateSpace {
            initial_states: states,
        }
    }

    /// Number of initial states.
    pub fn len(&self) -> usize {
        self.initial_states.len()
    }

    /// True when there are no check states.
    pub fn is_empty(&self) -> bool {
        self.initial_states.is_empty()
    }
}

/// A complete transaction system: the paper's `(syntax, semantics, IC)`
/// triple together with the finite check space.
#[derive(Clone)]
pub struct TransactionSystem {
    /// The syntax (complete syntactic information).
    pub syntax: Syntax,
    /// Interpretation of the function symbols.
    pub interp: Arc<dyn Interpretation>,
    /// Integrity constraints.
    pub ic: Arc<dyn IntegrityConstraint>,
    /// Consistent initial states used to decide correctness.
    pub space: StateSpace,
    /// Display name.
    pub name: String,
}

impl TransactionSystem {
    /// Assemble a system. Panics when syntax validation fails.
    pub fn new(
        name: &str,
        syntax: Syntax,
        interp: Arc<dyn Interpretation>,
        ic: Arc<dyn IntegrityConstraint>,
        space: StateSpace,
    ) -> Self {
        if let Err(e) = syntax.validate() {
            panic!("invalid transaction system {name}: {e}");
        }
        TransactionSystem {
            syntax,
            interp,
            ic,
            space,
            name: name.to_string(),
        }
    }

    /// The format `(m_1, ..., m_n)`.
    pub fn format(&self) -> Format {
        self.syntax.format()
    }

    /// Number of transactions.
    pub fn num_txns(&self) -> usize {
        self.syntax.num_txns()
    }

    /// Replace the semantics with the canonical Herbrand interpretation and
    /// the trivial IC, keeping the syntax — this is "the same syntax, free
    /// semantics" companion system used throughout Section 4.2.
    pub fn herbrandized(&self) -> (TransactionSystem, Arc<HerbrandInterpretation>) {
        let h = Arc::new(HerbrandInterpretation::for_syntax(&self.syntax));
        let sys = TransactionSystem {
            syntax: self.syntax.clone(),
            interp: h.clone(),
            ic: Arc::new(TrueIc),
            space: StateSpace::default(),
            name: format!("{}+herbrand", self.name),
        };
        (sys, h)
    }

    /// A copy of this system with a different integrity constraint
    /// (information-level experiments vary IC while fixing the rest).
    pub fn with_ic(&self, ic: Arc<dyn IntegrityConstraint>, space: StateSpace) -> Self {
        TransactionSystem {
            syntax: self.syntax.clone(),
            interp: Arc::clone(&self.interp),
            ic,
            space,
            name: self.name.clone(),
        }
    }

    /// A copy with a different interpretation.
    pub fn with_interp(&self, interp: Arc<dyn Interpretation>) -> Self {
        TransactionSystem {
            syntax: self.syntax.clone(),
            interp,
            ic: Arc::clone(&self.ic),
            space: self.space.clone(),
            name: self.name.clone(),
        }
    }
}

impl fmt::Debug for TransactionSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TransactionSystem")
            .field("name", &self.name)
            .field("format", &self.format())
            .field("interp", &self.interp.name())
            .field("ic", &self.ic.describe())
            .field("check_states", &self.space.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Cond, Expr};
    use crate::ic::CondIc;
    use crate::ids::VarId;
    use crate::interp::ExprInterpretation;
    use crate::syntax::SyntaxBuilder;

    fn tiny() -> TransactionSystem {
        let syntax = SyntaxBuilder::new().txn("T1", |t| t.update("x")).build();
        let interp = ExprInterpretation::new(vec![vec![Expr::add(Expr::Local(0), Expr::Const(1))]]);
        interp.validate(&syntax).unwrap();
        TransactionSystem::new(
            "tiny",
            syntax,
            Arc::new(interp),
            Arc::new(TrueIc),
            StateSpace::from_ints(&[&[0]]),
        )
    }

    #[test]
    fn system_accessors() {
        let s = tiny();
        assert_eq!(s.format(), vec![1]);
        assert_eq!(s.num_txns(), 1);
        assert_eq!(s.space.len(), 1);
    }

    #[test]
    fn herbrandized_shares_syntax() {
        let s = tiny();
        let (h, interp) = s.herbrandized();
        assert_eq!(h.syntax, s.syntax);
        assert_eq!(h.interp.name(), "herbrand");
        // The returned handle is the same interpretation object.
        let t = interp.init_term(VarId(0));
        assert_eq!(interp.arena().lock().render(t, None), "x00");
    }

    #[test]
    fn with_ic_swaps_constraint() {
        let s = tiny();
        let s2 = s.with_ic(
            Arc::new(CondIc(Cond::Ge(Expr::Var(VarId(0)), Expr::Const(0)))),
            StateSpace::from_ints(&[&[1], &[2]]),
        );
        assert_eq!(s2.space.len(), 2);
        assert!(s2.ic.describe().contains(">="));
    }

    #[test]
    fn grid_enumeration_respects_ic() {
        let ic = CondIc(Cond::Eq(Expr::Var(VarId(0)), Expr::Var(VarId(1))));
        let space = StateSpace::enumerate_grid(2, 0..=2, &ic);
        // Diagonal of a 3x3 grid.
        assert_eq!(space.len(), 3);
        for s in &space.initial_states {
            assert_eq!(s.get(VarId(0)), s.get(VarId(1)));
        }
    }

    #[test]
    fn grid_enumeration_zero_vars_is_empty() {
        let space = StateSpace::enumerate_grid(0, 0..=1, &TrueIc);
        assert!(space.is_empty());
    }

    #[test]
    fn debug_format_mentions_name_and_format() {
        let s = tiny();
        let d = format!("{s:?}");
        assert!(d.contains("tiny"));
        assert!(d.contains("expr"));
    }
}
