//! The paper's running examples, packaged as ready-made transaction systems.
//!
//! * [`banking`] — the three-transaction banking example of Section 2
//!   (transfer / withdraw / audit over accounts A, B, sum S, counter C).
//! * [`fig1`] — the Figure 1 system (`T1: x+=1; x*=2` and `T2: x+=1`) whose
//!   history `(T11, T21, T12)` is weakly serializable but not serializable.
//! * [`thm2_adversary`] — the Theorem 2 adversary (`T1: x+=1; x-=1`,
//!   `T2: x*=2`, IC `x=0`).
//! * [`fig2_like`] — a system whose first transaction is Figure 2's
//!   `x y x z` pattern (locking experiments).
//! * [`fig3_pair`] — the two-transaction, two-variable pattern producing the
//!   Figure 3 progress-space picture (and a deadlock region under 2PL).
//! * [`rw_pair`], [`hotspot`] — parameterized families for tests/benches.

use crate::expr::{Cond, Expr};
use crate::ic::{CondIc, TrueIc};
use crate::ids::VarId;
use crate::interp::ExprInterpretation;
use crate::syntax::SyntaxBuilder;
use crate::system::{StateSpace, TransactionSystem};
use std::sync::Arc;

fn local(k: usize) -> Expr {
    Expr::Local(k)
}

fn c(v: i64) -> Expr {
    Expr::Const(v)
}

/// The banking example of Section 2.
///
/// Variables `A, B, S, C`; format `(3, 2, 4)`:
///
/// * `T1` transfers $100 from A to B if A has enough funds and B is below
///   $100: reads A, conditionally updates B, conditionally updates A.
/// * `T2` withdraws $50 from B and increments the counter C if B has enough
///   funds.
/// * `T3` audits: `S ← A + B`, `C ← 0`.
///
/// IC: `A ≥ 0 ∧ B ≥ 0 ∧ A + B = S − 50·C`.
pub fn banking() -> TransactionSystem {
    let syntax = SyntaxBuilder::new()
        .vars(["A", "B", "S", "C"])
        .txn("transfer", |t| t.read("A").update("B").update("A"))
        .txn("withdraw", |t| t.update("B").update("C"))
        .txn("audit", |t| t.read("A").read("B").write("S").write("C"))
        .build();

    let t1_cond = Cond::and(Cond::Ge(local(0), c(100)), Cond::Lt(local(1), c(100)));
    // phi_13's condition re-tests the locals t11 (A) and t12 (B) read earlier.
    let t1_cond_for_a = Cond::and(Cond::Ge(local(0), c(100)), Cond::Lt(local(1), c(100)));
    let interp = ExprInterpretation::new(vec![
        vec![
            // phi_11 = t11 (read A)
            local(0),
            // phi_12 = if t11 >= 100 and t12 < 100 then t12 + 100 else t12
            Expr::ite(t1_cond, Expr::add(local(1), c(100)), local(1)),
            // phi_13 = if t11 >= 100 and t12 < 100 then t13 - 100 else t13
            Expr::ite(t1_cond_for_a, Expr::sub(local(2), c(100)), local(2)),
        ],
        vec![
            // phi_21 = if t21 >= 50 then t21 - 50 else t21
            Expr::ite(
                Cond::Ge(local(0), c(50)),
                Expr::sub(local(0), c(50)),
                local(0),
            ),
            // phi_22 = if t21 >= 50 then t22 + 1 else t22
            Expr::ite(
                Cond::Ge(local(0), c(50)),
                Expr::add(local(1), c(1)),
                local(1),
            ),
        ],
        vec![
            // phi_31 = t31, phi_32 = t32 (reads)
            local(0),
            local(1),
            // phi_33 = t31 + t32 (S <- A + B)
            Expr::add(local(0), local(1)),
            // phi_34 = 0 (C <- 0)
            c(0),
        ],
    ]);
    interp
        .validate(&syntax)
        .expect("banking interpretation matches syntax");

    // IC: A >= 0 and B >= 0 and A + B = S - 50*C.
    let a = Expr::Var(VarId(0));
    let b = Expr::Var(VarId(1));
    let s = Expr::Var(VarId(2));
    let cc = Expr::Var(VarId(3));
    let ic = CondIc(Cond::and(
        Cond::and(Cond::Ge(a.clone(), c(0)), Cond::Ge(b.clone(), c(0))),
        Cond::Eq(Expr::add(a, b), Expr::sub(s, Expr::mul(c(50), cc))),
    ));

    // Consistent check states, including the paper's (150, 50, 200, 0).
    let space = StateSpace::from_ints(&[
        &[150, 50, 200, 0],
        &[100, 100, 200, 0],
        &[0, 0, 0, 0],
        &[250, 100, 400, 1],
        &[120, 40, 210, 1],
    ]);

    TransactionSystem::new("banking", syntax, Arc::new(interp), Arc::new(ic), space)
}

/// The Figure 1 system: `T1 = (T11: x ← x+1, T12: x ← 2x)` and
/// `T2 = (T21: x ← x+1)`; no integrity constraints.
///
/// The history `h = (T11, T21, T12)` is **not** serializable (the Herbrand
/// terms differ from both serials) but **is** weakly serializable: under the
/// given interpretations it produces the same state as the serial history
/// `(T21, T11, T12)` from every start state.
pub fn fig1() -> TransactionSystem {
    let syntax = SyntaxBuilder::new()
        .vars(["x"])
        .txn("T1", |t| t.update("x").update("x"))
        .txn("T2", |t| t.update("x"))
        .build();
    let interp = ExprInterpretation::new(vec![
        vec![Expr::add(local(0), c(1)), Expr::mul(c(2), local(1))],
        vec![Expr::add(local(0), c(1))],
    ]);
    interp.validate(&syntax).expect("fig1 interpretation");
    let space = StateSpace::from_ints(&[&[0], &[1], &[2], &[5], &[-3], &[10]]);
    TransactionSystem::new("fig1", syntax, Arc::new(interp), Arc::new(TrueIc), space)
}

/// The Theorem 2 adversary: `T1 = (x ← x+1, x ← x−1)`, `T2 = (x ← 2x)`,
/// IC `x = 0`.
///
/// Both transactions are individually correct, but the non-serial history
/// `(T11, T21, T12)` maps the consistent state `x = 0` to `x = 1`. This is
/// the witness that no scheduler with minimum information can pass any
/// non-serial schedule.
pub fn thm2_adversary() -> TransactionSystem {
    let syntax = SyntaxBuilder::new()
        .vars(["x"])
        .txn("T1", |t| t.update("x").update("x"))
        .txn("T2", |t| t.update("x"))
        .build();
    let interp = ExprInterpretation::new(vec![
        vec![Expr::add(local(0), c(1)), Expr::sub(local(1), c(1))],
        vec![Expr::mul(c(2), local(0))],
    ]);
    interp.validate(&syntax).expect("thm2 interpretation");
    let ic = CondIc(Cond::Eq(Expr::Var(VarId(0)), c(0)));
    let space = StateSpace::from_ints(&[&[0]]);
    TransactionSystem::new(
        "thm2-adversary",
        syntax,
        Arc::new(interp),
        Arc::new(ic),
        space,
    )
}

/// A system whose first transaction is the Figure 2 pattern
/// `x ← …; y ← …; x ← …; z ← …` (the 2PL transformation example), with a
/// symmetric partner transaction so locking interactions are non-trivial.
pub fn fig2_like() -> TransactionSystem {
    let syntax = SyntaxBuilder::new()
        .vars(["x", "y", "z"])
        .txn("T1", |t| t.update("x").update("y").update("x").update("z"))
        .txn("T2", |t| t.update("z").update("y"))
        .build();
    let interp = ExprInterpretation::new(vec![
        vec![
            Expr::add(local(0), c(1)),
            Expr::add(local(1), c(10)),
            Expr::add(local(2), c(100)),
            Expr::add(local(3), c(1000)),
        ],
        vec![Expr::mul(local(0), c(3)), Expr::mul(local(1), c(5))],
    ]);
    interp.validate(&syntax).expect("fig2 interpretation");
    let space = StateSpace::from_ints(&[&[0, 0, 0], &[1, 2, 3]]);
    TransactionSystem::new(
        "fig2-like",
        syntax,
        Arc::new(interp),
        Arc::new(TrueIc),
        space,
    )
}

/// The classic two-transaction, two-variable crossing pattern that produces
/// the Figure 3 progress-space picture: `T1: x then y`, `T2: y then x`.
/// Under 2PL the progress space contains two overlapping forbidden blocks
/// and a deadlock region `D`.
pub fn fig3_pair() -> TransactionSystem {
    let syntax = SyntaxBuilder::new()
        .vars(["x", "y"])
        .txn("T1", |t| t.update("x").update("y"))
        .txn("T2", |t| t.update("y").update("x"))
        .build();
    let interp = ExprInterpretation::new(vec![
        vec![Expr::add(local(0), c(1)), Expr::add(local(1), c(1))],
        vec![Expr::mul(local(0), c(2)), Expr::mul(local(1), c(2))],
    ]);
    interp.validate(&syntax).expect("fig3 interpretation");
    let space = StateSpace::from_ints(&[&[0, 0], &[1, 1], &[2, 5]]);
    TransactionSystem::new(
        "fig3-pair",
        syntax,
        Arc::new(interp),
        Arc::new(TrueIc),
        space,
    )
}

/// A pair of transactions with disjoint read/write behaviour on `k`
/// variables each plus one shared variable — the smallest family where
/// serialization strictly beats locking. All steps increment.
pub fn rw_pair(private_steps: usize) -> TransactionSystem {
    let mut b = SyntaxBuilder::new().vars(["shared"]);
    b = b.txn("T1", |mut t| {
        t = t.update("shared");
        for k in 0..private_steps {
            // Private variables are auto-registered on first use.
            t = t.update(&format!("a{k}"));
        }
        t
    });
    b = b.txn("T2", |mut t| {
        for k in 0..private_steps {
            t = t.update(&format!("b{k}"));
        }
        t.update("shared")
    });
    let syntax = b.build();
    let exprs = syntax
        .transactions
        .iter()
        .map(|t| {
            (0..t.steps.len())
                .map(|j| Expr::add(local(j), c(1)))
                .collect()
        })
        .collect();
    let interp = ExprInterpretation::new(exprs);
    interp.validate(&syntax).expect("rw_pair interpretation");
    let zeros: Vec<i64> = vec![0; syntax.num_vars()];
    let space = StateSpace::from_ints(&[&zeros]);
    TransactionSystem::new("rw-pair", syntax, Arc::new(interp), Arc::new(TrueIc), space)
}

/// `n` transactions of `steps` increment-steps each, all on one hot variable.
/// Maximal contention: only serial-equivalent interleavings are correct for
/// non-commuting semantics; with pure increments everything commutes.
pub fn hotspot(n: usize, steps: usize) -> TransactionSystem {
    let mut b = SyntaxBuilder::new().vars(["hot"]);
    for i in 0..n {
        b = b.txn(&format!("T{}", i + 1), |mut t| {
            for _ in 0..steps {
                t = t.update("hot");
            }
            t
        });
    }
    let syntax = b.build();
    let exprs = (0..n)
        .map(|_| (0..steps).map(|j| Expr::add(local(j), c(1))).collect())
        .collect();
    let interp = ExprInterpretation::new(exprs);
    interp.validate(&syntax).expect("hotspot interpretation");
    let space = StateSpace::from_ints(&[&[0]]);
    TransactionSystem::new("hotspot", syntax, Arc::new(interp), Arc::new(TrueIc), space)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Executor;
    use crate::ids::{StepId, TxnId};
    use crate::state::GlobalState;
    use crate::value::Value;

    #[test]
    fn banking_matches_paper_format() {
        let sys = banking();
        assert_eq!(sys.format(), vec![3, 2, 4]);
        assert_eq!(sys.syntax.num_vars(), 4);
        // x11 = A, x12 = B, x13 = A.
        assert_eq!(
            sys.syntax.var_name(sys.syntax.var_of(StepId::new(0, 0))),
            "A"
        );
        assert_eq!(
            sys.syntax.var_name(sys.syntax.var_of(StepId::new(0, 1))),
            "B"
        );
        assert_eq!(
            sys.syntax.var_name(sys.syntax.var_of(StepId::new(0, 2))),
            "A"
        );
        // x31..x34 = A, B, S, C.
        assert_eq!(
            sys.syntax.var_name(sys.syntax.var_of(StepId::new(2, 2))),
            "S"
        );
        assert_eq!(
            sys.syntax.var_name(sys.syntax.var_of(StepId::new(2, 3))),
            "C"
        );
    }

    #[test]
    fn banking_satisfies_basic_assumption() {
        let sys = banking();
        Executor::new(&sys).verify_basic_assumption().unwrap();
    }

    #[test]
    fn banking_transfer_moves_funds_when_allowed() {
        let sys = banking();
        let ex = Executor::new(&sys);
        let st = ex
            .run_transaction(GlobalState::from_ints(&[150, 50, 200, 0]), TxnId(0))
            .unwrap();
        assert_eq!(st.globals.get(VarId(0)), Some(Value::Int(50))); // A
        assert_eq!(st.globals.get(VarId(1)), Some(Value::Int(150))); // B
    }

    #[test]
    fn banking_transfer_noops_when_b_is_rich() {
        let sys = banking();
        let ex = Executor::new(&sys);
        let st = ex
            .run_transaction(GlobalState::from_ints(&[100, 100, 200, 0]), TxnId(0))
            .unwrap();
        assert_eq!(st.globals.get(VarId(0)), Some(Value::Int(100)));
        assert_eq!(st.globals.get(VarId(1)), Some(Value::Int(100)));
    }

    #[test]
    fn banking_withdraw_and_audit() {
        let sys = banking();
        let ex = Executor::new(&sys);
        let g = ex
            .run_concatenation(
                GlobalState::from_ints(&[150, 50, 200, 0]),
                &[TxnId(1), TxnId(2)],
            )
            .unwrap();
        // After withdraw: B = 0, C = 1. After audit: S = 150, C = 0.
        assert_eq!(g.get(VarId(1)), Some(Value::Int(0)));
        assert_eq!(g.get(VarId(2)), Some(Value::Int(150)));
        assert_eq!(g.get(VarId(3)), Some(Value::Int(0)));
        assert!(sys.ic.is_consistent(&g));
    }

    #[test]
    fn fig1_history_is_not_equal_to_either_serial_concretely_but_matches_t2_t1() {
        let sys = fig1();
        let ex = Executor::new(&sys);
        let h = [StepId::new(0, 0), StepId::new(1, 0), StepId::new(0, 1)];
        for init in &sys.space.initial_states {
            let x0 = init.get(VarId(0)).unwrap().as_int().unwrap();
            let got = ex.run_sequence(init.clone(), &h).unwrap();
            let got = got.globals.get(VarId(0)).unwrap().as_int().unwrap();
            // h: x -> 2(x + 2)
            assert_eq!(got, 2 * (x0 + 2));
            // Serial T2;T1 gives the same; serial T1;T2 gives 2(x+1)+1.
            let t2t1 = ex
                .run_concatenation(init.clone(), &[TxnId(1), TxnId(0)])
                .unwrap();
            assert_eq!(t2t1.get(VarId(0)).unwrap().as_int().unwrap(), got);
            let t1t2 = ex
                .run_concatenation(init.clone(), &[TxnId(0), TxnId(1)])
                .unwrap();
            assert_eq!(
                t1t2.get(VarId(0)).unwrap().as_int().unwrap(),
                2 * (x0 + 1) + 1
            );
        }
    }

    #[test]
    fn thm2_adversary_witness() {
        let sys = thm2_adversary();
        let ex = Executor::new(&sys);
        ex.verify_basic_assumption().unwrap();
        // The interleaving (T11, T21, T12) maps x=0 to x=1: inconsistent.
        let h = [StepId::new(0, 0), StepId::new(1, 0), StepId::new(0, 1)];
        assert!(ex.check_sequence_correct(&h).is_err());
        // Both serials are fine.
        let s1 = [StepId::new(0, 0), StepId::new(0, 1), StepId::new(1, 0)];
        let s2 = [StepId::new(1, 0), StepId::new(0, 0), StepId::new(0, 1)];
        assert!(ex.check_sequence_correct(&s1).is_ok());
        assert!(ex.check_sequence_correct(&s2).is_ok());
    }

    #[test]
    fn fig2_like_shapes() {
        let sys = fig2_like();
        assert_eq!(sys.format(), vec![4, 2]);
        let t1 = &sys.syntax.transactions[0];
        let names: Vec<&str> = t1
            .steps
            .iter()
            .map(|s| sys.syntax.var_name(s.var))
            .collect();
        assert_eq!(names, vec!["x", "y", "x", "z"]);
        Executor::new(&sys).verify_basic_assumption().unwrap();
    }

    #[test]
    fn fig3_pair_crosses_variables() {
        let sys = fig3_pair();
        let t1: Vec<&str> = sys.syntax.transactions[0]
            .steps
            .iter()
            .map(|s| sys.syntax.var_name(s.var))
            .collect();
        let t2: Vec<&str> = sys.syntax.transactions[1]
            .steps
            .iter()
            .map(|s| sys.syntax.var_name(s.var))
            .collect();
        assert_eq!(t1, vec!["x", "y"]);
        assert_eq!(t2, vec!["y", "x"]);
    }

    #[test]
    fn rw_pair_and_hotspot_are_well_formed() {
        let sys = rw_pair(2);
        assert_eq!(sys.format(), vec![3, 3]);
        Executor::new(&sys).verify_basic_assumption().unwrap();
        let sys = hotspot(3, 2);
        assert_eq!(sys.format(), vec![2, 2, 2]);
        Executor::new(&sys).verify_basic_assumption().unwrap();
    }
}
