//! Herbrand terms and the hash-consing arena.
//!
//! Section 4.2 of the paper supplements syntax with *Herbrand semantics*: the
//! domain of every variable is the set of formal terms over the alphabet
//! `V ∪ {f_ij}`, and the interpretation of `f_ij(a_1, ..., a_j)` is the
//! string `f_ij(a_1, ..., a_j)` itself. "The Herbrand interpretation captures
//! all the history of the values of all global variables."
//!
//! Terms are hash-consed: structurally equal terms share one [`TermId`], so
//! schedule-equivalence checks are O(1) id comparisons and symbolic execution
//! of exponentially-sized value histories stays linear in the number of
//! distinct subterms.

use crate::ids::{StepId, VarId};
use std::collections::HashMap;
use std::fmt;

/// Interned reference to a Herbrand term inside a [`TermArena`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct TermId(pub u32);

/// A Herbrand term: either the initial value symbol of a global variable, or
/// a formal application `f_ij(a_1, ..., a_j)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// The (symbolic) initial value of variable `v` — the paper's `(v_1..v_k)`
    /// initial-value tuple.
    Init(VarId),
    /// Application of the function symbol `f_ij` at step `site` to argument
    /// terms. In the paper's base model `args.len() == site.idx + 1`
    /// (all declared locals `t_i1..t_ij`).
    App {
        /// The step `T_ij` whose function symbol is applied.
        site: StepId,
        /// Interned argument terms.
        args: Box<[TermId]>,
    },
}

/// Hash-consing arena for Herbrand terms.
///
/// All terms of one symbolic execution must be interned in the same arena
/// for `TermId` equality to coincide with structural equality.
#[derive(Default, Debug)]
pub struct TermArena {
    terms: Vec<Term>,
    intern: HashMap<Term, TermId>,
}

impl TermArena {
    /// Create an empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct terms interned so far.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True when no terms have been interned.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Intern a term, returning the existing id when an equal term is known.
    pub fn intern(&mut self, term: Term) -> TermId {
        if let Some(&id) = self.intern.get(&term) {
            return id;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term arena overflow"));
        self.terms.push(term.clone());
        self.intern.insert(term, id);
        id
    }

    /// Intern the initial-value symbol of variable `v`.
    pub fn init(&mut self, v: VarId) -> TermId {
        self.intern(Term::Init(v))
    }

    /// Intern the application `f_site(args...)`.
    pub fn app(&mut self, site: StepId, args: &[TermId]) -> TermId {
        self.intern(Term::App {
            site,
            args: args.into(),
        })
    }

    /// Look up a term by id.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this arena.
    pub fn get(&self, id: TermId) -> &Term {
        &self.terms[id.0 as usize]
    }

    /// The number of function applications in the term (its *size*); `Init`
    /// symbols count zero. Used to bound weak-serializability searches.
    pub fn app_count(&self, id: TermId) -> usize {
        match self.get(id) {
            Term::Init(_) => 0,
            Term::App { args, .. } => 1 + args.iter().map(|&a| self.app_count(a)).sum::<usize>(),
        }
    }

    /// Depth of the term (Init = 0).
    pub fn depth(&self, id: TermId) -> usize {
        match self.get(id) {
            Term::Init(_) => 0,
            Term::App { args, .. } => 1 + args.iter().map(|&a| self.depth(a)).max().unwrap_or(0),
        }
    }

    /// Render a term in the paper's notation, e.g. `f12(f11(A), f21(B))`,
    /// resolving variable names through `var_names` when provided.
    pub fn render(&self, id: TermId, var_names: Option<&[String]>) -> String {
        let mut out = String::new();
        self.render_into(id, var_names, &mut out);
        out
    }

    fn render_into(&self, id: TermId, var_names: Option<&[String]>, out: &mut String) {
        match self.get(id) {
            Term::Init(v) => {
                match var_names.and_then(|ns| ns.get(v.index())) {
                    Some(name) => out.push_str(name),
                    None => out.push_str(&format!("x{}", v.0)),
                }
                out.push('0'); // the paper's "initial value of" marker
            }
            Term::App { site, args } => {
                out.push_str(&format!("f{}{}(", site.txn.0 + 1, site.idx + 1));
                for (k, &a) in args.iter().enumerate() {
                    if k > 0 {
                        out.push_str(", ");
                    }
                    self.render_into(a, var_names, out);
                }
                out.push(')');
            }
        }
    }
}

impl fmt::Display for TermId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_deduplicates() {
        let mut a = TermArena::new();
        let x = a.init(VarId(0));
        let x2 = a.init(VarId(0));
        assert_eq!(x, x2);
        assert_eq!(a.len(), 1);
        let y = a.init(VarId(1));
        assert_ne!(x, y);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn applications_are_structural() {
        let mut a = TermArena::new();
        let x = a.init(VarId(0));
        let s = StepId::new(0, 0);
        let t1 = a.app(s, &[x]);
        let t2 = a.app(s, &[x]);
        assert_eq!(t1, t2);
        let t3 = a.app(StepId::new(1, 0), &[x]);
        assert_ne!(t1, t3);
        // Nested application with different argument is distinct.
        let t4 = a.app(s, &[t1]);
        assert_ne!(t1, t4);
    }

    #[test]
    fn sizes_and_depths() {
        let mut a = TermArena::new();
        let x = a.init(VarId(0));
        assert_eq!(a.app_count(x), 0);
        assert_eq!(a.depth(x), 0);
        let f = a.app(StepId::new(0, 0), &[x]);
        let g = a.app(StepId::new(1, 0), &[f, x]);
        assert_eq!(a.app_count(f), 1);
        assert_eq!(a.app_count(g), 2);
        assert_eq!(a.depth(g), 2);
    }

    #[test]
    fn rendering_matches_paper_notation() {
        let mut a = TermArena::new();
        let x = a.init(VarId(0));
        let f11 = a.app(StepId::new(0, 0), &[x]);
        let f21 = a.app(StepId::new(1, 0), &[f11]);
        let f12 = a.app(StepId::new(0, 1), &[x, f21]);
        assert_eq!(a.render(x, None), "x00");
        assert_eq!(a.render(f12, None), "f12(x00, f21(f11(x00)))");
        let names = vec!["x".to_string()];
        assert_eq!(a.render(f11, Some(&names)), "f11(x0)");
    }

    #[test]
    fn get_roundtrips() {
        let mut a = TermArena::new();
        let x = a.init(VarId(3));
        assert_eq!(a.get(x), &Term::Init(VarId(3)));
    }
}
