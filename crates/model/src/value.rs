//! Domain values.
//!
//! The paper associates with each variable an enumerable domain `D(v)` —
//! "typically the integers, the set {0,1}, or finite strings". We support
//! integers and booleans for concrete semantics, plus Herbrand terms for the
//! canonical free semantics of Section 4.2.

use crate::term::TermId;
use std::fmt;

/// A value drawn from some variable domain.
///
/// Concrete interpretations manipulate `Int`/`Bool`; the Herbrand
/// interpretation manipulates `Term` (indices into a
/// [`TermArena`](crate::term::TermArena)).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// An integer (the paper's "natural numbers" examples use these).
    Int(i64),
    /// A boolean, for domains like `{0, 1}`.
    Bool(bool),
    /// A Herbrand term; meaningful only relative to a term arena.
    Term(TermId),
}

impl Value {
    /// Interpret the value as an integer, treating booleans as 0/1.
    ///
    /// Returns `None` for Herbrand terms, which have no numeric reading.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Bool(b) => Some(i64::from(b)),
            Value::Term(_) => None,
        }
    }

    /// Interpret the value as a boolean (`Int` is true iff nonzero).
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Value::Int(i) => Some(i != 0),
            Value::Bool(b) => Some(b),
            Value::Term(_) => None,
        }
    }

    /// The Herbrand term id, if this value is symbolic.
    pub fn as_term(self) -> Option<TermId> {
        match self {
            Value::Term(t) => Some(t),
            _ => None,
        }
    }

    /// True when this is a symbolic (Herbrand) value.
    pub fn is_symbolic(self) -> bool {
        matches!(self, Value::Term(_))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Term(t) => write!(f, "#{}", t.0),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_conversions() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Bool(false).as_int(), Some(0));
        assert_eq!(Value::Term(TermId(0)).as_int(), None);
    }

    #[test]
    fn bool_conversions() {
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::Int(-3).as_bool(), Some(true));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Term(TermId(1)).as_bool(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(true), Value::Bool(true));
    }

    #[test]
    fn symbolic_detection() {
        assert!(Value::Term(TermId(3)).is_symbolic());
        assert!(!Value::Int(3).is_symbolic());
        assert_eq!(Value::Term(TermId(3)).as_term(), Some(TermId(3)));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::Bool(true).to_string(), "true");
        assert_eq!(Value::Term(TermId(9)).to_string(), "#9");
    }
}
