//! Property tests for the model crate: execution, Herbrand interning,
//! expression evaluation.

use ccopt_model::exec::Executor;
use ccopt_model::expr::{Cond, Env, Expr};
use ccopt_model::ids::{StepId, TxnId, VarId};
use ccopt_model::random::{random_system, RandomConfig};
use ccopt_model::state::GlobalState;
use ccopt_model::term::TermArena;
use ccopt_model::value::Value;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Executing a full serial order visits every step exactly once and
    /// terminates every transaction.
    #[test]
    fn serial_execution_terminates(seed in 0u64..500) {
        let cfg = RandomConfig {
            num_txns: 3,
            steps_per_txn: (1, 3),
            num_vars: 2,
            read_fraction: 0.3,
            hot_fraction: 0.2,
            num_check_states: 2,
            value_range: (-3, 3),
        };
        let sys = random_system(&cfg, seed);
        let ex = Executor::new(&sys);
        let init = sys.space.initial_states[0].clone();
        let order: Vec<TxnId> = (0..sys.num_txns() as u32).map(TxnId).collect();
        let g = ex.run_concatenation(init, &order).expect("serial runs");
        prop_assert_eq!(g.len(), sys.syntax.num_vars());
    }

    /// Step execution is deterministic: same inputs, same outputs.
    #[test]
    fn execution_is_deterministic(seed in 0u64..500) {
        let cfg = RandomConfig {
            num_txns: 2,
            steps_per_txn: (1, 3),
            num_vars: 2,
            read_fraction: 0.0,
            hot_fraction: 0.5,
            num_check_states: 1,
            value_range: (-2, 2),
        };
        let sys = random_system(&cfg, seed);
        let ex = Executor::new(&sys);
        let init = sys.space.initial_states[0].clone();
        let steps: Vec<StepId> = sys.syntax.all_steps().collect();
        // all_steps is T1's steps then T2's — a legal (serial) sequence.
        let a = ex.run_sequence(init.clone(), &steps).expect("runs");
        let b = ex.run_sequence(init, &steps).expect("runs");
        prop_assert_eq!(a.globals, b.globals);
    }

    /// Out-of-order execution is always rejected.
    #[test]
    fn out_of_order_rejected(seed in 0u64..200) {
        let cfg = RandomConfig {
            num_txns: 2,
            steps_per_txn: (2, 3),
            num_vars: 2,
            read_fraction: 0.0,
            hot_fraction: 0.0,
            num_check_states: 1,
            value_range: (-1, 1),
        };
        let sys = random_system(&cfg, seed);
        let ex = Executor::new(&sys);
        let init = sys.space.initial_states[0].clone();
        // Second step of T1 before the first.
        let bad = [StepId::new(0, 1), StepId::new(0, 0)];
        prop_assert!(ex.run_sequence(init, &bad).is_err());
    }

    /// Hash-consing: interning the same structure twice yields the same id,
    /// and ids are stable under unrelated interning.
    #[test]
    fn term_interning_is_stable(vars in proptest::collection::vec(0u32..4, 1..6)) {
        let mut arena = TermArena::new();
        let ids: Vec<_> = vars.iter().map(|&v| arena.init(VarId(v))).collect();
        // Build applications over them.
        let site = StepId::new(0, 0);
        let app1 = arena.app(site, &ids);
        let _noise = arena.init(VarId(99));
        let app2 = arena.app(site, &ids);
        prop_assert_eq!(app1, app2);
        for (&v, &id) in vars.iter().zip(&ids) {
            prop_assert_eq!(arena.init(VarId(v)), id);
        }
    }

    /// Expression evaluation never panics on integer locals and matches a
    /// reference interpreter for affine expressions.
    #[test]
    fn affine_expr_eval(a in -3i64..=3, b in -3i64..=3, x in -100i64..=100) {
        let e = Expr::add(Expr::mul(Expr::Const(a), Expr::Local(0)), Expr::Const(b));
        let locals = [Value::Int(x)];
        prop_assert_eq!(e.eval(Env::locals(&locals)), Ok(a * x + b));
    }

    /// Conditions are total on integer states.
    #[test]
    fn cond_eval_total(x in -50i64..=50, y in -50i64..=50) {
        let g = GlobalState::from_ints(&[x, y]);
        let c = Cond::and(
            Cond::Ge(Expr::Var(VarId(0)), Expr::Const(0)),
            Cond::Lt(Expr::Var(VarId(1)), Expr::Const(10)),
        );
        let expected = x >= 0 && y < 10;
        prop_assert_eq!(c.eval(Env::globals(&g)), Ok(expected));
    }
}
