//! The `ccopt-server` binary: a [`ccopt_net::Server`] behind flags.
//!
//! ```text
//! ccopt-server [--addr 127.0.0.1:0] [--cc strict-2PL] [--shards 4]
//!              [--vars 64] [--data-dir PATH] [--durability strict|group:N|none]
//!              [--max-txns 256] [--pipeline 64] [--queue 1024]
//!              [--shard-queue 256] [--grace-ms 2000] [--trace PATH]
//!              [--wait-valve 24] [--metrics-addr A] [--stats-interval-ms N]
//! ```
//!
//! Prints `listening on <addr>` (machine-parseable — the smoke tests
//! scrape the ephemeral port from it), serves until a wire `Shutdown`
//! request drains it, then prints the drain stats and exits 0. Flag
//! errors exit 2; startup errors (bad log, bind failure) exit 1.
//!
//! `--metrics-addr` starts the ops HTTP listener (`metrics on <addr>` is
//! printed for port scraping); `--stats-interval-ms N` sets the sampler
//! period *and* turns on the periodic machine-parseable `stats ...`
//! stdout line (off by default).

use ccopt_durability::DurabilityMode;
use ccopt_net::{Server, ServerConfig};
use ccopt_trace::TraceConfig;
use std::io::Write;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: ccopt-server [--addr A] [--cc NAME] [--shards N] [--vars N] \
         [--data-dir PATH] [--durability strict|group:N|none] [--max-txns N] \
         [--pipeline N] [--queue N] [--shard-queue N] [--grace-ms N] [--trace PATH] \
         [--wait-valve N] [--metrics-addr A] [--stats-interval-ms N]"
    );
    eprintln!("mechanisms: {}", ccopt_engine::MECHANISM_NAMES.join(", "));
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--addr" => cfg.addr = val(),
            "--cc" => cfg.cc = val(),
            "--shards" => cfg.shards = parse(&val()),
            "--vars" => cfg.num_vars = parse(&val()),
            "--data-dir" => cfg.dir = Some(val().into()),
            "--durability" => {
                let v = val();
                cfg.mode = match v.as_str() {
                    "strict" => DurabilityMode::Strict,
                    "none" => DurabilityMode::None,
                    s => match s.strip_prefix("group:") {
                        Some(n) => DurabilityMode::group(parse(n)),
                        None => usage(),
                    },
                };
            }
            "--max-txns" => cfg.max_txns = parse(&val()),
            "--pipeline" => cfg.pipeline = parse(&val()),
            "--queue" => cfg.queue = parse(&val()),
            "--shard-queue" => cfg.shard_queue = parse(&val()),
            "--grace-ms" => cfg.drain_grace = Duration::from_millis(parse::<u64>(&val())),
            "--wait-valve" => cfg.wait_valve = parse(&val()),
            "--trace" => cfg.trace = Some(TraceConfig::to_sink(val())),
            "--metrics-addr" => cfg.metrics_addr = Some(val()),
            "--stats-interval-ms" => {
                cfg.sample_interval = Duration::from_millis(parse::<u64>(&val()));
                cfg.stats_line = true;
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    // A durable server defaults to strict logging unless told otherwise.
    if cfg.dir.is_some() && matches!(cfg.mode, DurabilityMode::None) {
        cfg.mode = DurabilityMode::Strict;
    }

    let server = match Server::start(cfg.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("ccopt-server: {e}");
            let mut src = std::error::Error::source(&e);
            while let Some(s) = src {
                eprintln!("  caused by: {s}");
                src = s.source();
            }
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    if let Some(m) = server.metrics_addr() {
        println!("metrics on {m}");
    }
    println!(
        "cc={} shards={} vars={} durable={}",
        cfg.cc,
        cfg.shards,
        cfg.num_vars,
        cfg.dir.is_some()
    );
    let _ = std::io::stdout().flush();

    match server.wait() {
        Ok(stats) => {
            println!(
                "drained: commits={} aborted_on_drain={} sheds={} \
                 sheds_pipeline={} sheds_queue={} sheds_txns={}",
                stats.commits,
                stats.aborted_on_drain,
                stats.sheds(),
                stats.sheds_pipeline,
                stats.sheds_queue,
                stats.sheds_txns
            );
        }
        Err(e) => {
            eprintln!("ccopt-server: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| usage())
}
