//! Error types of the served system, following the WAL's `WalError`
//! pattern: precise variants, `Display` + `std::error::Error` with
//! `source()` chaining for I/O causes, and **total decoding** — malformed
//! input surfaces as an `Err` (or closes the connection), never a panic.

use ccopt_durability::WalError;
use std::fmt;
use std::io;

/// A frame or payload that does not decode. These are protocol-level
/// verdicts about *bytes*, so they are `Eq` and carry no I/O cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The frame's length prefix exceeds [`MAX_FRAME`](crate::MAX_FRAME).
    /// Rejected *before* allocating, so a hostile length cannot balloon
    /// memory.
    Oversized {
        /// The claimed payload length.
        len: u32,
    },
    /// The frame's CRC32 does not match its payload (corruption or a
    /// desynchronized stream; the connection closes, as re-framing after
    /// a bad checksum is guesswork).
    Checksum,
    /// The payload is truncated, has an unknown tag, carries trailing
    /// bytes, or a field does not decode (e.g. invalid UTF-8 in an error
    /// message).
    Malformed,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Oversized { len } => write!(
                f,
                "frame length {len} exceeds the {} byte protocol maximum",
                crate::MAX_FRAME
            ),
            WireError::Checksum => write!(f, "frame checksum mismatch"),
            WireError::Malformed => write!(f, "malformed payload"),
        }
    }
}

impl std::error::Error for WireError {}

/// Reading one frame off a stream failed.
#[derive(Debug)]
pub enum FrameError {
    /// The socket failed (includes EOF in the middle of a frame).
    Io(io::Error),
    /// The bytes arrived but do not form a valid frame.
    Wire(WireError),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(_) => write!(f, "frame read failed"),
            FrameError::Wire(e) => write!(f, "invalid frame: {e}"),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            FrameError::Wire(e) => Some(e),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

impl From<WireError> for FrameError {
    fn from(e: WireError) -> Self {
        FrameError::Wire(e)
    }
}

/// Starting or stopping a [`Server`](crate::Server) failed.
#[derive(Debug)]
pub enum ServerError {
    /// Binding the listener or configuring a socket failed.
    Io(io::Error),
    /// The configured concurrency-control name is not one of
    /// [`MECHANISM_NAMES`](ccopt_engine::MECHANISM_NAMES).
    UnknownMechanism(String),
    /// Opening the durable engine (write-ahead logs, recovery) failed.
    Wal(WalError),
    /// The server's engine thread is already gone (stopped twice, or it
    /// exited on a fatal startup error reported elsewhere).
    Stopped,
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Io(_) => write!(f, "server socket I/O failed"),
            ServerError::UnknownMechanism(name) => {
                write!(f, "unknown concurrency-control mechanism {name:?}")
            }
            ServerError::Wal(_) => write!(f, "opening the durable engine failed"),
            ServerError::Stopped => write!(f, "the server is already stopped"),
        }
    }
}

impl std::error::Error for ServerError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServerError::Io(e) => Some(e),
            ServerError::Wal(e) => Some(e),
            ServerError::UnknownMechanism(_) | ServerError::Stopped => None,
        }
    }
}

impl From<io::Error> for ServerError {
    fn from(e: io::Error) -> Self {
        ServerError::Io(e)
    }
}

impl From<WalError> for ServerError {
    fn from(e: WalError) -> Self {
        ServerError::Wal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn sources_chain_to_the_cause() {
        let e = FrameError::from(io::Error::new(io::ErrorKind::UnexpectedEof, "eof"));
        assert!(e.source().is_some());
        let e = ServerError::from(io::Error::new(io::ErrorKind::AddrInUse, "busy"));
        assert!(e.source().is_some());
        assert!(ServerError::UnknownMechanism("2pl".into())
            .source()
            .is_none());
        let _ = format!("{e} {e:?}");
    }
}
