//! The wire protocol: CRC-framed requests and responses.
//!
//! Every message travels as one frame with the write-ahead log's framing
//! convention ([`ccopt_durability::encoding`]):
//!
//! ```text
//! [payload_len: u32 LE] [crc32(payload): u32 LE] [payload bytes]
//! ```
//!
//! so both ends validate each message independently and detect
//! corruption or desynchronization at the frame boundary. Payloads begin
//! with a one-byte opcode followed by the **request id** — a client-chosen
//! `u64` echoed verbatim in the response, which is what lets a connection
//! pipeline many requests and match answers out of a single ordered
//! stream. All integers are little-endian; [`Value`]s use the WAL's
//! tagged value codec verbatim ([`encoding::put_value`] /
//! [`encoding::Cursor::take_value`]).
//!
//! Decoding is **total**: any byte sequence either decodes or returns a
//! [`WireError`]; nothing in this module panics on wire input, and a
//! frame's length prefix is checked against [`MAX_FRAME`]
//! *before* any allocation.

use crate::error::{FrameError, WireError};
use crate::stats::{self, HealthReport, ServerStats};
use ccopt_durability::encoding::{self, Cursor};
use ccopt_engine::BatchOp;
use ccopt_model::ids::VarId;
use ccopt_model::value::Value;
use std::io::{Read, Write};

/// Largest accepted payload. Every legitimate message is tens of bytes
/// (a Stats snapshot a few tens of KiB); the cap exists so a hostile or
/// corrupt length prefix cannot balloon allocation.
pub const MAX_FRAME: u32 = 64 * 1024;

/// Largest operation count accepted in one [`Request::Batch`], checked
/// at decode time **before** any per-op allocation — a hostile count
/// prefix cannot balloon allocation any more than a hostile frame
/// length can. Generous: a batch this size still fits [`MAX_FRAME`]
/// with the largest per-op encoding.
pub const MAX_BATCH_OPS: usize = 1024;

// Request opcodes.
const OP_PING: u8 = 1;
const OP_BEGIN: u8 = 2;
const OP_READ: u8 = 3;
const OP_WRITE: u8 = 4;
const OP_UPDATE: u8 = 5;
const OP_COMMIT: u8 = 6;
const OP_ABORT: u8 = 7;
const OP_SHUTDOWN: u8 = 8;
const OP_STATS: u8 = 9;
const OP_HEALTH: u8 = 10;
const OP_SUBSCRIBE: u8 = 11;
const OP_BATCH: u8 = 12;

// Response opcodes.
const RESP_PONG: u8 = 1;
const RESP_BEGAN: u8 = 2;
const RESP_DONE: u8 = 3;
const RESP_WAIT: u8 = 4;
const RESP_RESTARTED: u8 = 5;
const RESP_COMMITTED: u8 = 6;
const RESP_ABORTED: u8 = 7;
const RESP_SHED: u8 = 8;
const RESP_DRAINING: u8 = 9;
const RESP_ERR: u8 = 10;
const RESP_STATS: u8 = 11;
const RESP_HEALTH: u8 = 12;
const RESP_SUBSCRIBED: u8 = 13;
const RESP_EVENT: u8 = 14;
const RESP_BATCH: u8 = 15;

// Per-op tags inside a Batch request.
const BOP_READ: u8 = 0;
const BOP_WRITE: u8 = 1;
const BOP_AFFINE: u8 = 2;

// Per-op outcome tags inside a Batch response.
const BOUT_DONE: u8 = 0;
const BOUT_WAIT: u8 = 1;
const BOUT_RESTARTED: u8 = 2;

/// A client request. Transactions are named by the server-issued token
/// from [`Response::Began`]; operations mirror the session API's op
/// surface, with the arbitrary update closure narrowed to the affine
/// family `v ← a·v + c` ([`ccopt_engine::affine_eval`]) so an update is
/// plain data on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Liveness probe; answered [`Response::Pong`].
    Ping,
    /// Open a transaction; answered [`Response::Began`] (or
    /// [`Response::Shed`] / [`Response::Draining`] under admission
    /// control).
    Begin,
    /// Observe a variable.
    Read {
        /// The transaction token.
        txn: u64,
        /// The global variable id.
        var: u32,
    },
    /// Blind-write a value (the observed old value rides along in
    /// [`Response::Done`]).
    Write {
        /// The transaction token.
        txn: u64,
        /// The global variable id.
        var: u32,
        /// The value to install.
        value: Value,
    },
    /// Read-modify-write `v ← a·v + c`, atomic under the owning shard's
    /// concurrency control.
    Update {
        /// The transaction token.
        txn: u64,
        /// The global variable id.
        var: u32,
        /// Multiplier.
        a: i64,
        /// Offset.
        c: i64,
    },
    /// Commit the transaction (the token dies on
    /// [`Response::Committed`], survives `Wait`/`Restarted`).
    Commit {
        /// The transaction token.
        txn: u64,
    },
    /// Abort the transaction (the token dies).
    Abort {
        /// The transaction token.
        txn: u64,
    },
    /// Ask the server to drain gracefully and exit; answered
    /// [`Response::Draining`].
    Shutdown,
    /// Ask for the full introspection snapshot; answered
    /// [`Response::Stats`]. Read-only and engine-cheap — safe to poll.
    Stats,
    /// Ask for the compact liveness report; answered
    /// [`Response::Health`].
    Health,
    /// Attach a live trace subscription to this connection; answered
    /// [`Response::Subscribed`], then a stream of [`Response::Events`]
    /// frames (echoing this request's id) until the connection closes.
    /// The per-subscriber buffer is bounded: a slow reader loses events
    /// (counted in-stream), never slows the engine.
    Subscribe,
    /// Many operations of **one transaction** in one frame — the wire
    /// half of batched submission, killing the one-RTT-per-op tax the
    /// way [`ccopt_engine::ShardedDb::apply_batch`] kills the
    /// one-message-per-op tax below. Answered by
    /// exactly one [`Response::Batch`] (or a whole-request refusal:
    /// `Err`, never per-op errors). At most [`MAX_BATCH_OPS`]
    /// operations; more is malformed.
    Batch {
        /// The transaction token.
        txn: u64,
        /// The operations, in program order.
        ops: Vec<BatchOp>,
        /// Piggyback the transaction's commit after the last operation;
        /// attempted only when every operation completes `Done`.
        commit: bool,
    },
}

/// Why the server refused a request outright (the payload of
/// [`Response::Err`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ErrCode {
    /// The transaction token is unknown (never issued, already finished,
    /// or its connection died). Begin a new transaction.
    UnknownTxn,
    /// The request decoded as a frame but not as a meaningful operation
    /// (unknown variable id, bad opcode reported at decode time, ...).
    Malformed,
    /// The shard owning the touched variable crashed mid-flight; nothing
    /// uncommitted there survives. The transaction is dead — begin a new
    /// one (the rest of the database keeps serving).
    ShardDown,
    /// The operation is illegal in the transaction's current state (e.g.
    /// operating on a transaction parked in a prepared two-phase commit).
    BadState,
}

impl ErrCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrCode::UnknownTxn => 0,
            ErrCode::Malformed => 1,
            ErrCode::ShardDown => 2,
            ErrCode::BadState => 3,
        }
    }

    fn from_byte(b: u8) -> Option<ErrCode> {
        Some(match b {
            0 => ErrCode::UnknownTxn,
            1 => ErrCode::Malformed,
            2 => ErrCode::ShardDown,
            3 => ErrCode::BadState,
            _ => return None,
        })
    }
}

impl std::fmt::Display for ErrCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ErrCode::UnknownTxn => write!(f, "unknown transaction token"),
            ErrCode::Malformed => write!(f, "malformed request"),
            ErrCode::ShardDown => write!(f, "owning shard is down"),
            ErrCode::BadState => write!(f, "illegal in the transaction's current state"),
        }
    }
}

/// One operation's outcome inside a [`Response::Batch`], mirroring the
/// per-op responses: `Done` carries the observed value, a trailing
/// `Wait` means resume the program **from that operation**, a trailing
/// `Restarted` means the whole transaction restarted — replay its
/// program on the same token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BatchOutcome {
    /// The operation executed; `value` is the observed value.
    Done {
        /// The observed value.
        value: Value,
    },
    /// The operation blocked; retry from it.
    Wait,
    /// The transaction restarted; replay its program.
    Restarted,
}

/// The piggybacked commit's outcome inside a [`Response::Batch`],
/// mirroring [`Response::Committed`] / `Wait` / `Restarted`: the token
/// dies on `Committed`, survives the other two (retry the commit /
/// replay the program).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchCommit {
    /// The commit is durable (to the configured durability mode).
    Committed,
    /// The commit blocked; retry it (a commit-only [`Request::Batch`]
    /// or a plain [`Request::Commit`]).
    Wait,
    /// Commit-time validation failed and the transaction restarted;
    /// replay its program.
    Restarted,
}

/// A server response, echoing the request's id. `Wait` and `Restarted`
/// carry the session layer's [`Op`](ccopt_engine::Op) semantics onto the
/// wire: `Wait` = retry the same operation after a backoff, `Restarted` =
/// the whole transaction restarted under a fresh timestamp, replay its
/// program on the same token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// The server is alive.
    Pong,
    /// A transaction opened.
    Began {
        /// Its token, the `txn` of every subsequent request.
        txn: u64,
    },
    /// The operation executed; for reads and updates `value` is the
    /// observed value, for writes the overwritten one.
    Done {
        /// The observed value.
        value: Value,
    },
    /// The operation blocked; retry it.
    Wait,
    /// The transaction restarted; replay its program on the same token.
    Restarted,
    /// The commit is durable (to the configured durability mode).
    Committed,
    /// The abort took effect.
    Aborted,
    /// Admission control refused the request: a bounded queue was full.
    /// Back off and retry; the transaction state is unchanged (a shed
    /// `Begin` opened nothing, a shed operation restarted the
    /// transaction — the server answers `Restarted` in that case, never
    /// `Shed`).
    Shed,
    /// The server is draining: no new transactions. Also the
    /// acknowledgement of [`Request::Shutdown`].
    Draining,
    /// The request was refused outright.
    Err {
        /// Why.
        code: ErrCode,
        /// Human-readable detail (short, ASCII).
        msg: String,
    },
    /// The introspection snapshot ([`Request::Stats`]).
    Stats {
        /// The snapshot (boxed: it dwarfs every other variant).
        stats: Box<ServerStats>,
    },
    /// The liveness report ([`Request::Health`]).
    Health {
        /// The report.
        report: HealthReport,
    },
    /// The subscription is live; [`Response::Events`] frames follow.
    Subscribed,
    /// A batch of streamed trace events on a live subscription. The
    /// server packs whatever the subscriber's ring had ready into one
    /// frame — on a busy server that amortizes the framing, syscall and
    /// wake-up cost per event, which is what keeps observation from
    /// perturbing the workload being observed.
    Events {
        /// Events dropped on this subscription so far (cumulative): a
        /// jump between consecutive frames is the in-stream drop report.
        dropped: u64,
        /// Each event as one schema-valid JSONL line
        /// ([`ccopt_trace::validate_jsonl_line`]), in stream order.
        lines: Vec<String>,
    },
    /// The outcomes of a [`Request::Batch`] — the **partial-batch
    /// contract**: `results` comes back in submission order and stops
    /// at the first non-`Done` outcome (operations after it were not
    /// attempted; the vector is short). `commit` is present only when
    /// the request asked for one *and* every operation completed
    /// `Done`.
    Batch {
        /// Per-operation outcomes, short at the first non-`Done`.
        results: Vec<BatchOutcome>,
        /// The piggybacked commit's outcome, when attempted.
        commit: Option<BatchCommit>,
    },
}

// ------------------------------------------------------------- framing

/// Append one frame (length + CRC + payload) to `out`.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&encoding::crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Write one frame to a stream (no flush; callers batch and flush).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    frame_into(&mut buf, payload);
    w.write_all(&buf)
}

/// Read one frame off a stream. `Ok(None)` is a clean EOF **at a frame
/// boundary** (the peer closed between messages); EOF inside a frame is
/// an error like any other truncation. The length prefix is validated
/// against [`MAX_FRAME`] before the payload is
/// allocated, and the checksum before the payload is returned.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut head = [0u8; 8];
    let mut got = 0;
    while got < head.len() {
        match r.read(&mut head[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => {
                return Err(FrameError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside a frame header",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let len = u32::from_le_bytes(head[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(head[4..8].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(FrameError::Wire(WireError::Oversized { len }));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if encoding::crc32(&payload) != crc {
        return Err(FrameError::Wire(WireError::Checksum));
    }
    Ok(Some(payload))
}

// ------------------------------------------------------------ requests

/// Encode a request payload (frame it with [`frame_into`] /
/// [`write_frame`] to put it on a wire).
pub fn encode_request(req_id: u64, req: &Request) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    let op = match req {
        Request::Ping => OP_PING,
        Request::Begin => OP_BEGIN,
        Request::Read { .. } => OP_READ,
        Request::Write { .. } => OP_WRITE,
        Request::Update { .. } => OP_UPDATE,
        Request::Commit { .. } => OP_COMMIT,
        Request::Abort { .. } => OP_ABORT,
        Request::Shutdown => OP_SHUTDOWN,
        Request::Stats => OP_STATS,
        Request::Health => OP_HEALTH,
        Request::Subscribe => OP_SUBSCRIBE,
        Request::Batch { .. } => OP_BATCH,
    };
    b.push(op);
    b.extend_from_slice(&req_id.to_le_bytes());
    match *req {
        Request::Ping
        | Request::Begin
        | Request::Shutdown
        | Request::Stats
        | Request::Health
        | Request::Subscribe => {}
        Request::Batch {
            txn,
            ref ops,
            commit,
        } => {
            debug_assert!(ops.len() <= MAX_BATCH_OPS);
            b.extend_from_slice(&txn.to_le_bytes());
            b.push(commit as u8);
            b.extend_from_slice(&(ops.len().min(MAX_BATCH_OPS) as u16).to_le_bytes());
            for op in ops.iter().take(MAX_BATCH_OPS) {
                match *op {
                    BatchOp::Read(var) => {
                        b.push(BOP_READ);
                        b.extend_from_slice(&var.0.to_le_bytes());
                    }
                    BatchOp::Write(var, value) => {
                        b.push(BOP_WRITE);
                        b.extend_from_slice(&var.0.to_le_bytes());
                        encoding::put_value(&mut b, value);
                    }
                    BatchOp::Affine { var, a, c } => {
                        b.push(BOP_AFFINE);
                        b.extend_from_slice(&var.0.to_le_bytes());
                        b.extend_from_slice(&a.to_le_bytes());
                        b.extend_from_slice(&c.to_le_bytes());
                    }
                }
            }
        }
        Request::Read { txn, var } => {
            b.extend_from_slice(&txn.to_le_bytes());
            b.extend_from_slice(&var.to_le_bytes());
        }
        Request::Write { txn, var, value } => {
            b.extend_from_slice(&txn.to_le_bytes());
            b.extend_from_slice(&var.to_le_bytes());
            encoding::put_value(&mut b, value);
        }
        Request::Update { txn, var, a, c } => {
            b.extend_from_slice(&txn.to_le_bytes());
            b.extend_from_slice(&var.to_le_bytes());
            b.extend_from_slice(&a.to_le_bytes());
            b.extend_from_slice(&c.to_le_bytes());
        }
        Request::Commit { txn } | Request::Abort { txn } => {
            b.extend_from_slice(&txn.to_le_bytes());
        }
    }
    b
}

/// Decode a request payload. Total: any byte sequence either decodes or
/// returns [`WireError::Malformed`] (trailing bytes included).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), WireError> {
    let mut c = Cursor::new(payload);
    let op = c.take_u8().ok_or(WireError::Malformed)?;
    let req_id = c.take_u64().ok_or(WireError::Malformed)?;
    let req = match op {
        OP_PING => Request::Ping,
        OP_BEGIN => Request::Begin,
        OP_READ => Request::Read {
            txn: c.take_u64().ok_or(WireError::Malformed)?,
            var: c.take_u32().ok_or(WireError::Malformed)?,
        },
        OP_WRITE => Request::Write {
            txn: c.take_u64().ok_or(WireError::Malformed)?,
            var: c.take_u32().ok_or(WireError::Malformed)?,
            value: c.take_value().ok_or(WireError::Malformed)?,
        },
        OP_UPDATE => Request::Update {
            txn: c.take_u64().ok_or(WireError::Malformed)?,
            var: c.take_u32().ok_or(WireError::Malformed)?,
            a: c.take_u64().ok_or(WireError::Malformed)? as i64,
            c: c.take_u64().ok_or(WireError::Malformed)? as i64,
        },
        OP_COMMIT => Request::Commit {
            txn: c.take_u64().ok_or(WireError::Malformed)?,
        },
        OP_ABORT => Request::Abort {
            txn: c.take_u64().ok_or(WireError::Malformed)?,
        },
        OP_SHUTDOWN => Request::Shutdown,
        OP_STATS => Request::Stats,
        OP_HEALTH => Request::Health,
        OP_SUBSCRIBE => Request::Subscribe,
        OP_BATCH => {
            let txn = c.take_u64().ok_or(WireError::Malformed)?;
            let commit = match c.take_u8().ok_or(WireError::Malformed)? {
                0 => false,
                1 => true,
                _ => return Err(WireError::Malformed),
            };
            let count = c.take_u16().ok_or(WireError::Malformed)? as usize;
            if count > MAX_BATCH_OPS {
                return Err(WireError::Malformed);
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                let op = match c.take_u8().ok_or(WireError::Malformed)? {
                    BOP_READ => BatchOp::Read(VarId(c.take_u32().ok_or(WireError::Malformed)?)),
                    BOP_WRITE => BatchOp::Write(
                        VarId(c.take_u32().ok_or(WireError::Malformed)?),
                        c.take_value().ok_or(WireError::Malformed)?,
                    ),
                    BOP_AFFINE => BatchOp::Affine {
                        var: VarId(c.take_u32().ok_or(WireError::Malformed)?),
                        a: c.take_u64().ok_or(WireError::Malformed)? as i64,
                        c: c.take_u64().ok_or(WireError::Malformed)? as i64,
                    },
                    _ => return Err(WireError::Malformed),
                };
                ops.push(op);
            }
            Request::Batch { txn, ops, commit }
        }
        _ => return Err(WireError::Malformed),
    };
    if !c.at_end() {
        return Err(WireError::Malformed);
    }
    Ok((req_id, req))
}

// ----------------------------------------------------------- responses

/// Encode a response payload.
pub fn encode_response(req_id: u64, resp: &Response) -> Vec<u8> {
    let mut b = Vec::with_capacity(32);
    let op = match resp {
        Response::Pong => RESP_PONG,
        Response::Began { .. } => RESP_BEGAN,
        Response::Done { .. } => RESP_DONE,
        Response::Wait => RESP_WAIT,
        Response::Restarted => RESP_RESTARTED,
        Response::Committed => RESP_COMMITTED,
        Response::Aborted => RESP_ABORTED,
        Response::Shed => RESP_SHED,
        Response::Draining => RESP_DRAINING,
        Response::Err { .. } => RESP_ERR,
        Response::Stats { .. } => RESP_STATS,
        Response::Health { .. } => RESP_HEALTH,
        Response::Subscribed => RESP_SUBSCRIBED,
        Response::Events { .. } => RESP_EVENT,
        Response::Batch { .. } => RESP_BATCH,
    };
    b.push(op);
    b.extend_from_slice(&req_id.to_le_bytes());
    match resp {
        Response::Began { txn } => b.extend_from_slice(&txn.to_le_bytes()),
        Response::Done { value } => encoding::put_value(&mut b, *value),
        Response::Err { code, msg } => {
            b.push(code.to_byte());
            let bytes = msg.as_bytes();
            let n = bytes.len().min(u16::MAX as usize);
            b.extend_from_slice(&(n as u16).to_le_bytes());
            b.extend_from_slice(&bytes[..n]);
        }
        Response::Stats { stats } => stats::put_stats(&mut b, stats),
        Response::Health { report } => stats::put_health(&mut b, report),
        Response::Events { dropped, lines } => {
            b.extend_from_slice(&dropped.to_le_bytes());
            let count = lines.len().min(u16::MAX as usize);
            b.extend_from_slice(&(count as u16).to_le_bytes());
            for line in &lines[..count] {
                let bytes = line.as_bytes();
                let n = bytes.len().min(u16::MAX as usize);
                b.extend_from_slice(&(n as u16).to_le_bytes());
                b.extend_from_slice(&bytes[..n]);
            }
        }
        Response::Batch { results, commit } => {
            debug_assert!(results.len() <= MAX_BATCH_OPS);
            let count = results.len().min(MAX_BATCH_OPS);
            b.extend_from_slice(&(count as u16).to_le_bytes());
            for r in &results[..count] {
                match r {
                    BatchOutcome::Done { value } => {
                        b.push(BOUT_DONE);
                        encoding::put_value(&mut b, *value);
                    }
                    BatchOutcome::Wait => b.push(BOUT_WAIT),
                    BatchOutcome::Restarted => b.push(BOUT_RESTARTED),
                }
            }
            b.push(match commit {
                None => 0,
                Some(BatchCommit::Committed) => 1,
                Some(BatchCommit::Wait) => 2,
                Some(BatchCommit::Restarted) => 3,
            });
        }
        _ => {}
    }
    b
}

/// Decode a response payload. Total, like [`decode_request`].
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), WireError> {
    let mut c = Cursor::new(payload);
    let op = c.take_u8().ok_or(WireError::Malformed)?;
    let req_id = c.take_u64().ok_or(WireError::Malformed)?;
    let resp = match op {
        RESP_PONG => Response::Pong,
        RESP_BEGAN => Response::Began {
            txn: c.take_u64().ok_or(WireError::Malformed)?,
        },
        RESP_DONE => Response::Done {
            value: c.take_value().ok_or(WireError::Malformed)?,
        },
        RESP_WAIT => Response::Wait,
        RESP_RESTARTED => Response::Restarted,
        RESP_COMMITTED => Response::Committed,
        RESP_ABORTED => Response::Aborted,
        RESP_SHED => Response::Shed,
        RESP_DRAINING => Response::Draining,
        RESP_ERR => {
            let code = ErrCode::from_byte(c.take_u8().ok_or(WireError::Malformed)?)
                .ok_or(WireError::Malformed)?;
            let n = c.take_u16().ok_or(WireError::Malformed)? as usize;
            let bytes = c.take_bytes(n).ok_or(WireError::Malformed)?;
            let msg = std::str::from_utf8(bytes)
                .map_err(|_| WireError::Malformed)?
                .to_string();
            Response::Err { code, msg }
        }
        RESP_STATS => Response::Stats {
            stats: Box::new(stats::take_stats(&mut c).ok_or(WireError::Malformed)?),
        },
        RESP_HEALTH => Response::Health {
            report: stats::take_health(&mut c).ok_or(WireError::Malformed)?,
        },
        RESP_SUBSCRIBED => Response::Subscribed,
        RESP_EVENT => {
            let dropped = c.take_u64().ok_or(WireError::Malformed)?;
            let count = c.take_u16().ok_or(WireError::Malformed)? as usize;
            let mut lines = Vec::new();
            for _ in 0..count {
                let n = c.take_u16().ok_or(WireError::Malformed)? as usize;
                let bytes = c.take_bytes(n).ok_or(WireError::Malformed)?;
                lines.push(
                    std::str::from_utf8(bytes)
                        .map_err(|_| WireError::Malformed)?
                        .to_string(),
                );
            }
            Response::Events { dropped, lines }
        }
        RESP_BATCH => {
            let count = c.take_u16().ok_or(WireError::Malformed)? as usize;
            if count > MAX_BATCH_OPS {
                return Err(WireError::Malformed);
            }
            let mut results = Vec::with_capacity(count);
            for _ in 0..count {
                let r = match c.take_u8().ok_or(WireError::Malformed)? {
                    BOUT_DONE => BatchOutcome::Done {
                        value: c.take_value().ok_or(WireError::Malformed)?,
                    },
                    BOUT_WAIT => BatchOutcome::Wait,
                    BOUT_RESTARTED => BatchOutcome::Restarted,
                    _ => return Err(WireError::Malformed),
                };
                results.push(r);
            }
            let commit = match c.take_u8().ok_or(WireError::Malformed)? {
                0 => None,
                1 => Some(BatchCommit::Committed),
                2 => Some(BatchCommit::Wait),
                3 => Some(BatchCommit::Restarted),
                _ => return Err(WireError::Malformed),
            };
            Response::Batch { results, commit }
        }
        _ => return Err(WireError::Malformed),
    };
    if !c.at_end() {
        return Err(WireError::Malformed);
    }
    Ok((req_id, resp))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_requests() -> Vec<Request> {
        vec![
            Request::Ping,
            Request::Begin,
            Request::Read { txn: 7, var: 3 },
            Request::Write {
                txn: 7,
                var: 3,
                value: Value::Int(-9),
            },
            Request::Update {
                txn: 7,
                var: 3,
                a: -2,
                c: i64::MAX,
            },
            Request::Commit { txn: 7 },
            Request::Abort { txn: 7 },
            Request::Shutdown,
            Request::Stats,
            Request::Health,
            Request::Subscribe,
            Request::Batch {
                txn: 7,
                ops: vec![
                    BatchOp::Read(VarId(3)),
                    BatchOp::Write(VarId(4), Value::Int(-9)),
                    BatchOp::Affine {
                        var: VarId(5),
                        a: -2,
                        c: i64::MAX,
                    },
                ],
                commit: true,
            },
            Request::Batch {
                txn: 8,
                ops: vec![],
                commit: false,
            },
        ]
    }

    fn all_responses() -> Vec<Response> {
        vec![
            Response::Pong,
            Response::Began { txn: 42 },
            Response::Done {
                value: Value::Bool(true),
            },
            Response::Wait,
            Response::Restarted,
            Response::Committed,
            Response::Aborted,
            Response::Shed,
            Response::Draining,
            Response::Err {
                code: ErrCode::UnknownTxn,
                msg: "token 9 was retired".into(),
            },
            Response::Stats {
                stats: Box::new(ServerStats {
                    uptime_ms: 99,
                    cc: "occ".into(),
                    num_vars: 8,
                    shards: vec![crate::stats::ShardHealth {
                        alive: true,
                        down: false,
                        restarts: 1,
                    }],
                    series: vec![crate::stats::SamplePoint {
                        at_ms: 50,
                        commits: 2,
                        ..Default::default()
                    }],
                    ..Default::default()
                }),
            },
            Response::Health {
                report: HealthReport {
                    degraded: true,
                    draining: false,
                    shards: 2,
                    shards_down: 1,
                },
            },
            Response::Subscribed,
            Response::Batch {
                results: vec![
                    BatchOutcome::Done {
                        value: Value::Int(12),
                    },
                    BatchOutcome::Done {
                        value: Value::Bool(false),
                    },
                    BatchOutcome::Restarted,
                ],
                commit: None,
            },
            Response::Batch {
                results: vec![BatchOutcome::Done {
                    value: Value::Int(1),
                }],
                commit: Some(BatchCommit::Committed),
            },
            Response::Batch {
                results: vec![BatchOutcome::Wait],
                commit: Some(BatchCommit::Wait),
            },
            Response::Batch {
                results: vec![],
                commit: Some(BatchCommit::Restarted),
            },
            Response::Events {
                dropped: 3,
                lines: vec![
                    "{\"gseq\":1,\"shard\":0,\"seq\":1,\"tick\":0,\"event\":\"drain_start\"}"
                        .into(),
                    "{\"gseq\":2,\"shard\":0,\"seq\":2,\"tick\":1,\"event\":\"drain_done\"}".into(),
                ],
            },
        ]
    }

    #[test]
    fn every_request_round_trips() {
        for req in all_requests() {
            let p = encode_request(11, &req);
            assert_eq!(decode_request(&p), Ok((11, req)));
        }
    }

    #[test]
    fn every_response_round_trips() {
        for resp in all_responses() {
            let p = encode_response(13, &resp);
            assert_eq!(decode_response(&p), Ok((13, resp)));
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut p = encode_request(1, &Request::Begin);
        p.push(0);
        assert_eq!(decode_request(&p), Err(WireError::Malformed));
    }

    #[test]
    fn oversized_batch_op_count_is_rejected_before_allocating() {
        // A hand-built Batch payload claiming u16::MAX ops with no op
        // bytes behind the claim: the count check must fire before any
        // per-op decoding or allocation.
        let mut p = Vec::new();
        p.push(OP_BATCH);
        p.extend_from_slice(&1u64.to_le_bytes()); // req_id
        p.extend_from_slice(&7u64.to_le_bytes()); // txn
        p.push(0); // commit = false
        p.extend_from_slice(&u16::MAX.to_le_bytes()); // op count
        assert_eq!(decode_request(&p), Err(WireError::Malformed));
    }

    #[test]
    fn batch_commit_flag_must_be_boolean() {
        let mut p = encode_request(
            1,
            &Request::Batch {
                txn: 7,
                ops: vec![],
                commit: false,
            },
        );
        // Flip the commit flag byte (right after opcode + req_id + txn)
        // to a non-boolean value.
        p[1 + 8 + 8] = 2;
        assert_eq!(decode_request(&p), Err(WireError::Malformed));
    }

    #[test]
    fn frames_round_trip_over_a_stream() {
        let mut wire = Vec::new();
        for req in all_requests() {
            write_frame(&mut wire, &encode_request(1, &req)).unwrap();
        }
        let mut r = &wire[..];
        for req in all_requests() {
            let p = read_frame(&mut r).unwrap().expect("frame present");
            assert_eq!(decode_request(&p).unwrap().1, req);
        }
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&u32::MAX.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        match read_frame(&mut &wire[..]) {
            Err(FrameError::Wire(WireError::Oversized { len })) => assert_eq!(len, u32::MAX),
            other => panic!("expected Oversized, got {other:?}"),
        }
    }
}
