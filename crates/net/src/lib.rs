//! # `ccopt-net` — the served system
//!
//! The engine so far ran in-process: one address space, simulated
//! arrival streams. This crate is ROADMAP item 3's "millions of users
//! story": a TCP front-end serving the session API over a
//! length-prefixed, CRC-framed wire protocol, so concurrency-control
//! mechanisms face *real* concurrent load — independent clients on real
//! sockets — instead of a driver loop.
//!
//! * [`frame`] — the wire protocol: the write-ahead log's framing
//!   convention (`[len][crc32][payload]`, [`ccopt_durability::encoding`])
//!   carrying request/response payloads with client-chosen request ids
//!   for pipelining; decoding is total (never panics on wire input);
//! * [`server`] — the [`Server`]: accept/reader/writer threads around
//!   one engine thread that owns a [`ccopt_engine::ShardedDb`], batches
//!   consecutive same-transaction operations through
//!   [`ccopt_engine::ShardedDb::apply_batch`], sheds load at three
//!   bounded layers, and drains gracefully on shutdown;
//! * [`stats`] — the ops plane's data model: [`ServerStats`] snapshots
//!   (answering [`Request::Stats`]), the sampler's [`SamplePoint`]
//!   time-series, [`HealthReport`], their total wire codecs, and the
//!   dependency-free Prometheus text exposition served at `/metrics`;
//! * [`error`] — [`ServerError`] / [`WireError`] / [`FrameError`]
//!   following the `WalError` pattern (Display + Error + source
//!   chaining).
//!
//! The `ccopt-server` binary wraps [`Server`] with flags
//! (`--addr --cc --shards --data-dir ...`); `ccopt-client` is the
//! mirror-image client crate; `docs/SERVER.md` specifies the protocol,
//! admission control, and drain semantics.

pub mod error;
pub mod frame;
pub mod server;
pub mod stats;

pub use error::{FrameError, ServerError, WireError};
pub use frame::{
    decode_request, decode_response, encode_request, encode_response, frame_into, read_frame,
    write_frame, BatchCommit, BatchOutcome, ErrCode, Request, Response, MAX_BATCH_OPS, MAX_FRAME,
};
pub use server::{DrainStats, Server, ServerConfig};
pub use stats::{
    parse_prometheus, render_prometheus, sample, ContendedVar, HealthReport, SamplePoint,
    ServerStats, ShardHealth,
};
