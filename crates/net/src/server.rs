//! The TCP front-end: connection handling, request pipelining, admission
//! control, and graceful drain over a [`ShardedDb`].
//!
//! # Threads
//!
//! One **accept** thread polls the listener; each connection gets a
//! **reader** thread (decode frames, admission-check, forward to the
//! engine) and a **writer** thread (frame and batch responses back out).
//! One **engine** thread owns the [`ShardedDb`] and is the only thread
//! that touches it: every connection's requests are multiplexed onto it
//! through one bounded channel, and consecutive data operations of the
//! same transaction are submitted through [`ShardedDb::apply_batch`] so a
//! pipelining client amortizes the per-operation shard-mailbox round
//! trip.
//!
//! # Admission control
//!
//! Three bounded layers, each answering [`Response::Shed`] (or the
//! equivalent) instead of queueing unboundedly:
//!
//! 1. **per-connection pipeline cap** — at most `pipeline` requests may
//!    be awaiting responses on one connection; excess requests are shed
//!    by the reader thread without ever reaching the engine. This also
//!    bounds every per-connection outbox: the writer never holds more
//!    than `pipeline` undelivered responses.
//! 2. **engine queue** — one bounded channel in front of the engine
//!    thread; readers `try_send` and shed on overflow.
//! 3. **transaction cap and shard mailboxes** — `Begin` is shed when
//!    `max_txns` transactions are live; admitted operations still hit the
//!    existing per-shard bounded mailboxes ([`ShardedDb::
//!    set_queue_capacity`]), whose overflow restarts the transaction
//!    through the engine's `shed_aborts` / `ConflictRule::Shed`
//!    accounting and answers [`Response::Restarted`].
//!
//! # Drain
//!
//! [`Server::shutdown`] (or a wire [`Request::Shutdown`]) starts a
//! drain: new transactions are refused with [`Response::Draining`],
//! in-flight transactions get a grace period to finish, stragglers are
//! aborted, the logs are synced, and `DrainStart`/`DrainDone` trace
//! events bracket the whole episode. [`Server::kill`] is the opposite:
//! drop everything without a final sync — the crash the durability tests
//! recover from.

use crate::error::{FrameError, ServerError};
use crate::frame::{
    decode_request, encode_response, frame_into, read_frame, ErrCode, Request, Response,
};
use ccopt_durability::DurabilityMode;
use ccopt_engine::{
    cc_by_name, BatchOp, ConcurrencyControl, GlobalTxn, Op, SessionError, ShardedDb,
};
use ccopt_model::ids::VarId;
use ccopt_model::state::GlobalState;
use ccopt_trace::{EventKind, TraceConfig, Tracer};
use std::collections::HashMap;
use std::io::Write;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration. `Default` is a volatile single-machine setup
/// bound to an ephemeral localhost port.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Concurrency-control mechanism, by canonical name
    /// ([`ccopt_engine::MECHANISM_NAMES`]).
    pub cc: String,
    /// Size of the variable universe (requests naming a variable outside
    /// `0..num_vars` are refused as malformed).
    pub num_vars: usize,
    /// Shard count.
    pub shards: usize,
    /// Data directory for the write-ahead logs; `None` runs volatile.
    pub dir: Option<PathBuf>,
    /// Durability mode of the shard logs (ignored when `dir` is `None`).
    pub mode: DurabilityMode,
    /// Admission cap: maximum simultaneously live transactions; `Begin`
    /// beyond it is shed.
    pub max_txns: usize,
    /// Admission cap: maximum in-flight (unanswered) requests per
    /// connection; excess requests are shed by the reader thread.
    pub pipeline: usize,
    /// Admission cap: bound of the engine's request queue; overflow is
    /// shed by the reader thread.
    pub queue: usize,
    /// Bound of each shard's mailbox (0 = unbounded); overflow restarts
    /// the transaction through the engine's shed accounting.
    pub shard_queue: usize,
    /// Trace configuration; the server adds its network-plane events to
    /// the same hub the engine traces through.
    pub trace: Option<TraceConfig>,
    /// How long a drain waits for in-flight transactions before aborting
    /// the stragglers.
    pub drain_grace: Duration,
    /// The distributed-deadlock valve: after this many *consecutive*
    /// `Wait` answers, the transaction is force-restarted
    /// ([`ShardedDb::restart`]) and the client told [`Response::
    /// Restarted`]. Cross-shard wait cycles are invisible to every
    /// shard-local deadlock detector, so without this a pair of wire
    /// clients can ping-pong `Wait` retries forever. 0 disables it.
    pub wait_valve: u32,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            cc: "strict-2PL".to_string(),
            num_vars: 64,
            shards: 4,
            dir: None,
            mode: DurabilityMode::None,
            max_txns: 256,
            pipeline: 64,
            queue: 1024,
            shard_queue: 256,
            trace: None,
            drain_grace: Duration::from_secs(2),
            wait_valve: 24,
        }
    }
}

/// What a finished server reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainStats {
    /// Transactions committed over the server's lifetime.
    pub commits: u64,
    /// Transactions still live when the drain grace expired, aborted to
    /// finish the drain.
    pub aborted_on_drain: usize,
    /// Requests refused by admission control (all three layers).
    pub sheds: u64,
}

// ------------------------------------------------------------- messages

enum ToEngine {
    /// A connection opened; `out` is its response outbox.
    Conn { id: u64, out: mpsc::Sender<Vec<u8>> },
    /// A connection closed; abort its transactions.
    Gone { id: u64 },
    /// One decoded request.
    Req {
        conn: u64,
        req_id: u64,
        req: Request,
    },
    /// Start a graceful drain (same effect as a wire `Shutdown`).
    Drain,
    /// Exit immediately without syncing (simulated crash).
    Kill,
}

// --------------------------------------------------------------- server

/// A running server. Dropping it without calling
/// [`shutdown`](Server::shutdown) / [`kill`](Server::kill) kills it.
pub struct Server {
    addr: SocketAddr,
    tx: SyncSender<ToEngine>,
    done_rx: Receiver<DrainStats>,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    sheds: Arc<AtomicU64>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, open (or recover) the engine, and start serving. Fails
    /// synchronously on an unknown mechanism, a bind error, or a log
    /// that does not recover.
    pub fn start(cfg: ServerConfig) -> Result<Server, ServerError> {
        if cc_by_name(&cfg.cc).is_none() {
            return Err(ServerError::UnknownMechanism(cfg.cc));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        let (tx, rx) = mpsc::sync_channel::<ToEngine>(cfg.queue.max(1));
        let (done_tx, done_rx) = mpsc::channel::<DrainStats>();
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), ServerError>>();
        let stop = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));
        let sheds = Arc::new(AtomicU64::new(0));
        let conns = Arc::new(Mutex::new(HashMap::new()));

        let engine = {
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let kill = Arc::clone(&kill);
            let sheds = Arc::clone(&sheds);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("ccopt-net-engine".to_string())
                .spawn(move || engine_thread(cfg, rx, ready_tx, done_tx, stop, kill, sheds, conns))
                .expect("spawn engine thread")
        };
        // Engine startup (recovery included) is synchronous: a log that
        // does not open fails `start`, not the first request.
        match ready_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = engine.join();
                return Err(e);
            }
            Err(_) => {
                let _ = engine.join();
                return Err(ServerError::Stopped);
            }
        }

        let accept = {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let sheds = Arc::clone(&sheds);
            let conns = Arc::clone(&conns);
            let pipeline = cfg.pipeline.max(1);
            std::thread::Builder::new()
                .name("ccopt-net-accept".to_string())
                .spawn(move || accept_thread(listener, tx, stop, sheds, conns, pipeline))
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            tx,
            done_rx,
            stop,
            kill,
            sheds,
            conns,
            accept: Some(accept),
            engine: Some(engine),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Requests shed by admission control so far.
    pub fn shed_count(&self) -> u64 {
        self.sheds.load(Ordering::Relaxed)
    }

    /// Gracefully drain and stop: refuse new transactions, give
    /// in-flight ones the configured grace, abort stragglers, sync the
    /// logs, close every connection.
    pub fn shutdown(mut self) -> Result<DrainStats, ServerError> {
        let _ = self.tx.send(ToEngine::Drain);
        let stats = self.done_rx.recv().map_err(|_| ServerError::Stopped)?;
        self.join();
        Ok(stats)
    }

    /// Block until the server stops on its own (a wire
    /// [`Request::Shutdown`] drained it). This is what the `ccopt-server`
    /// binary parks on.
    pub fn wait(mut self) -> Result<DrainStats, ServerError> {
        let stats = self.done_rx.recv().map_err(|_| ServerError::Stopped)?;
        self.join();
        Ok(stats)
    }

    /// Simulated crash: stop immediately **without** a final log sync —
    /// exactly the fate committed transactions must survive under
    /// [`DurabilityMode::Strict`]. In-flight work is abandoned.
    pub fn kill(mut self) {
        self.kill.store(true, Ordering::SeqCst);
        let _ = self.tx.try_send(ToEngine::Kill);
        let _ = self.done_rx.recv();
        self.join();
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for (_, s) in self.conns.lock().unwrap().drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.engine.is_some() {
            self.kill.store(true, Ordering::SeqCst);
            let _ = self.tx.try_send(ToEngine::Kill);
            let _ = self.done_rx.recv();
            self.join();
        }
    }
}

// --------------------------------------------------------- accept plane

fn accept_thread(
    listener: TcpListener,
    tx: SyncSender<ToEngine>,
    stop: Arc<AtomicBool>,
    sheds: Arc<AtomicU64>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    pipeline: usize,
) {
    let mut next_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                next_id += 1;
                let id = next_id;
                let _ = stream.set_nodelay(true);
                let (out_tx, out_rx) = mpsc::channel::<Vec<u8>>();
                // Registration order matters: the engine must learn of
                // the connection before any of its requests.
                if tx
                    .send(ToEngine::Conn {
                        id,
                        out: out_tx.clone(),
                    })
                    .is_err()
                {
                    return; // engine gone; stop accepting
                }
                if let (Ok(write_half), Ok(registered)) = (stream.try_clone(), stream.try_clone()) {
                    conns.lock().unwrap().insert(id, registered);
                    let inflight = Arc::new(AtomicUsize::new(0));
                    {
                        let inflight = Arc::clone(&inflight);
                        let _ = std::thread::Builder::new()
                            .name(format!("ccopt-net-w{id}"))
                            .spawn(move || writer_thread(write_half, out_rx, inflight));
                    }
                    {
                        let tx = tx.clone();
                        let sheds = Arc::clone(&sheds);
                        let conns = Arc::clone(&conns);
                        let _ = std::thread::Builder::new()
                            .name(format!("ccopt-net-r{id}"))
                            .spawn(move || {
                                reader_thread(stream, id, tx, out_tx, inflight, pipeline, sheds);
                                conns.lock().unwrap().remove(&id);
                            });
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Decode frames, admission-check, forward. Every accepted request
/// produces exactly one response; the in-flight counter goes up here and
/// down in the writer, so `pipeline` bounds both the engine's exposure
/// to this connection and the outbox length.
fn reader_thread(
    mut stream: TcpStream,
    id: u64,
    tx: SyncSender<ToEngine>,
    out: mpsc::Sender<Vec<u8>>,
    inflight: Arc<AtomicUsize>,
    pipeline: usize,
    sheds: Arc<AtomicU64>,
) {
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean close
            Err(FrameError::Io(_)) | Err(FrameError::Wire(_)) => break,
        };
        let (req_id, req) = match decode_request(&payload) {
            Ok(r) => r,
            Err(_) => {
                // The frame was intact (CRC passed) but the payload does
                // not decode. Answer when the request id is recoverable
                // (opcode byte + 8 id bytes), else close: "always answer
                // or close cleanly".
                if payload.len() >= 9 {
                    let req_id = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                    inflight.fetch_add(1, Ordering::SeqCst);
                    let resp = Response::Err {
                        code: ErrCode::Malformed,
                        msg: "request payload does not decode".to_string(),
                    };
                    if out.send(encode_response(req_id, &resp)).is_err() {
                        break;
                    }
                    continue;
                }
                break;
            }
        };
        let in_flight = inflight.fetch_add(1, Ordering::SeqCst);
        let shed = in_flight >= pipeline;
        if shed {
            sheds.fetch_add(1, Ordering::Relaxed);
            if out.send(encode_response(req_id, &Response::Shed)).is_err() {
                break;
            }
            continue;
        }
        match tx.try_send(ToEngine::Req {
            conn: id,
            req_id,
            req,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                sheds.fetch_add(1, Ordering::Relaxed);
                if out.send(encode_response(req_id, &Response::Shed)).is_err() {
                    break;
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let _ = tx.send(ToEngine::Gone { id });
}

/// Frame and write responses, batching everything already queued into
/// one flush (the write-side half of pipelining).
fn writer_thread(stream: TcpStream, out_rx: mpsc::Receiver<Vec<u8>>, inflight: Arc<AtomicUsize>) {
    let mut w = std::io::BufWriter::new(stream);
    let mut buf = Vec::with_capacity(4096);
    while let Ok(payload) = out_rx.recv() {
        buf.clear();
        frame_into(&mut buf, &payload);
        inflight.fetch_sub(1, Ordering::SeqCst);
        // Greedily batch whatever else is ready before flushing.
        while let Ok(p) = out_rx.try_recv() {
            frame_into(&mut buf, &p);
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
        if w.write_all(&buf).is_err() || w.flush().is_err() {
            return;
        }
    }
}

// --------------------------------------------------------- engine plane

struct Engine<'a> {
    db: ShardedDb<'a>,
    tracer: Tracer,
    conns: HashMap<u64, mpsc::Sender<Vec<u8>>>,
    /// token -> (engine handle, owning connection)
    txns: HashMap<u64, (GlobalTxn, u64)>,
    /// token -> consecutive `Wait` answers (valve input; reset by any
    /// other outcome, fires [`ShardedDb::restart`] at `wait_valve`).
    waits: HashMap<u64, u32>,
    /// See [`ServerConfig::wait_valve`].
    wait_valve: u32,
    next_token: u64,
    max_txns: usize,
    num_vars: u32,
    sheds: Arc<AtomicU64>,
    commits: u64,
    /// Engine "tick" for trace timestamps: one per processed message.
    tick: u64,
    draining: bool,
    deadline: Option<Instant>,
    grace: Duration,
}

#[allow(clippy::too_many_arguments)]
fn engine_thread(
    cfg: ServerConfig,
    rx: Receiver<ToEngine>,
    ready_tx: mpsc::Sender<Result<(), ServerError>>,
    done_tx: mpsc::Sender<DrainStats>,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    sheds: Arc<AtomicU64>,
    conn_streams: Arc<Mutex<HashMap<u64, TcpStream>>>,
) {
    // The factory lives on this thread's stack for the `ShardedDb`'s
    // whole life — the borrow that makes `ShardedDb<'a>` workable here.
    let cc_name = cfg.cc.clone();
    let make_cc: Box<dyn Fn() -> Box<dyn ConcurrencyControl>> =
        Box::new(move || cc_by_name(&cc_name).expect("name validated at start"));
    let init = GlobalState::from_ints(&vec![0; cfg.num_vars]);
    let mut db = match &cfg.dir {
        Some(dir) => {
            match ShardedDb::open(&*make_cc, init, dir, cfg.mode, cfg.shards, cfg.max_txns) {
                Ok(db) => db,
                Err(e) => {
                    let _ = ready_tx.send(Err(ServerError::Wal(e)));
                    return;
                }
            }
        }
        None => ShardedDb::with_capacity(&*make_cc, init, cfg.shards, cfg.max_txns),
    };
    if cfg.shard_queue > 0 {
        db.set_queue_capacity(cfg.shard_queue);
    }
    let mut tracer = Tracer::off();
    if let Some(tc) = &cfg.trace {
        if let Err(e) = db.set_trace(tc) {
            let _ = ready_tx.send(Err(ServerError::Io(e)));
            return;
        }
        // The server plane emits as shard id S+1 (one past the
        // coordinator's S), so merged traces stay totally ordered.
        if let Some(hub) = db.trace_hub() {
            tracer = hub.tracer(cfg.shards as u32 + 1);
        }
    }
    let _ = ready_tx.send(Ok(()));

    let mut eng = Engine {
        db,
        tracer,
        conns: HashMap::new(),
        txns: HashMap::new(),
        waits: HashMap::new(),
        wait_valve: cfg.wait_valve,
        next_token: 0,
        max_txns: cfg.max_txns.max(1),
        num_vars: cfg.num_vars as u32,
        sheds,
        commits: 0,
        tick: 0,
        draining: false,
        deadline: None,
        grace: cfg.drain_grace,
    };
    let mut batch: Vec<ToEngine> = Vec::with_capacity(256);
    let mut killed = false;
    'serve: loop {
        if kill.load(Ordering::SeqCst) {
            killed = true;
            break 'serve;
        }
        batch.clear();
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(m) => batch.push(m),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        }
        while batch.len() < 256 {
            match rx.try_recv() {
                Ok(m) => batch.push(m),
                Err(_) => break,
            }
        }
        eng.process(&batch);
        if eng.draining {
            let expired = eng.deadline.map(|d| Instant::now() >= d).unwrap_or(true);
            if eng.txns.is_empty() || expired {
                break 'serve;
            }
        }
    }

    let mut stats = DrainStats {
        commits: eng.commits,
        aborted_on_drain: 0,
        sheds: eng.sheds.load(Ordering::Relaxed),
    };
    if !killed {
        // Abort stragglers, sync the logs, close the books.
        let leftovers: Vec<GlobalTxn> = eng.txns.values().map(|&(h, _)| h).collect();
        stats.aborted_on_drain = leftovers.len();
        for h in leftovers {
            let _ = eng.db.abort(h);
        }
        eng.txns.clear();
        eng.waits.clear();
        let _ = eng.db.sync();
        if eng.draining && eng.tracer.is_on() {
            let t = eng.tick;
            eng.tracer.emit(t, EventKind::DrainDone);
        }
        eng.db.flush_trace();
    }
    // Wake every connection so its threads exit.
    stop.store(true, Ordering::SeqCst);
    for (_, s) in conn_streams.lock().unwrap().drain() {
        let _ = s.shutdown(Shutdown::Both);
    }
    let _ = done_tx.send(stats);
    // `killed` drops the database without the sync above: the write-ahead
    // logs close mid-stream, which is the crash the recovery path serves.
}

impl Engine<'_> {
    fn process(&mut self, msgs: &[ToEngine]) {
        // Coalesce consecutive data operations of the same (conn, txn)
        // into one `apply_batch` run.
        let mut run: Vec<(u64, BatchOp)> = Vec::new();
        let mut run_key: Option<(u64, u64)> = None;
        for m in msgs {
            self.tick += 1;
            if let ToEngine::Req { conn, req_id, req } = m {
                if let Some(op) = data_op(req) {
                    let key = (*conn, op.0);
                    if run_key == Some(key) {
                        run.push((*req_id, op.1));
                        continue;
                    }
                    self.flush_run(&mut run_key, &mut run);
                    run_key = Some(key);
                    run.push((*req_id, op.1));
                    continue;
                }
            }
            self.flush_run(&mut run_key, &mut run);
            self.handle(m);
        }
        self.flush_run(&mut run_key, &mut run);
    }

    fn handle(&mut self, m: &ToEngine) {
        match m {
            ToEngine::Conn { id, out } => {
                self.conns.insert(*id, out.clone());
                if self.tracer.is_on() {
                    let t = self.tick;
                    self.tracer.emit(t, EventKind::ConnAccept { conn: *id });
                }
            }
            ToEngine::Gone { id } => {
                // A dead connection's transactions are aborted: nobody
                // can ever speak for their tokens again.
                let orphans: Vec<u64> = self
                    .txns
                    .iter()
                    .filter(|(_, (_, c))| c == id)
                    .map(|(&tok, _)| tok)
                    .collect();
                for tok in orphans {
                    if let Some((h, _)) = self.txns.remove(&tok) {
                        self.waits.remove(&tok);
                        let _ = self.db.abort(h);
                    }
                }
                self.conns.remove(id);
                if self.tracer.is_on() {
                    let t = self.tick;
                    self.tracer.emit(t, EventKind::ConnClose { conn: *id });
                }
            }
            ToEngine::Req { conn, req_id, req } => self.request(*conn, *req_id, req),
            ToEngine::Drain => self.begin_drain(),
            ToEngine::Kill => {}
        }
    }

    fn request(&mut self, conn: u64, req_id: u64, req: &Request) {
        match req {
            Request::Ping => self.respond(conn, req_id, &Response::Pong),
            Request::Begin => {
                if self.draining {
                    self.respond(conn, req_id, &Response::Draining);
                } else if self.txns.len() >= self.max_txns {
                    self.sheds.fetch_add(1, Ordering::Relaxed);
                    if self.tracer.is_on() {
                        let t = self.tick;
                        self.tracer.emit(t, EventKind::RequestShed { conn });
                    }
                    self.respond(conn, req_id, &Response::Shed);
                } else {
                    let h = self.db.begin();
                    self.next_token += 1;
                    let token = self.next_token;
                    self.txns.insert(token, (h, conn));
                    self.respond(conn, req_id, &Response::Began { txn: token });
                }
            }
            Request::Commit { txn } => {
                let Some(&(h, _)) = self.txns.get(txn) else {
                    self.unknown(conn, req_id, *txn);
                    return;
                };
                match self.db.commit(h) {
                    Ok(Op::Done(())) => {
                        let _ = self.db.retire(h);
                        self.txns.remove(txn);
                        self.waits.remove(txn);
                        self.commits += 1;
                        self.respond(conn, req_id, &Response::Committed);
                    }
                    Ok(Op::Wait) => {
                        let resp = self.waited(*txn, h);
                        self.respond(conn, req_id, &resp);
                    }
                    Ok(Op::Restarted) => {
                        self.waits.remove(txn);
                        self.respond(conn, req_id, &Response::Restarted);
                    }
                    Err(e) => self.session_error(conn, req_id, *txn, e),
                }
            }
            Request::Abort { txn } => {
                let Some(&(h, _)) = self.txns.get(txn) else {
                    self.unknown(conn, req_id, *txn);
                    return;
                };
                match self.db.abort(h) {
                    Ok(()) => {
                        self.txns.remove(txn);
                        self.waits.remove(txn);
                        self.respond(conn, req_id, &Response::Aborted);
                    }
                    Err(e) => self.session_error(conn, req_id, *txn, e),
                }
            }
            Request::Shutdown => {
                self.respond(conn, req_id, &Response::Draining);
                self.begin_drain();
            }
            // Data ops arrive through `flush_run`, but a lone op can
            // still land here if the compiler's pattern ordering changes;
            // route it through the same path.
            Request::Read { .. } | Request::Write { .. } | Request::Update { .. } => {
                if let Some((txn, op)) = data_op(req) {
                    let mut key = Some((conn, txn));
                    let mut run = vec![(req_id, op)];
                    self.flush_run(&mut key, &mut run);
                }
            }
        }
    }

    /// Execute a coalesced run of data operations through
    /// [`ShardedDb::apply_batch`] and answer each request. Operations the
    /// engine did not attempt (everything after the run's first
    /// non-`Done` outcome) mirror that trailing outcome, preserving the
    /// session contract a pipelining client already handles: `Wait` =
    /// resend, `Restarted` = replay the program.
    fn flush_run(&mut self, key: &mut Option<(u64, u64)>, run: &mut Vec<(u64, BatchOp)>) {
        let Some((conn, token)) = key.take() else {
            debug_assert!(run.is_empty());
            return;
        };
        let ops = std::mem::take(run);
        if ops.is_empty() {
            return;
        }
        // Validate variable ids up front: an out-of-universe id must be
        // refused before it reaches a shard (a malformed request must
        // never panic a worker).
        for (req_id, op) in &ops {
            if op.var().0 >= self.num_vars {
                self.respond(
                    conn,
                    *req_id,
                    &Response::Err {
                        code: ErrCode::Malformed,
                        msg: format!("variable {} outside 0..{}", op.var().0, self.num_vars),
                    },
                );
                // Answer the rest individually through a fresh pass that
                // keeps positions aligned; simplest is to re-run the
                // remainder as its own run.
                let rest: Vec<(u64, BatchOp)> =
                    ops.iter().filter(|(r, _)| r != req_id).copied().collect();
                if !rest.is_empty() {
                    let mut k = Some((conn, token));
                    let mut rest = rest;
                    self.flush_run(&mut k, &mut rest);
                }
                return;
            }
        }
        let Some(&(h, _)) = self.txns.get(&token) else {
            for (req_id, _) in &ops {
                self.unknown(conn, *req_id, token);
            }
            return;
        };
        let batch: Vec<BatchOp> = ops.iter().map(|&(_, op)| op).collect();
        match self.db.apply_batch(h, &batch) {
            Ok(outs) => {
                // `apply_batch` short-circuits at the first non-`Done`
                // outcome, so at most the *last* entry is `Wait`/
                // `Restarted` — that trailing outcome also answers the
                // unattempted ops. A trailing `Wait` feeds the
                // distributed-deadlock valve, which may turn the whole
                // answer into `Restarted` (the attempt replays anyway).
                let trailing = match outs.last() {
                    Some(Op::Restarted) => {
                        self.waits.remove(&token);
                        Response::Restarted
                    }
                    Some(Op::Wait) => self.waited(token, h),
                    _ => {
                        self.waits.remove(&token);
                        Response::Wait // unreachable: short only on non-Done
                    }
                };
                for (i, (req_id, _)) in ops.iter().enumerate() {
                    let resp = match outs.get(i) {
                        Some(Op::Done(v)) => Response::Done { value: *v },
                        _ => trailing.clone(),
                    };
                    self.respond(conn, *req_id, &resp);
                }
            }
            Err(e) => {
                for (req_id, _) in &ops {
                    self.session_error(conn, *req_id, token, e);
                }
            }
        }
    }

    fn begin_drain(&mut self) {
        if !self.draining {
            self.draining = true;
            self.deadline = Some(Instant::now() + self.grace);
            if self.tracer.is_on() {
                let t = self.tick;
                self.tracer.emit(t, EventKind::DrainStart);
            }
        }
    }

    /// Record one `Wait` answer for `token` and fire the
    /// distributed-deadlock valve when the bound is reached: two wire
    /// clients in a cross-shard lock cycle would otherwise exchange
    /// `Wait` retries forever, because no shard-local deadlock detector
    /// can see the cycle. Firing force-restarts the transaction
    /// ([`ShardedDb::restart`]) and answers `Restarted`, which the
    /// client already handles by replaying its program on the same
    /// token.
    fn waited(&mut self, token: u64, h: GlobalTxn) -> Response {
        if self.wait_valve == 0 {
            return Response::Wait;
        }
        let n = self.waits.entry(token).or_insert(0);
        *n += 1;
        if *n < self.wait_valve {
            return Response::Wait;
        }
        self.waits.remove(&token);
        match self.db.restart(h) {
            Ok(()) => Response::Restarted,
            // Not restartable (already terminal); let the client's next
            // request surface the real state.
            Err(_) => Response::Wait,
        }
    }

    fn session_error(&mut self, conn: u64, req_id: u64, token: u64, e: SessionError) {
        let resp = match e {
            SessionError::Stale => {
                self.txns.remove(&token);
                self.waits.remove(&token);
                Response::Err {
                    code: ErrCode::UnknownTxn,
                    msg: "the transaction is gone".to_string(),
                }
            }
            SessionError::ShardDown => {
                // The transaction is dead; free the handle and the token.
                if let Some((h, _)) = self.txns.remove(&token) {
                    self.waits.remove(&token);
                    let _ = self.db.abort(h);
                }
                Response::Err {
                    code: ErrCode::ShardDown,
                    msg: "owning shard crashed; begin a new transaction".to_string(),
                }
            }
            SessionError::AlreadyCommitted
            | SessionError::StillRunning
            | SessionError::Prepared
            | SessionError::NotPrepared => Response::Err {
                code: ErrCode::BadState,
                msg: e.to_string(),
            },
        };
        self.respond(conn, req_id, &resp);
    }

    fn unknown(&mut self, conn: u64, req_id: u64, token: u64) {
        self.respond(
            conn,
            req_id,
            &Response::Err {
                code: ErrCode::UnknownTxn,
                msg: format!("no transaction {token}"),
            },
        );
    }

    fn respond(&mut self, conn: u64, req_id: u64, resp: &Response) {
        if let Some(out) = self.conns.get(&conn) {
            // A dead writer is handled by the reader's `Gone`; dropping
            // the response here is safe because the connection is gone.
            let _ = out.send(encode_response(req_id, resp));
        }
    }
}

/// A request's data-op shape `(txn, op)`, if it is one.
fn data_op(req: &Request) -> Option<(u64, BatchOp)> {
    Some(match *req {
        Request::Read { txn, var } => (txn, BatchOp::Read(VarId(var))),
        Request::Write { txn, var, value } => (txn, BatchOp::Write(VarId(var), value)),
        Request::Update { txn, var, a, c } => (
            txn,
            BatchOp::Affine {
                var: VarId(var),
                a,
                c,
            },
        ),
        _ => return None,
    })
}
