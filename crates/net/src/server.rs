//! The TCP front-end: connection handling, request pipelining, admission
//! control, and graceful drain over a [`ShardedDb`].
//!
//! # Threads
//!
//! One **accept** thread polls the listener; each connection gets a
//! **reader** thread (decode frames, admission-check, forward to the
//! engine) and a **writer** thread (frame and batch responses back out).
//! One **engine** thread owns the [`ShardedDb`] and is the only thread
//! that touches it: every connection's requests are multiplexed onto it
//! through one bounded channel, and consecutive data operations of the
//! same transaction are submitted through [`ShardedDb::apply_batch`] so a
//! pipelining client amortizes the per-operation shard-mailbox round
//! trip.
//!
//! # Admission control
//!
//! Three bounded layers, each answering [`Response::Shed`] (or the
//! equivalent) instead of queueing unboundedly:
//!
//! 1. **per-connection pipeline cap** — at most `pipeline` requests may
//!    be awaiting responses on one connection; excess requests are shed
//!    by the reader thread without ever reaching the engine. This also
//!    bounds every per-connection outbox: the writer never holds more
//!    than `pipeline` undelivered responses.
//! 2. **engine queue** — one bounded channel in front of the engine
//!    thread; readers `try_send` and shed on overflow.
//! 3. **transaction cap and shard mailboxes** — `Begin` is shed when
//!    `max_txns` transactions are live; admitted operations still hit the
//!    existing per-shard bounded mailboxes ([`ShardedDb::
//!    set_queue_capacity`]), whose overflow restarts the transaction
//!    through the engine's `shed_aborts` / `ConflictRule::Shed`
//!    accounting and answers [`Response::Restarted`].
//!
//! # Drain
//!
//! [`Server::shutdown`] (or a wire [`Request::Shutdown`]) starts a
//! drain: new transactions are refused with [`Response::Draining`],
//! in-flight transactions get a grace period to finish, stragglers are
//! aborted, the logs are synced, and `DrainStart`/`DrainDone` trace
//! events bracket the whole episode. [`Server::kill`] is the opposite:
//! drop everything without a final sync — the crash the durability tests
//! recover from.
//!
//! # Ops plane
//!
//! The running server is introspectable without perturbing the data
//! plane:
//!
//! * [`Request::Stats`] / [`Request::Health`] answer a structured
//!   [`ServerStats`] snapshot / [`HealthReport`] computed fresh on the
//!   engine thread (read-only — no transaction state changes);
//! * a **sampler** on the engine thread snapshots [`Metrics::diff`]
//!   every [`ServerConfig::sample_interval`] into a bounded time-series
//!   ring of [`SamplePoint`]s (commits/s, shed rate, queue depth,
//!   windowed p99), carried in every snapshot;
//! * [`ServerConfig::metrics_addr`] starts a dependency-free HTTP
//!   listener serving the Prometheus text exposition at `/metrics` and
//!   liveness at `/healthz` (503 `degraded` while any shard is down);
//! * [`Request::Subscribe`] streams schema-valid JSONL trace events to
//!   the connection through a bounded per-subscriber ring
//!   ([`ServerConfig::subscriber_ring`]) that **drops and counts**
//!   instead of ever back-pressuring the engine: a pump thread forwards
//!   events only while the writer has credit, so a subscriber that never
//!   reads costs the engine one failed length check per event.

use crate::error::{FrameError, ServerError};
use crate::frame::{
    decode_request, encode_response, frame_into, read_frame, BatchCommit, BatchOutcome, ErrCode,
    Request, Response,
};
use crate::stats::{
    render_prometheus, ContendedVar, HealthReport, SamplePoint, ServerStats, ShardHealth,
};
use ccopt_durability::DurabilityMode;
use ccopt_engine::{
    cc_by_name, BatchOp, ConcurrencyControl, GlobalTxn, GroupReq, GroupResp, Metrics, Op,
    SessionError, ShardedDb,
};
use ccopt_model::ids::VarId;
use ccopt_model::state::GlobalState;
use ccopt_trace::{EventKind, Histogram, TraceConfig, TraceSubscription, Tracer};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server configuration. `Default` is a volatile single-machine setup
/// bound to an ephemeral localhost port.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Concurrency-control mechanism, by canonical name
    /// ([`ccopt_engine::MECHANISM_NAMES`]).
    pub cc: String,
    /// Size of the variable universe (requests naming a variable outside
    /// `0..num_vars` are refused as malformed).
    pub num_vars: usize,
    /// Shard count.
    pub shards: usize,
    /// Data directory for the write-ahead logs; `None` runs volatile.
    pub dir: Option<PathBuf>,
    /// Durability mode of the shard logs (ignored when `dir` is `None`).
    pub mode: DurabilityMode,
    /// Admission cap: maximum simultaneously live transactions; `Begin`
    /// beyond it is shed.
    pub max_txns: usize,
    /// Admission cap: maximum in-flight (unanswered) requests per
    /// connection; excess requests are shed by the reader thread.
    pub pipeline: usize,
    /// Admission cap: bound of the engine's request queue; overflow is
    /// shed by the reader thread.
    pub queue: usize,
    /// Bound of each shard's mailbox (0 = unbounded); overflow restarts
    /// the transaction through the engine's shed accounting.
    pub shard_queue: usize,
    /// Trace configuration; the server adds its network-plane events to
    /// the same hub the engine traces through.
    pub trace: Option<TraceConfig>,
    /// How long a drain waits for in-flight transactions before aborting
    /// the stragglers.
    pub drain_grace: Duration,
    /// The distributed-deadlock valve: after this many *consecutive*
    /// `Wait` answers, the transaction is force-restarted
    /// ([`ShardedDb::restart`]) and the client told [`Response::
    /// Restarted`]. Cross-shard wait cycles are invisible to every
    /// shard-local deadlock detector, so without this a pair of wire
    /// clients can ping-pong `Wait` retries forever. 0 disables it.
    pub wait_valve: u32,
    /// Bind address of the ops-plane HTTP listener (`/metrics`,
    /// `/healthz`); `None` (the default) serves no HTTP.
    pub metrics_addr: Option<String>,
    /// Sampler period: every interval the engine thread snapshots
    /// [`Metrics::diff`] into the time-series ring. `Duration::ZERO`
    /// disables the sampler (the true ops-off baseline).
    pub sample_interval: Duration,
    /// Capacity of the sampler's time-series ring (oldest points are
    /// evicted first).
    pub sample_ring: usize,
    /// Capacity of each trace subscriber's ring. When a subscriber's
    /// connection cannot keep up, events beyond this bound are dropped
    /// and counted — never queued against the engine.
    pub subscriber_ring: usize,
    /// Ceiling on events delivered per second per subscriber (0 =
    /// unpaced). The subscription is a sampled observability stream,
    /// not a replication log: pacing the pump bounds the CPU the ops
    /// plane can take from the data plane on a saturated box, and the
    /// overflow shows up honestly in the in-stream dropped count.
    pub subscriber_rate: usize,
    /// Print a machine-parseable `stats ...` line on stdout at every
    /// sampler tick (the `--stats-interval` flag; off by default).
    pub stats_line: bool,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            cc: "strict-2PL".to_string(),
            num_vars: 64,
            shards: 4,
            dir: None,
            mode: DurabilityMode::None,
            max_txns: 256,
            pipeline: 64,
            queue: 1024,
            shard_queue: 256,
            trace: None,
            drain_grace: Duration::from_secs(2),
            wait_valve: 24,
            metrics_addr: None,
            sample_interval: Duration::from_secs(1),
            sample_ring: 360,
            subscriber_ring: 4096,
            subscriber_rate: 10_000,
            stats_line: false,
        }
    }
}

/// What a finished server reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct DrainStats {
    /// Transactions committed over the server's lifetime.
    pub commits: u64,
    /// Transactions still live when the drain grace expired, aborted to
    /// finish the drain.
    pub aborted_on_drain: usize,
    /// Requests shed by the per-connection pipeline cap.
    pub sheds_pipeline: u64,
    /// Requests shed by the bounded engine queue.
    pub sheds_queue: u64,
    /// `Begin`s shed by the live-transaction budget.
    pub sheds_txns: u64,
}

impl DrainStats {
    /// Requests refused by admission control, all wire layers combined
    /// (shard-mailbox sheds live in [`Metrics::shed_aborts`], not here).
    pub fn sheds(&self) -> u64 {
        self.sheds_pipeline + self.sheds_queue + self.sheds_txns
    }
}

/// Per-admission-layer shed counters, shared by the reader threads (the
/// pipeline and queue layers) and the engine (the transaction budget).
/// The ledger invariant `pipeline + queue + txns == total` holds by
/// construction: there is no combined counter to drift.
#[derive(Debug, Default)]
struct ShedCounters {
    pipeline: AtomicU64,
    queue: AtomicU64,
    txns: AtomicU64,
}

impl ShedCounters {
    fn total(&self) -> u64 {
        self.pipeline.load(Ordering::Relaxed)
            + self.queue.load(Ordering::Relaxed)
            + self.txns.load(Ordering::Relaxed)
    }
}

/// What the engine publishes for the ops-plane HTTP listener: the last
/// sampler snapshot (for `/metrics`) plus health flags refreshed every
/// engine-loop iteration (for `/healthz`, which must flip within
/// milliseconds of a shard crash regardless of the sampler period).
#[derive(Default)]
struct OpsShared {
    published: Mutex<Option<ServerStats>>,
    degraded: AtomicBool,
    draining: AtomicBool,
    shards: AtomicU32,
    shards_down: AtomicU32,
}

/// One writer-bound message. `credit` is the in-flight counter the
/// writer decrements after framing: responses to wire requests return
/// pipeline credit, subscription events return pump credit.
struct OutMsg {
    bytes: Vec<u8>,
    credit: Option<Arc<AtomicUsize>>,
}

// ------------------------------------------------------------- messages

enum ToEngine {
    /// A connection opened; `out` is its response outbox.
    Conn { id: u64, out: mpsc::Sender<OutMsg> },
    /// A connection closed; abort its transactions.
    Gone { id: u64 },
    /// One decoded request.
    Req {
        conn: u64,
        req_id: u64,
        req: Request,
    },
    /// Start a graceful drain (same effect as a wire `Shutdown`).
    Drain,
    /// Fault injection: panic shard `s`'s worker (see
    /// [`Server::panic_shard`]).
    PanicShard(usize),
    /// Exit immediately without syncing (simulated crash).
    Kill,
}

// --------------------------------------------------------------- server

/// A running server. Dropping it without calling
/// [`shutdown`](Server::shutdown) / [`kill`](Server::kill) kills it.
pub struct Server {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    tx: SyncSender<ToEngine>,
    done_rx: Receiver<DrainStats>,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    sheds: Arc<ShedCounters>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    accept: Option<JoinHandle<()>>,
    engine: Option<JoinHandle<()>>,
    ops_http: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind, open (or recover) the engine, and start serving. Fails
    /// synchronously on an unknown mechanism, a bind error, or a log
    /// that does not recover.
    pub fn start(cfg: ServerConfig) -> Result<Server, ServerError> {
        if cc_by_name(&cfg.cc).is_none() {
            return Err(ServerError::UnknownMechanism(cfg.cc));
        }
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;

        // The ops-plane HTTP listener binds synchronously too: a bad
        // `--metrics-addr` fails `start`, not the first scrape.
        let ops_listener = match &cfg.metrics_addr {
            Some(a) => {
                let l = TcpListener::bind(a)?;
                l.set_nonblocking(true)?;
                Some(l)
            }
            None => None,
        };
        let metrics_addr = match &ops_listener {
            Some(l) => Some(l.local_addr()?),
            None => None,
        };

        let (tx, rx) = mpsc::sync_channel::<ToEngine>(cfg.queue.max(1));
        let (done_tx, done_rx) = mpsc::channel::<DrainStats>();
        let (ready_tx, ready_rx) = mpsc::channel::<Result<(), ServerError>>();
        let stop = Arc::new(AtomicBool::new(false));
        let kill = Arc::new(AtomicBool::new(false));
        let sheds = Arc::new(ShedCounters::default());
        let conns = Arc::new(Mutex::new(HashMap::new()));
        let queue_depth = Arc::new(AtomicUsize::new(0));
        let ops = Arc::new(OpsShared {
            shards: AtomicU32::new(cfg.shards as u32),
            ..OpsShared::default()
        });

        let ops_http = ops_listener.map(|l| {
            let ops = Arc::clone(&ops);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("ccopt-net-ops".to_string())
                .spawn(move || ops_http_thread(l, ops, stop))
                .expect("spawn ops http thread")
        });

        let engine = {
            let cfg = cfg.clone();
            let stop = Arc::clone(&stop);
            let kill = Arc::clone(&kill);
            let sheds = Arc::clone(&sheds);
            let conns = Arc::clone(&conns);
            let ops = Arc::clone(&ops);
            let queue_depth = Arc::clone(&queue_depth);
            std::thread::Builder::new()
                .name("ccopt-net-engine".to_string())
                .spawn(move || {
                    engine_thread(
                        cfg,
                        rx,
                        ready_tx,
                        done_tx,
                        stop,
                        kill,
                        sheds,
                        conns,
                        ops,
                        queue_depth,
                    )
                })
                .expect("spawn engine thread")
        };
        // Engine startup (recovery included) is synchronous: a log that
        // does not open fails `start`, not the first request.
        match ready_rx.recv() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => {
                let _ = engine.join();
                return Err(e);
            }
            Err(_) => {
                let _ = engine.join();
                return Err(ServerError::Stopped);
            }
        }

        let accept = {
            let tx = tx.clone();
            let stop = Arc::clone(&stop);
            let sheds = Arc::clone(&sheds);
            let conns = Arc::clone(&conns);
            let queue_depth = Arc::clone(&queue_depth);
            let pipeline = cfg.pipeline.max(1);
            std::thread::Builder::new()
                .name("ccopt-net-accept".to_string())
                .spawn(move || {
                    accept_thread(listener, tx, stop, sheds, conns, pipeline, queue_depth)
                })
                .expect("spawn accept thread")
        };

        Ok(Server {
            addr,
            metrics_addr,
            tx,
            done_rx,
            stop,
            kill,
            sheds,
            conns,
            accept: Some(accept),
            engine: Some(engine),
            ops_http,
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound address of the ops-plane HTTP listener, when
    /// [`ServerConfig::metrics_addr`] was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// Requests shed by admission control so far (all wire layers).
    pub fn shed_count(&self) -> u64 {
        self.sheds.total()
    }

    /// Fault injection (tests): panic shard `s`'s worker on the engine
    /// thread, exactly as [`ShardedDb::panic_shard`] does in-process —
    /// the shard dies mid-flight and supervision kicks in at its next
    /// touch. This is how the ops-plane tests flip `/healthz` to
    /// degraded mid-run.
    pub fn panic_shard(&self, s: usize) {
        let _ = self.tx.send(ToEngine::PanicShard(s));
    }

    /// Gracefully drain and stop: refuse new transactions, give
    /// in-flight ones the configured grace, abort stragglers, sync the
    /// logs, close every connection.
    pub fn shutdown(mut self) -> Result<DrainStats, ServerError> {
        let _ = self.tx.send(ToEngine::Drain);
        let stats = self.done_rx.recv().map_err(|_| ServerError::Stopped)?;
        self.join();
        Ok(stats)
    }

    /// Block until the server stops on its own (a wire
    /// [`Request::Shutdown`] drained it). This is what the `ccopt-server`
    /// binary parks on.
    pub fn wait(mut self) -> Result<DrainStats, ServerError> {
        let stats = self.done_rx.recv().map_err(|_| ServerError::Stopped)?;
        self.join();
        Ok(stats)
    }

    /// Simulated crash: stop immediately **without** a final log sync —
    /// exactly the fate committed transactions must survive under
    /// [`DurabilityMode::Strict`]. In-flight work is abandoned.
    pub fn kill(mut self) {
        self.kill.store(true, Ordering::SeqCst);
        let _ = self.tx.try_send(ToEngine::Kill);
        let _ = self.done_rx.recv();
        self.join();
    }

    fn join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for (_, s) in self.conns.lock().unwrap().drain() {
            let _ = s.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.engine.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ops_http.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.engine.is_some() {
            self.kill.store(true, Ordering::SeqCst);
            let _ = self.tx.try_send(ToEngine::Kill);
            let _ = self.done_rx.recv();
            self.join();
        }
    }
}

// --------------------------------------------------------- accept plane

#[allow(clippy::too_many_arguments)]
fn accept_thread(
    listener: TcpListener,
    tx: SyncSender<ToEngine>,
    stop: Arc<AtomicBool>,
    sheds: Arc<ShedCounters>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    pipeline: usize,
    queue_depth: Arc<AtomicUsize>,
) {
    let mut next_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                next_id += 1;
                let id = next_id;
                let _ = stream.set_nodelay(true);
                let (out_tx, out_rx) = mpsc::channel::<OutMsg>();
                // Registration order matters: the engine must learn of
                // the connection before any of its requests.
                if tx
                    .send(ToEngine::Conn {
                        id,
                        out: out_tx.clone(),
                    })
                    .is_err()
                {
                    return; // engine gone; stop accepting
                }
                if let (Ok(write_half), Ok(registered)) = (stream.try_clone(), stream.try_clone()) {
                    conns.lock().unwrap().insert(id, registered);
                    let inflight = Arc::new(AtomicUsize::new(0));
                    {
                        let inflight = Arc::clone(&inflight);
                        let _ = std::thread::Builder::new()
                            .name(format!("ccopt-net-w{id}"))
                            .spawn(move || writer_thread(write_half, out_rx, inflight));
                    }
                    {
                        let tx = tx.clone();
                        let sheds = Arc::clone(&sheds);
                        let conns = Arc::clone(&conns);
                        let queue_depth = Arc::clone(&queue_depth);
                        let _ = std::thread::Builder::new()
                            .name(format!("ccopt-net-r{id}"))
                            .spawn(move || {
                                reader_thread(
                                    stream,
                                    id,
                                    tx,
                                    out_tx,
                                    inflight,
                                    pipeline,
                                    sheds,
                                    queue_depth,
                                );
                                conns.lock().unwrap().remove(&id);
                            });
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Decode frames, admission-check, forward. Every accepted request
/// produces exactly one response; the in-flight counter goes up here and
/// down in the writer, so `pipeline` bounds both the engine's exposure
/// to this connection and the outbox length.
#[allow(clippy::too_many_arguments)]
fn reader_thread(
    mut stream: TcpStream,
    id: u64,
    tx: SyncSender<ToEngine>,
    out: mpsc::Sender<OutMsg>,
    inflight: Arc<AtomicUsize>,
    pipeline: usize,
    sheds: Arc<ShedCounters>,
    queue_depth: Arc<AtomicUsize>,
) {
    let reply = |payload: Vec<u8>| OutMsg {
        bytes: payload,
        credit: None,
    };
    loop {
        let payload = match read_frame(&mut stream) {
            Ok(Some(p)) => p,
            Ok(None) => break, // clean close
            Err(FrameError::Io(_)) | Err(FrameError::Wire(_)) => break,
        };
        let (req_id, req) = match decode_request(&payload) {
            Ok(r) => r,
            Err(_) => {
                // The frame was intact (CRC passed) but the payload does
                // not decode. Answer when the request id is recoverable
                // (opcode byte + 8 id bytes), else close: "always answer
                // or close cleanly".
                if payload.len() >= 9 {
                    let req_id = u64::from_le_bytes(payload[1..9].try_into().unwrap());
                    inflight.fetch_add(1, Ordering::SeqCst);
                    let resp = Response::Err {
                        code: ErrCode::Malformed,
                        msg: "request payload does not decode".to_string(),
                    };
                    if out.send(reply(encode_response(req_id, &resp))).is_err() {
                        break;
                    }
                    continue;
                }
                break;
            }
        };
        let in_flight = inflight.fetch_add(1, Ordering::SeqCst);
        let shed = in_flight >= pipeline;
        if shed {
            sheds.pipeline.fetch_add(1, Ordering::Relaxed);
            let msg = reply(encode_response(req_id, &Response::Shed));
            if out.send(msg).is_err() {
                break;
            }
            continue;
        }
        // Count the request into the queue-depth gauge BEFORE the send:
        // once `try_send` succeeds the engine may dequeue (and decrement)
        // immediately, and add-after-send would let the gauge transiently
        // wrap below zero. A refused send undoes the increment.
        queue_depth.fetch_add(1, Ordering::Relaxed);
        match tx.try_send(ToEngine::Req {
            conn: id,
            req_id,
            req,
        }) {
            Ok(()) => {}
            Err(TrySendError::Full(_)) => {
                queue_depth.fetch_sub(1, Ordering::Relaxed);
                sheds.queue.fetch_add(1, Ordering::Relaxed);
                let msg = reply(encode_response(req_id, &Response::Shed));
                if out.send(msg).is_err() {
                    break;
                }
            }
            Err(TrySendError::Disconnected(_)) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let _ = tx.send(ToEngine::Gone { id });
}

/// Frame and write responses, batching everything already queued into
/// one flush (the write-side half of pipelining). Each message returns
/// credit to whoever bounded it: the connection's in-flight counter for
/// request responses, a pump's counter for subscription events.
fn writer_thread(stream: TcpStream, out_rx: mpsc::Receiver<OutMsg>, inflight: Arc<AtomicUsize>) {
    let mut w = std::io::BufWriter::new(stream);
    let mut buf = Vec::with_capacity(4096);
    let done = |m: &OutMsg| match &m.credit {
        Some(c) => {
            c.fetch_sub(1, Ordering::SeqCst);
        }
        None => {
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
    };
    while let Ok(msg) = out_rx.recv() {
        buf.clear();
        frame_into(&mut buf, &msg.bytes);
        done(&msg);
        // Greedily batch whatever else is ready before flushing.
        while let Ok(m) = out_rx.try_recv() {
            frame_into(&mut buf, &m.bytes);
            done(&m);
        }
        if w.write_all(&buf).is_err() || w.flush().is_err() {
            return;
        }
    }
}

// --------------------------------------------------------- engine plane

/// One live trace subscription owned by a connection: the hub-side id
/// (to unsubscribe) and the stop flag its pump thread polls.
struct SubEntry {
    hub_id: u64,
    stop: Arc<AtomicBool>,
}

/// How many [`Response::Events`] batch frames a pump may have
/// undelivered in the writer channel at once. Beyond this the pump
/// leaves events in the subscriber's bounded ring, where overflow
/// drops-and-counts — so a subscriber that never reads bounds its whole
/// footprint to `SUB_CREDIT` bounded frames plus one ring, and costs
/// the engine nothing.
const SUB_CREDIT: usize = 8;

struct Engine<'a> {
    db: ShardedDb<'a>,
    tracer: Tracer,
    conns: HashMap<u64, mpsc::Sender<OutMsg>>,
    /// token -> (engine handle, owning connection)
    txns: HashMap<u64, (GlobalTxn, u64)>,
    /// token -> consecutive `Wait` answers (valve input; reset by any
    /// other outcome, fires [`ShardedDb::restart`] at `wait_valve`).
    waits: HashMap<u64, u32>,
    /// See [`ServerConfig::wait_valve`].
    wait_valve: u32,
    next_token: u64,
    max_txns: usize,
    num_vars: u32,
    sheds: Arc<ShedCounters>,
    commits: u64,
    /// Engine "tick" for trace timestamps: one per processed message.
    tick: u64,
    draining: bool,
    deadline: Option<Instant>,
    grace: Duration,
    // ---- ops plane ----
    cc_name: String,
    shards: usize,
    started: Instant,
    /// Live trace subscriptions by owning connection.
    subs: HashMap<u64, Vec<SubEntry>>,
    subscriber_ring: usize,
    subscriber_rate: usize,
    /// Global stop flag, shared with pump threads.
    stop: Arc<AtomicBool>,
    ops: Arc<OpsShared>,
    queue_depth: Arc<AtomicUsize>,
    sample_interval: Duration,
    next_sample: Instant,
    prev_metrics: Metrics,
    prev_hist: Histogram,
    prev_wire_sheds: u64,
    series: VecDeque<SamplePoint>,
    sample_ring: usize,
    stats_line: bool,
}

#[allow(clippy::too_many_arguments)]
fn engine_thread(
    cfg: ServerConfig,
    rx: Receiver<ToEngine>,
    ready_tx: mpsc::Sender<Result<(), ServerError>>,
    done_tx: mpsc::Sender<DrainStats>,
    stop: Arc<AtomicBool>,
    kill: Arc<AtomicBool>,
    sheds: Arc<ShedCounters>,
    conn_streams: Arc<Mutex<HashMap<u64, TcpStream>>>,
    ops: Arc<OpsShared>,
    queue_depth: Arc<AtomicUsize>,
) {
    // The factory lives on this thread's stack for the `ShardedDb`'s
    // whole life — the borrow that makes `ShardedDb<'a>` workable here.
    let cc_name = cfg.cc.clone();
    let make_cc: Box<dyn Fn() -> Box<dyn ConcurrencyControl>> =
        Box::new(move || cc_by_name(&cc_name).expect("name validated at start"));
    let init = GlobalState::from_ints(&vec![0; cfg.num_vars]);
    let mut db = match &cfg.dir {
        Some(dir) => {
            match ShardedDb::open(&*make_cc, init, dir, cfg.mode, cfg.shards, cfg.max_txns) {
                Ok(db) => db,
                Err(e) => {
                    let _ = ready_tx.send(Err(ServerError::Wal(e)));
                    return;
                }
            }
        }
        None => ShardedDb::with_capacity(&*make_cc, init, cfg.shards, cfg.max_txns),
    };
    if cfg.shard_queue > 0 {
        db.set_queue_capacity(cfg.shard_queue);
    }
    let mut tracer = Tracer::off();
    if let Some(tc) = &cfg.trace {
        if let Err(e) = db.set_trace(tc) {
            let _ = ready_tx.send(Err(ServerError::Io(e)));
            return;
        }
        // The server plane emits as shard id S+1 (one past the
        // coordinator's S), so merged traces stay totally ordered.
        if let Some(hub) = db.trace_hub() {
            tracer = hub.tracer(cfg.shards as u32 + 1);
        }
    }
    let now = Instant::now();
    let mut eng = Engine {
        db,
        tracer,
        conns: HashMap::new(),
        txns: HashMap::new(),
        waits: HashMap::new(),
        wait_valve: cfg.wait_valve,
        next_token: 0,
        max_txns: cfg.max_txns.max(1),
        num_vars: cfg.num_vars as u32,
        sheds,
        commits: 0,
        tick: 0,
        draining: false,
        deadline: None,
        grace: cfg.drain_grace,
        cc_name: cfg.cc.clone(),
        shards: cfg.shards,
        started: now,
        subs: HashMap::new(),
        subscriber_ring: cfg.subscriber_ring.max(1),
        subscriber_rate: cfg.subscriber_rate,
        stop: Arc::clone(&stop),
        ops,
        queue_depth,
        sample_interval: cfg.sample_interval,
        next_sample: now + cfg.sample_interval,
        prev_metrics: Metrics::default(),
        prev_hist: Histogram::new(),
        prev_wire_sheds: 0,
        series: VecDeque::new(),
        sample_ring: cfg.sample_ring.max(1),
        stats_line: cfg.stats_line,
    };
    // Publish a baseline snapshot so `/metrics` answers from the first
    // scrape and the first sample point diffs against startup, not zero.
    eng.prev_metrics = eng.db.metrics();
    eng.prev_hist = eng.db.commit_latency_ticks();
    let first = eng.snapshot();
    *eng.ops.published.lock().unwrap() = Some(first);
    eng.publish_health();
    // Readiness is signalled only now: `start` returning guarantees the
    // first `/metrics` scrape has a snapshot to serve.
    let _ = ready_tx.send(Ok(()));

    let mut batch: Vec<ToEngine> = Vec::with_capacity(256);
    let mut killed = false;
    'serve: loop {
        if kill.load(Ordering::SeqCst) {
            killed = true;
            break 'serve;
        }
        batch.clear();
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(m) => batch.push(m),
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break 'serve,
        }
        while batch.len() < 256 {
            match rx.try_recv() {
                Ok(m) => batch.push(m),
                Err(_) => break,
            }
        }
        eng.process(&batch);
        eng.publish_health();
        eng.maybe_sample();
        if eng.draining {
            let expired = eng.deadline.map(|d| Instant::now() >= d).unwrap_or(true);
            if eng.txns.is_empty() || expired {
                break 'serve;
            }
        }
    }

    // Stop every subscription pump before tearing the engine down.
    for entries in eng.subs.values() {
        for e in entries {
            e.stop.store(true, Ordering::SeqCst);
        }
    }

    let mut stats = DrainStats {
        commits: eng.commits,
        aborted_on_drain: 0,
        sheds_pipeline: eng.sheds.pipeline.load(Ordering::Relaxed),
        sheds_queue: eng.sheds.queue.load(Ordering::Relaxed),
        sheds_txns: eng.sheds.txns.load(Ordering::Relaxed),
    };
    if !killed {
        // Abort stragglers, sync the logs, close the books.
        let leftovers: Vec<GlobalTxn> = eng.txns.values().map(|&(h, _)| h).collect();
        stats.aborted_on_drain = leftovers.len();
        for h in leftovers {
            let _ = eng.db.abort(h);
        }
        eng.txns.clear();
        eng.waits.clear();
        let _ = eng.db.sync();
        if eng.draining && eng.tracer.is_on() {
            let t = eng.tick;
            eng.tracer.emit(t, EventKind::DrainDone);
        }
        eng.db.flush_trace();
    }
    // Wake every connection so its threads exit.
    stop.store(true, Ordering::SeqCst);
    for (_, s) in conn_streams.lock().unwrap().drain() {
        let _ = s.shutdown(Shutdown::Both);
    }
    let _ = done_tx.send(stats);
    // `killed` drops the database without the sync above: the write-ahead
    // logs close mid-stream, which is the crash the recovery path serves.
}

/// One transaction's accumulated work inside a drain pass, on its way
/// into a [`ShardedDb::submit_group`] call: the ops of its pipelined
/// per-op requests and wire batches, concatenated in arrival order, with
/// per-request segment boundaries kept so each request gets its own
/// answer back.
struct PendEntry {
    conn: u64,
    token: u64,
    segs: Vec<Seg>,
    ops: Vec<BatchOp>,
    /// The request id of the commit-bearing request, if any; set by a
    /// plain `Commit` or a wire `Batch { commit: true }`. An entry with
    /// a commit is sealed — a later request on the same token flushes
    /// the whole group first (its execution depends on this outcome).
    commit_req: Option<u64>,
    /// The commit came from a wire `Batch` (answer inside its
    /// `Response::Batch`) rather than a plain `Commit`.
    commit_is_batch: bool,
}

/// One request's slice of a [`PendEntry`]'s concatenated ops.
enum Seg {
    /// A per-op request (`Read`/`Write`/`Update`): one op, one
    /// single-op response.
    Single { req_id: u64 },
    /// A wire `Batch` covering the next `n` ops: one
    /// [`Response::Batch`].
    Wire { req_id: u64, n: usize },
}

/// The per-pass accumulator of [`PendEntry`]s, in first-arrival order.
#[derive(Default)]
struct Pending {
    entries: Vec<PendEntry>,
    index: HashMap<(u64, u64), usize>,
}

impl Pending {
    fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl Engine<'_> {
    fn process(&mut self, msgs: &[ToEngine]) {
        // Group submit: accumulate every transaction's data ops, wire
        // batches and commits across the whole drained pass — across
        // connections — and hand them to the engine as ONE
        // `submit_group` call per flush, so independent transactions
        // share shard messages instead of paying a round trip each.
        // Requests that only read engine-adjacent state (`Ping`,
        // `Begin`, `Stats`, `Health`) interleave without flushing;
        // anything that mutates transaction or server lifecycle state
        // (aborts, drains, faults, subscriptions, dead connections) is a
        // barrier: the pending group flushes first, preserving arrival
        // order where it is observable.
        let mut pending = Pending::default();
        for m in msgs {
            self.tick += 1;
            match m {
                ToEngine::Req { conn, req_id, req } => {
                    // The reader counted this request into the
                    // queue-depth gauge before sending it.
                    self.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    match req {
                        Request::Read { .. }
                        | Request::Write { .. }
                        | Request::Update { .. }
                        | Request::Batch { .. }
                        | Request::Commit { .. } => self.enqueue(&mut pending, *conn, *req_id, req),
                        Request::Ping | Request::Begin | Request::Stats | Request::Health => {
                            self.request(*conn, *req_id, req)
                        }
                        Request::Abort { .. } | Request::Shutdown | Request::Subscribe => {
                            self.flush_group(&mut pending);
                            self.request(*conn, *req_id, req);
                        }
                    }
                }
                ToEngine::Conn { .. } => self.handle(m),
                ToEngine::Gone { .. }
                | ToEngine::Drain
                | ToEngine::PanicShard(_)
                | ToEngine::Kill => {
                    self.flush_group(&mut pending);
                    self.handle(m);
                }
            }
        }
        self.flush_group(&mut pending);
    }

    /// Append one groupable request to the pass's pending group.
    fn enqueue(&mut self, pending: &mut Pending, conn: u64, req_id: u64, req: &Request) {
        let token = match req {
            Request::Read { txn, .. }
            | Request::Write { txn, .. }
            | Request::Update { txn, .. }
            | Request::Batch { txn, .. }
            | Request::Commit { txn } => *txn,
            _ => unreachable!("only groupable requests are enqueued"),
        };
        // Malformed variable ids are refused before anything reaches a
        // shard; for a wire batch the whole request is refused (its
        // contract: one response, never per-op errors).
        let num_vars = self.num_vars;
        let bad_var = move |ops: &[BatchOp]| ops.iter().find(|op| op.var().0 >= num_vars).copied();
        match req {
            Request::Read { .. } | Request::Write { .. } | Request::Update { .. } => {
                let (_, op) = data_op(req).expect("data requests carry an op");
                if let Some(op) = bad_var(&[op]) {
                    let msg = format!("variable {} outside 0..{}", op.var().0, self.num_vars);
                    self.respond(
                        conn,
                        req_id,
                        &Response::Err {
                            code: ErrCode::Malformed,
                            msg,
                        },
                    );
                    return;
                }
            }
            Request::Batch { ops, .. } => {
                if let Some(op) = bad_var(ops) {
                    let msg = format!("variable {} outside 0..{}", op.var().0, self.num_vars);
                    self.respond(
                        conn,
                        req_id,
                        &Response::Err {
                            code: ErrCode::Malformed,
                            msg,
                        },
                    );
                    return;
                }
            }
            _ => {}
        }
        if let Some(&ix) = pending.index.get(&(conn, token)) {
            if pending.entries[ix].commit_req.is_some() {
                // Pipelined past a commit: what this request means
                // depends on that commit's outcome, so the group
                // flushes and the request starts a fresh entry.
                self.flush_group(pending);
            }
        }
        let ix = match pending.index.get(&(conn, token)) {
            Some(&ix) => ix,
            None => {
                pending.entries.push(PendEntry {
                    conn,
                    token,
                    segs: Vec::new(),
                    ops: Vec::new(),
                    commit_req: None,
                    commit_is_batch: false,
                });
                let ix = pending.entries.len() - 1;
                pending.index.insert((conn, token), ix);
                ix
            }
        };
        let e = &mut pending.entries[ix];
        match req {
            Request::Read { .. } | Request::Write { .. } | Request::Update { .. } => {
                let (_, op) = data_op(req).expect("data requests carry an op");
                e.segs.push(Seg::Single { req_id });
                e.ops.push(op);
            }
            Request::Batch { ops, commit, .. } => {
                e.segs.push(Seg::Wire {
                    req_id,
                    n: ops.len(),
                });
                e.ops.extend_from_slice(ops);
                if *commit {
                    e.commit_req = Some(req_id);
                    e.commit_is_batch = true;
                }
            }
            Request::Commit { .. } => {
                e.commit_req = Some(req_id);
                e.commit_is_batch = false;
            }
            _ => unreachable!("only groupable requests are enqueued"),
        }
    }

    /// Submit the pass's pending group through
    /// [`ShardedDb::submit_group`] and answer every request it carried.
    fn flush_group(&mut self, pending: &mut Pending) {
        if pending.is_empty() {
            return;
        }
        let entries = std::mem::take(&mut pending.entries);
        pending.index.clear();
        let mut reqs: Vec<GroupReq> = Vec::with_capacity(entries.len());
        let mut live: Vec<(PendEntry, GlobalTxn)> = Vec::with_capacity(entries.len());
        for e in entries {
            let Some(&(h, _)) = self.txns.get(&e.token) else {
                for seg in &e.segs {
                    let (Seg::Single { req_id } | Seg::Wire { req_id, .. }) = seg;
                    self.unknown(e.conn, *req_id, e.token);
                }
                if let (Some(req_id), false) = (e.commit_req, e.commit_is_batch) {
                    self.unknown(e.conn, req_id, e.token);
                }
                continue;
            };
            reqs.push(GroupReq {
                h,
                ops: e.ops.clone(),
                commit: e.commit_req.is_some(),
            });
            live.push((e, h));
        }
        let resps = self.db.submit_group(reqs);
        debug_assert_eq!(resps.len(), live.len());
        for ((e, h), resp) in live.into_iter().zip(resps) {
            self.settle(&e, h, resp);
        }
    }

    /// Answer every request of one settled [`PendEntry`].
    fn settle(&mut self, e: &PendEntry, h: GlobalTxn, resp: GroupResp) {
        let (conn, token) = (e.conn, e.token);
        let results = match resp.results {
            Ok(results) => results,
            Err(err) => {
                // The whole entry failed before any op ran (stale
                // handle, shard down, prepared): every request it
                // carried gets the mapped error.
                for seg in &e.segs {
                    let (Seg::Single { req_id } | Seg::Wire { req_id, .. }) = seg;
                    self.session_error(conn, *req_id, token, err);
                }
                if let (Some(req_id), false) = (e.commit_req, e.commit_is_batch) {
                    self.session_error(conn, req_id, token, err);
                }
                return;
            }
        };
        // Trailing analysis, once per entry (mirrors `flush_run`): a
        // trailing `Wait` feeds the distributed-deadlock valve, which
        // may turn the whole answer into `Restarted`.
        let trailing = match results.last() {
            Some(Op::Restarted) => {
                self.waits.remove(&token);
                Some(Response::Restarted)
            }
            Some(Op::Wait) => Some(self.waited(token, h)),
            Some(Op::Done(_)) if results.len() == e.ops.len() => {
                self.waits.remove(&token);
                None
            }
            _ => None,
        };
        let trailing_out = match &trailing {
            Some(Response::Restarted) => BatchOutcome::Restarted,
            _ => BatchOutcome::Wait,
        };
        let mut pos = 0usize;
        for seg in &e.segs {
            match *seg {
                Seg::Single { req_id } => {
                    let resp = match results.get(pos) {
                        Some(Op::Done(v)) => Response::Done { value: *v },
                        _ => trailing.clone().unwrap_or(Response::Wait),
                    };
                    self.respond(conn, req_id, &resp);
                    pos += 1;
                }
                Seg::Wire { req_id, n } => {
                    let avail = results.len().saturating_sub(pos).min(n);
                    let mut outs: Vec<BatchOutcome> = results[pos..pos + avail]
                        .iter()
                        .map(|r| match r {
                            Op::Done(v) => BatchOutcome::Done { value: *v },
                            Op::Wait => trailing_out.clone(),
                            Op::Restarted => BatchOutcome::Restarted,
                        })
                        .collect();
                    if avail < n
                        && outs
                            .last()
                            .is_none_or(|o| matches!(o, BatchOutcome::Done { .. }))
                    {
                        // The run stopped before reaching (or finishing)
                        // this batch: its next op answers the trailing
                        // outcome — "resume here" keeps the client's
                        // replay contract identical to the per-op path.
                        outs.push(trailing_out.clone());
                    }
                    pos += n;
                    let commit = if e.commit_is_batch && e.commit_req == Some(req_id) {
                        match resp.commit {
                            Some(Ok(Op::Done(()))) => {
                                self.txns.remove(&token);
                                self.waits.remove(&token);
                                self.commits += 1;
                                Some(BatchCommit::Committed)
                            }
                            Some(Ok(Op::Wait)) => match self.waited(token, h) {
                                Response::Restarted => Some(BatchCommit::Restarted),
                                _ => Some(BatchCommit::Wait),
                            },
                            Some(Ok(Op::Restarted)) => {
                                self.waits.remove(&token);
                                Some(BatchCommit::Restarted)
                            }
                            Some(Err(err)) => {
                                self.session_error(conn, req_id, token, err);
                                continue;
                            }
                            None => None,
                        }
                    } else {
                        None
                    };
                    self.respond(
                        conn,
                        req_id,
                        &Response::Batch {
                            results: outs,
                            commit,
                        },
                    );
                }
            }
        }
        if let (Some(req_id), false) = (e.commit_req, e.commit_is_batch) {
            match resp.commit {
                Some(Ok(Op::Done(()))) => {
                    self.txns.remove(&token);
                    self.waits.remove(&token);
                    self.commits += 1;
                    self.respond(conn, req_id, &Response::Committed);
                }
                Some(Ok(Op::Wait)) => {
                    let r = self.waited(token, h);
                    self.respond(conn, req_id, &r);
                }
                Some(Ok(Op::Restarted)) => {
                    self.waits.remove(&token);
                    self.respond(conn, req_id, &Response::Restarted);
                }
                Some(Err(err)) => self.session_error(conn, req_id, token, err),
                None => {
                    // The run ended short, so the group never attempted
                    // this plain `Commit`. It still owes an answer with
                    // today's sequential semantics: commit whatever the
                    // transaction's current attempt holds.
                    self.do_commit(conn, req_id, token, h);
                }
            }
        }
    }

    /// The plain-`Commit` execution path (shared by [`request`]
    /// (Self::request) and the group fallback).
    fn do_commit(&mut self, conn: u64, req_id: u64, token: u64, h: GlobalTxn) {
        match self.db.commit(h) {
            Ok(Op::Done(())) => {
                let _ = self.db.retire(h);
                self.txns.remove(&token);
                self.waits.remove(&token);
                self.commits += 1;
                self.respond(conn, req_id, &Response::Committed);
            }
            Ok(Op::Wait) => {
                let resp = self.waited(token, h);
                self.respond(conn, req_id, &resp);
            }
            Ok(Op::Restarted) => {
                self.waits.remove(&token);
                self.respond(conn, req_id, &Response::Restarted);
            }
            Err(e) => self.session_error(conn, req_id, token, e),
        }
    }

    fn handle(&mut self, m: &ToEngine) {
        match m {
            ToEngine::Conn { id, out } => {
                self.conns.insert(*id, out.clone());
                if self.tracer.is_on() {
                    let t = self.tick;
                    self.tracer.emit(t, EventKind::ConnAccept { conn: *id });
                }
            }
            ToEngine::Gone { id } => {
                // A dead connection's transactions are aborted: nobody
                // can ever speak for their tokens again.
                let orphans: Vec<u64> = self
                    .txns
                    .iter()
                    .filter(|(_, (_, c))| c == id)
                    .map(|(&tok, _)| tok)
                    .collect();
                for tok in orphans {
                    if let Some((h, _)) = self.txns.remove(&tok) {
                        self.waits.remove(&tok);
                        let _ = self.db.abort(h);
                    }
                }
                // Its trace subscriptions end with it: detach from the
                // hub (emit stops immediately) and stop the pumps.
                if let Some(entries) = self.subs.remove(id) {
                    for e in entries {
                        if let Some(hub) = self.db.trace_hub() {
                            hub.unsubscribe(e.hub_id);
                        }
                        e.stop.store(true, Ordering::SeqCst);
                        if self.tracer.is_on() {
                            let t = self.tick;
                            self.tracer.emit(t, EventKind::SubscribeEnd { conn: *id });
                        }
                    }
                }
                self.conns.remove(id);
                if self.tracer.is_on() {
                    let t = self.tick;
                    self.tracer.emit(t, EventKind::ConnClose { conn: *id });
                }
            }
            ToEngine::Req { conn, req_id, req } => self.request(*conn, *req_id, req),
            ToEngine::Drain => self.begin_drain(),
            ToEngine::PanicShard(s) => {
                if *s < self.shards {
                    self.db.panic_shard(*s);
                }
            }
            ToEngine::Kill => {}
        }
    }

    fn request(&mut self, conn: u64, req_id: u64, req: &Request) {
        match req {
            Request::Ping => self.respond(conn, req_id, &Response::Pong),
            Request::Begin => {
                if self.draining {
                    self.respond(conn, req_id, &Response::Draining);
                } else if self.txns.len() >= self.max_txns {
                    self.sheds.txns.fetch_add(1, Ordering::Relaxed);
                    if self.tracer.is_on() {
                        let t = self.tick;
                        self.tracer.emit(t, EventKind::RequestShed { conn });
                    }
                    self.respond(conn, req_id, &Response::Shed);
                } else {
                    let h = self.db.begin();
                    self.next_token += 1;
                    let token = self.next_token;
                    self.txns.insert(token, (h, conn));
                    self.respond(conn, req_id, &Response::Began { txn: token });
                }
            }
            Request::Commit { txn } => {
                let Some(&(h, _)) = self.txns.get(txn) else {
                    self.unknown(conn, req_id, *txn);
                    return;
                };
                self.do_commit(conn, req_id, *txn, h);
            }
            Request::Abort { txn } => {
                let Some(&(h, _)) = self.txns.get(txn) else {
                    self.unknown(conn, req_id, *txn);
                    return;
                };
                match self.db.abort(h) {
                    Ok(()) => {
                        self.txns.remove(txn);
                        self.waits.remove(txn);
                        self.respond(conn, req_id, &Response::Aborted);
                    }
                    Err(e) => self.session_error(conn, req_id, *txn, e),
                }
            }
            Request::Shutdown => {
                self.respond(conn, req_id, &Response::Draining);
                self.begin_drain();
            }
            Request::Stats => {
                let snap = self.snapshot();
                self.respond(
                    conn,
                    req_id,
                    &Response::Stats {
                        stats: Box::new(snap),
                    },
                );
            }
            Request::Health => {
                let report = self.health();
                self.respond(conn, req_id, &Response::Health { report });
            }
            Request::Subscribe => self.subscribe(conn, req_id),
            // Data ops and batches normally arrive through the group
            // accumulator in `process`, but a lone one can still land
            // here (e.g. via `handle`); route it through the same
            // machinery as a one-entry group.
            Request::Read { .. }
            | Request::Write { .. }
            | Request::Update { .. }
            | Request::Batch { .. } => {
                let mut pending = Pending::default();
                self.enqueue(&mut pending, conn, req_id, req);
                self.flush_group(&mut pending);
            }
        }
    }

    // ------------------------------------------------------- ops plane

    /// Build a fresh [`ServerStats`] snapshot. Read-only over the
    /// [`ShardedDb`]: aggregating counters, draining per-shard
    /// contention tallies, and cloning the sample ring — no transaction
    /// state is touched, which is what keeps `Stats` requests invisible
    /// to the data plane.
    fn snapshot(&mut self) -> ServerStats {
        let metrics = self.db.metrics();
        let hist = self.db.commit_latency_ticks();
        let (subscribers, sub_dropped) = match self.db.trace_hub() {
            Some(hub) => (hub.subscriber_count() as u32, hub.subscribers_dropped()),
            None => (0, 0),
        };
        ServerStats {
            uptime_ms: self.started.elapsed().as_millis() as u64,
            cc: self.cc_name.clone(),
            num_vars: self.num_vars,
            conns: self.conns.len() as u32,
            live_txns: self.txns.len() as u32,
            queue_depth: self.queue_depth.load(Ordering::Relaxed) as u32,
            draining: self.draining,
            shards: self
                .db
                .shard_statuses()
                .iter()
                .map(|s| ShardHealth {
                    alive: s.alive,
                    down: s.down,
                    restarts: s.restarts,
                })
                .collect(),
            metrics,
            commit_p50_ticks: hist.quantile(0.5),
            commit_p99_ticks: hist.quantile(0.99),
            top_contended: self
                .db
                .top_contended(8)
                .iter()
                .map(|v| ContendedVar {
                    var: v.var.0,
                    waits: v.waits as u64,
                    aborts: v.aborts as u64,
                })
                .collect(),
            sheds_pipeline: self.sheds.pipeline.load(Ordering::Relaxed),
            sheds_queue: self.sheds.queue.load(Ordering::Relaxed),
            sheds_txns: self.sheds.txns.load(Ordering::Relaxed),
            subscribers,
            sub_dropped,
            series: self.series.iter().copied().collect(),
        }
    }

    fn health(&mut self) -> HealthReport {
        let statuses = self.db.shard_statuses();
        let down = statuses.iter().filter(|s| s.down || !s.alive).count() as u32;
        HealthReport {
            degraded: down > 0,
            draining: self.draining,
            shards: statuses.len() as u32,
            shards_down: down,
        }
    }

    /// Refresh the `/healthz` flags. Runs every engine-loop iteration
    /// (a handful of atomic stores), so a shard crash flips the health
    /// endpoint within ~25ms regardless of the sampler period.
    fn publish_health(&mut self) {
        let report = self.health();
        self.ops.degraded.store(report.degraded, Ordering::Relaxed);
        self.ops.draining.store(report.draining, Ordering::Relaxed);
        self.ops.shards.store(report.shards, Ordering::Relaxed);
        self.ops
            .shards_down
            .store(report.shards_down, Ordering::Relaxed);
    }

    /// The sampler: at every interval boundary, snapshot, derive the
    /// window's [`SamplePoint`] from [`Metrics::diff`] and
    /// [`Histogram::diff`], push it into the bounded ring, and publish
    /// the snapshot for the HTTP listener.
    fn maybe_sample(&mut self) {
        if self.sample_interval.is_zero() {
            return;
        }
        let now = Instant::now();
        if now < self.next_sample {
            return;
        }
        // One point per elapsed boundary would backfill idle periods
        // with zeros; one point per wakeup with a late timestamp keeps
        // the series honest instead.
        while self.next_sample <= now {
            self.next_sample += self.sample_interval;
        }
        let snap = self.snapshot();
        let hist = self.db.commit_latency_ticks();
        let dm = snap.metrics.diff(&self.prev_metrics);
        let wire_sheds = snap.sheds_total();
        let point = SamplePoint {
            at_ms: snap.uptime_ms,
            interval_ms: self.sample_interval.as_millis() as u64,
            commits: dm.commits as u64,
            aborts: dm.aborts as u64,
            sheds: wire_sheds.saturating_sub(self.prev_wire_sheds),
            shed_aborts: dm.shed_aborts as u64,
            queue_depth: snap.queue_depth,
            live_txns: snap.live_txns,
            p99_ticks: hist.diff(&self.prev_hist).quantile(0.99),
        };
        self.prev_metrics = snap.metrics;
        self.prev_hist = hist;
        self.prev_wire_sheds = wire_sheds;
        if self.series.len() >= self.sample_ring {
            self.series.pop_front();
        }
        self.series.push_back(point);
        if self.stats_line {
            println!(
                "stats at_ms={} commits={} aborts={} sheds={} shed_aborts={} \
                 queue_depth={} live_txns={} p99_ticks={}",
                point.at_ms,
                point.commits,
                point.aborts,
                point.sheds,
                point.shed_aborts,
                point.queue_depth,
                point.live_txns,
                point.p99_ticks
            );
        }
        let mut snap = snap;
        snap.series = self.series.iter().copied().collect();
        *self.ops.published.lock().unwrap() = Some(snap);
    }

    /// Handle [`Request::Subscribe`]: attach a bounded ring to the trace
    /// hub (creating a sink-less hub if the server runs untraced) and
    /// spawn a pump thread that forwards buffered events to the
    /// connection under [`SUB_CREDIT`] flow control.
    fn subscribe(&mut self, conn: u64, req_id: u64) {
        if self.draining {
            self.respond(conn, req_id, &Response::Draining);
            return;
        }
        let Some(out) = self.conns.get(&conn).cloned() else {
            return;
        };
        if self.db.trace_hub().is_none() {
            // A default config has no sink and a zero-capacity flight
            // recorder: the hub exists only to fan events out to
            // subscribers. PR 7's differential suite proved traced and
            // untraced runs behaviorally identical, so flipping tracing
            // on here does not perturb the data plane.
            if self.db.set_trace(&TraceConfig::default()).is_err() {
                self.respond(
                    conn,
                    req_id,
                    &Response::Err {
                        code: ErrCode::BadState,
                        msg: "tracing could not be enabled".to_string(),
                    },
                );
                return;
            }
            if let Some(hub) = self.db.trace_hub() {
                self.tracer = hub.tracer(self.shards as u32 + 1);
            }
        }
        let Some(hub) = self.db.trace_hub() else {
            return;
        };
        let sub = hub.subscribe(self.subscriber_ring);
        let hub_id = sub.id();
        let stop = Arc::new(AtomicBool::new(false));
        self.subs.entry(conn).or_default().push(SubEntry {
            hub_id,
            stop: Arc::clone(&stop),
        });
        {
            let t = self.tick;
            self.tracer.emit(t, EventKind::SubscribeStart { conn });
        }
        self.respond(conn, req_id, &Response::Subscribed);
        let global_stop = Arc::clone(&self.stop);
        let rate = self.subscriber_rate;
        let _ = std::thread::Builder::new()
            .name(format!("ccopt-net-sub{hub_id}"))
            .spawn(move || subscription_pump(sub, out, req_id, rate, stop, global_stop));
    }

    fn begin_drain(&mut self) {
        if !self.draining {
            self.draining = true;
            self.deadline = Some(Instant::now() + self.grace);
            if self.tracer.is_on() {
                let t = self.tick;
                self.tracer.emit(t, EventKind::DrainStart);
            }
        }
    }

    /// Record one `Wait` answer for `token` and fire the
    /// distributed-deadlock valve when the bound is reached: two wire
    /// clients in a cross-shard lock cycle would otherwise exchange
    /// `Wait` retries forever, because no shard-local deadlock detector
    /// can see the cycle. Firing force-restarts the transaction
    /// ([`ShardedDb::restart`]) and answers `Restarted`, which the
    /// client already handles by replaying its program on the same
    /// token.
    fn waited(&mut self, token: u64, h: GlobalTxn) -> Response {
        if self.wait_valve == 0 {
            return Response::Wait;
        }
        let n = self.waits.entry(token).or_insert(0);
        *n += 1;
        if *n < self.wait_valve {
            return Response::Wait;
        }
        self.waits.remove(&token);
        match self.db.restart(h) {
            Ok(()) => Response::Restarted,
            // Not restartable (already terminal); let the client's next
            // request surface the real state.
            Err(_) => Response::Wait,
        }
    }

    fn session_error(&mut self, conn: u64, req_id: u64, token: u64, e: SessionError) {
        let resp = match e {
            SessionError::Stale => {
                self.txns.remove(&token);
                self.waits.remove(&token);
                Response::Err {
                    code: ErrCode::UnknownTxn,
                    msg: "the transaction is gone".to_string(),
                }
            }
            SessionError::ShardDown => {
                // The transaction is dead; free the handle and the token.
                if let Some((h, _)) = self.txns.remove(&token) {
                    self.waits.remove(&token);
                    let _ = self.db.abort(h);
                }
                Response::Err {
                    code: ErrCode::ShardDown,
                    msg: "owning shard crashed; begin a new transaction".to_string(),
                }
            }
            SessionError::AlreadyCommitted
            | SessionError::StillRunning
            | SessionError::Prepared
            | SessionError::NotPrepared => Response::Err {
                code: ErrCode::BadState,
                msg: e.to_string(),
            },
        };
        self.respond(conn, req_id, &resp);
    }

    fn unknown(&mut self, conn: u64, req_id: u64, token: u64) {
        self.respond(
            conn,
            req_id,
            &Response::Err {
                code: ErrCode::UnknownTxn,
                msg: format!("no transaction {token}"),
            },
        );
    }

    fn respond(&mut self, conn: u64, req_id: u64, resp: &Response) {
        if let Some(out) = self.conns.get(&conn) {
            // A dead writer is handled by the reader's `Gone`; dropping
            // the response here is safe because the connection is gone.
            let _ = out.send(OutMsg {
                bytes: encode_response(req_id, resp),
                credit: None,
            });
        }
    }
}

// ------------------------------------------------------------ ops plane

/// Forward a subscription's buffered trace lines to its connection.
///
/// The pump is the isolation layer between the engine and a slow
/// subscriber: it takes lines out of the bounded [`TraceSubscription`]
/// ring only while it holds credit (at most [`SUB_CREDIT`] batch
/// frames undelivered in the writer channel), sleeping otherwise. A
/// subscriber that never reads therefore stalls only this thread; the
/// engine keeps emitting into the ring, which drops-and-counts on
/// overflow, and the running dropped total rides along in every
/// [`Response::Events`] frame.
///
/// Each round drains one bounded batch and packs it into as few
/// [`Response::Events`] frames as fit under a per-frame byte cap: one
/// channel push, one writer wake-up and one client read then carry
/// hundreds of events instead of one — the difference between an ops
/// plane that perturbs a single-core box and one that does not.
///
/// `rate` ([`ServerConfig::subscriber_rate`]) caps delivery: at most
/// `rate / 100` lines per 10 ms round, the rest left to the ring's
/// drop-and-count. Zero runs the pump unpaced.
fn subscription_pump(
    sub: TraceSubscription,
    out: mpsc::Sender<OutMsg>,
    req_id: u64,
    rate: usize,
    stop: Arc<AtomicBool>,
    global_stop: Arc<AtomicBool>,
) {
    // Lines drained per unpaced round, and a payload cap keeping every
    // frame well under `MAX_FRAME` even with maximum-length lines.
    const ROUND_LINES: usize = 256;
    const BATCH_BYTES: usize = 32 * 1024;
    const ROUND: Duration = Duration::from_millis(10);
    let per_round = if rate == 0 {
        ROUND_LINES
    } else {
        (rate / 100).max(1)
    };
    let credit = Arc::new(AtomicUsize::new(0));
    loop {
        if stop.load(Ordering::SeqCst) || global_stop.load(Ordering::SeqCst) {
            return;
        }
        if credit.load(Ordering::SeqCst) >= SUB_CREDIT {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        let (lines, dropped) = sub.drain_up_to(per_round);
        if lines.is_empty() {
            std::thread::sleep(Duration::from_millis(2));
            continue;
        }
        let mut batch: Vec<String> = Vec::new();
        let mut bytes = 0usize;
        for line in lines {
            if !batch.is_empty() && bytes + line.len() > BATCH_BYTES {
                if !send_events(&out, req_id, dropped, std::mem::take(&mut batch), &credit) {
                    return; // connection gone
                }
                bytes = 0;
            }
            bytes += line.len();
            batch.push(line);
        }
        if !batch.is_empty() && !send_events(&out, req_id, dropped, batch, &credit) {
            return; // connection gone
        }
        if rate != 0 {
            std::thread::sleep(ROUND);
        }
    }
}

/// Push one [`Response::Events`] frame into the connection's writer
/// channel, charging the pump's credit. Returns `false` when the
/// connection is gone.
fn send_events(
    out: &mpsc::Sender<OutMsg>,
    req_id: u64,
    dropped: u64,
    lines: Vec<String>,
    credit: &Arc<AtomicUsize>,
) -> bool {
    credit.fetch_add(1, Ordering::SeqCst);
    out.send(OutMsg {
        bytes: encode_response(req_id, &Response::Events { dropped, lines }),
        credit: Some(Arc::clone(credit)),
    })
    .is_ok()
}

/// The dependency-free ops HTTP listener: `GET /metrics` serves the
/// Prometheus text exposition of the last published snapshot,
/// `GET /healthz` answers `200 ok` / `503 degraded` / `503 draining`
/// from flags the engine refreshes every loop iteration.
fn ops_http_thread(listener: TcpListener, ops: Arc<OpsShared>, stop: Arc<AtomicBool>) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => serve_http(stream, &ops),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn serve_http(mut stream: TcpStream, ops: &OpsShared) {
    // The accepted stream may inherit the listener's nonblocking mode on
    // some platforms; the request read must block (bounded by timeout).
    let _ = stream.set_nonblocking(false);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let n = match stream.read(&mut buf) {
        Ok(n) if n > 0 => n,
        _ => return,
    };
    let head = String::from_utf8_lossy(&buf[..n]);
    let path = head
        .strip_prefix("GET ")
        .and_then(|r| r.split_whitespace().next())
        .unwrap_or("");
    let (status, ctype, body) = match path {
        "/metrics" => match ops.published.lock().unwrap().as_ref() {
            Some(snap) => (
                "200 OK",
                "text/plain; version=0.0.4",
                render_prometheus(snap),
            ),
            None => (
                "503 Service Unavailable",
                "text/plain",
                "no sample yet\n".to_string(),
            ),
        },
        "/healthz" => {
            if ops.degraded.load(Ordering::Relaxed) {
                let down = ops.shards_down.load(Ordering::Relaxed);
                let total = ops.shards.load(Ordering::Relaxed);
                (
                    "503 Service Unavailable",
                    "text/plain",
                    format!("degraded: {down}/{total} shards down\n"),
                )
            } else if ops.draining.load(Ordering::Relaxed) {
                (
                    "503 Service Unavailable",
                    "text/plain",
                    "draining\n".to_string(),
                )
            } else {
                ("200 OK", "text/plain", "ok\n".to_string())
            }
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(resp.as_bytes());
    let _ = stream.flush();
    let _ = stream.shutdown(Shutdown::Both);
}

/// A request's data-op shape `(txn, op)`, if it is one.
fn data_op(req: &Request) -> Option<(u64, BatchOp)> {
    Some(match *req {
        Request::Read { txn, var } => (txn, BatchOp::Read(VarId(var))),
        Request::Write { txn, var, value } => (txn, BatchOp::Write(VarId(var), value)),
        Request::Update { txn, var, a, c } => (
            txn,
            BatchOp::Affine {
                var: VarId(var),
                a,
                c,
            },
        ),
        _ => return None,
    })
}
