//! The ops plane's data model: structured server snapshots, the sampler
//! time-series, health reports, their wire codecs, and the Prometheus
//! text exposition.
//!
//! A [`ServerStats`] is what [`Request::Stats`](crate::Request::Stats)
//! returns: the engine's [`Metrics`] (including the 16-rule abort
//! attribution), commit-latency quantiles, per-shard health, the
//! admission-control shed ledger broken down by layer, live gauges, and
//! the sampler's bounded time-series of [`SamplePoint`]s. The codec
//! follows the frame module's conventions — little-endian, total
//! decoding, trailing bytes rejected by the caller's cursor — and starts
//! with a version byte so the snapshot schema can grow.
//!
//! [`render_prometheus`] turns a snapshot into the text exposition served
//! at `/metrics` (no dependencies, names under the `ccopt_` prefix);
//! [`parse_prometheus`] is the matching validator the smoke tests use.

use ccopt_durability::encoding::Cursor;
use ccopt_engine::Metrics;
use ccopt_trace::ConflictRule;

/// Version byte leading every encoded [`ServerStats`].
const STATS_VERSION: u8 = 1;

/// Most sample points ever encoded into one Stats response, keeping the
/// frame comfortably under [`MAX_FRAME`](crate::MAX_FRAME) (a point is
/// 56 bytes; 600 of them is ~33 KiB). The encoder keeps the **newest**
/// points when the ring holds more.
pub const MAX_SERIES_POINTS: usize = 600;

/// One shard's health as reported in a [`ServerStats`] snapshot (the
/// wire form of [`ccopt_engine::ShardStatus`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShardHealth {
    /// The worker thread is running.
    pub alive: bool,
    /// The shard is permanently down (unrecoverable storage).
    pub down: bool,
    /// Supervised restarts of this shard so far.
    pub restarts: u64,
}

/// One row of the top-contended-variables table.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ContendedVar {
    /// The global variable id.
    pub var: u32,
    /// Wait decisions attributed to it.
    pub waits: u64,
    /// Aborts attributed to it.
    pub aborts: u64,
}

/// One interval of the sampler's time-series: counter *deltas* over the
/// window plus point-in-time gauges, so overload has a flight-data
/// history instead of a single cumulative sample.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SamplePoint {
    /// Milliseconds since the server started, at the sample instant.
    pub at_ms: u64,
    /// Window length in milliseconds (the configured sample interval).
    pub interval_ms: u64,
    /// Commits in the window.
    pub commits: u64,
    /// Aborts in the window.
    pub aborts: u64,
    /// Admission-control sheds in the window (pipeline + queue + txn
    /// budget layers).
    pub sheds: u64,
    /// Shard-mailbox sheds in the window (the engine-side fourth layer).
    pub shed_aborts: u64,
    /// Engine queue depth at the sample instant (gauge).
    pub queue_depth: u32,
    /// Open transactions at the sample instant (gauge).
    pub live_txns: u32,
    /// Commit-latency p99 (engine ticks) over the window.
    pub p99_ticks: u64,
}

/// The structured snapshot answering [`Request::Stats`](crate::Request).
/// Counters are cumulative since server start except inside
/// [`series`](ServerStats::series), whose points carry window deltas.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Milliseconds since the server started.
    pub uptime_ms: u64,
    /// The concurrency-control mechanism serving.
    pub cc: String,
    /// Variables in the database.
    pub num_vars: u32,
    /// Live client connections (gauge).
    pub conns: u32,
    /// Open transactions (gauge).
    pub live_txns: u32,
    /// Requests sitting in the engine queue (gauge).
    pub queue_depth: u32,
    /// The server is draining (no new transactions).
    pub draining: bool,
    /// Per-shard health, indexed by shard id.
    pub shards: Vec<ShardHealth>,
    /// The engine's counters, 16-rule abort attribution included.
    /// `metrics.shed_aborts` is the shard-mailbox admission layer.
    pub metrics: Metrics,
    /// Commit-latency median (engine ticks, cumulative histogram).
    pub commit_p50_ticks: u64,
    /// Commit-latency p99 (engine ticks, cumulative histogram).
    pub commit_p99_ticks: u64,
    /// Most contended variables, globally ranked (bounded table).
    pub top_contended: Vec<ContendedVar>,
    /// Requests shed at the per-connection pipeline cap (reader layer).
    pub sheds_pipeline: u64,
    /// Requests shed because the bounded engine queue was full.
    pub sheds_queue: u64,
    /// `Begin`s shed at the open-transaction budget (engine layer).
    pub sheds_txns: u64,
    /// Live trace subscribers (gauge).
    pub subscribers: u32,
    /// Events dropped across all live subscriptions so far.
    pub sub_dropped: u64,
    /// The sampler's time-series, oldest first (bounded; the encoder
    /// keeps the newest [`MAX_SERIES_POINTS`]).
    pub series: Vec<SamplePoint>,
}

impl ServerStats {
    /// Total admission-control sheds across the three wire layers
    /// (the shard-mailbox layer lives in `metrics.shed_aborts`).
    pub fn sheds_total(&self) -> u64 {
        self.sheds_pipeline + self.sheds_queue + self.sheds_txns
    }

    /// Whether any shard is down or its worker dead — the condition
    /// `/healthz` reports as degraded.
    pub fn degraded(&self) -> bool {
        self.shards.iter().any(|s| s.down || !s.alive)
    }
}

/// The compact liveness answer to [`Request::Health`](crate::Request)
/// (and the substance of `/healthz`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// A shard is permanently down or its worker is dead.
    pub degraded: bool,
    /// The server is draining.
    pub draining: bool,
    /// Total shards.
    pub shards: u32,
    /// Shards currently down or dead.
    pub shards_down: u32,
}

// --------------------------------------------------------------- codec

fn put_u16(b: &mut Vec<u8>, v: u16) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(b: &mut Vec<u8>, v: u32) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(b: &mut Vec<u8>, v: u64) {
    b.extend_from_slice(&v.to_le_bytes());
}

fn put_bool(b: &mut Vec<u8>, v: bool) {
    b.push(v as u8);
}

fn take_bool(c: &mut Cursor<'_>) -> Option<bool> {
    match c.take_u8()? {
        0 => Some(false),
        1 => Some(true),
        _ => None,
    }
}

/// The engine metric fields in wire order (everything but the rule
/// array). Encoder and decoder iterate this single list, so the two
/// cannot drift.
fn metric_fields(m: &mut Metrics) -> [&mut usize; 15] {
    [
        &mut m.steps_executed,
        &mut m.waits,
        &mut m.aborts,
        &mut m.commits,
        &mut m.mv_write_aborts,
        &mut m.versions_installed,
        &mut m.versions_reclaimed,
        &mut m.max_chain_len,
        &mut m.retires,
        &mut m.wal_records,
        &mut m.wal_syncs,
        &mut m.wal_bytes,
        &mut m.shard_restarts,
        &mut m.io_retries,
        &mut m.shed_aborts,
    ]
}

fn put_metrics(b: &mut Vec<u8>, m: &Metrics) {
    let mut m = *m;
    for f in metric_fields(&mut m) {
        put_u64(b, *f as u64);
    }
    for &r in &m.aborts_by_rule {
        put_u64(b, r as u64);
    }
}

fn take_metrics(c: &mut Cursor<'_>) -> Option<Metrics> {
    let mut m = Metrics::default();
    for f in metric_fields(&mut m) {
        *f = c.take_u64()? as usize;
    }
    for r in &mut m.aborts_by_rule {
        *r = c.take_u64()? as usize;
    }
    Some(m)
}

/// Append the encoded snapshot to `b` (the [`Response::Stats`](crate::Response)
/// payload body). The series is clamped to its newest
/// [`MAX_SERIES_POINTS`]; bounded tables are truncated at `u16::MAX`
/// rows (never reached in practice).
pub fn put_stats(b: &mut Vec<u8>, s: &ServerStats) {
    b.push(STATS_VERSION);
    put_u64(b, s.uptime_ms);
    let cc = s.cc.as_bytes();
    let n = cc.len().min(u16::MAX as usize);
    put_u16(b, n as u16);
    b.extend_from_slice(&cc[..n]);
    put_u32(b, s.num_vars);
    put_u32(b, s.conns);
    put_u32(b, s.live_txns);
    put_u32(b, s.queue_depth);
    put_bool(b, s.draining);
    let shards = &s.shards[..s.shards.len().min(u16::MAX as usize)];
    put_u16(b, shards.len() as u16);
    for sh in shards {
        put_bool(b, sh.alive);
        put_bool(b, sh.down);
        put_u64(b, sh.restarts);
    }
    put_metrics(b, &s.metrics);
    put_u64(b, s.commit_p50_ticks);
    put_u64(b, s.commit_p99_ticks);
    let top = &s.top_contended[..s.top_contended.len().min(u16::MAX as usize)];
    put_u16(b, top.len() as u16);
    for t in top {
        put_u32(b, t.var);
        put_u64(b, t.waits);
        put_u64(b, t.aborts);
    }
    put_u64(b, s.sheds_pipeline);
    put_u64(b, s.sheds_queue);
    put_u64(b, s.sheds_txns);
    put_u32(b, s.subscribers);
    put_u64(b, s.sub_dropped);
    let skip = s.series.len().saturating_sub(MAX_SERIES_POINTS);
    let series = &s.series[skip..];
    put_u16(b, series.len() as u16);
    for p in series {
        put_u64(b, p.at_ms);
        put_u64(b, p.interval_ms);
        put_u64(b, p.commits);
        put_u64(b, p.aborts);
        put_u64(b, p.sheds);
        put_u64(b, p.shed_aborts);
        put_u32(b, p.queue_depth);
        put_u32(b, p.live_txns);
        put_u64(b, p.p99_ticks);
    }
}

/// Decode a snapshot from the cursor (total; `None` on truncation, an
/// unknown version, or an out-of-range flag byte). The caller checks
/// `at_end` for trailing bytes.
pub fn take_stats(c: &mut Cursor<'_>) -> Option<ServerStats> {
    if c.take_u8()? != STATS_VERSION {
        return None;
    }
    let uptime_ms = c.take_u64()?;
    let n = c.take_u16()? as usize;
    let cc = std::str::from_utf8(c.take_bytes(n)?).ok()?.to_string();
    let num_vars = c.take_u32()?;
    let conns = c.take_u32()?;
    let live_txns = c.take_u32()?;
    let queue_depth = c.take_u32()?;
    let draining = take_bool(c)?;
    let nshards = c.take_u16()? as usize;
    let mut shards = Vec::with_capacity(nshards);
    for _ in 0..nshards {
        shards.push(ShardHealth {
            alive: take_bool(c)?,
            down: take_bool(c)?,
            restarts: c.take_u64()?,
        });
    }
    let metrics = take_metrics(c)?;
    let commit_p50_ticks = c.take_u64()?;
    let commit_p99_ticks = c.take_u64()?;
    let ntop = c.take_u16()? as usize;
    let mut top_contended = Vec::with_capacity(ntop);
    for _ in 0..ntop {
        top_contended.push(ContendedVar {
            var: c.take_u32()?,
            waits: c.take_u64()?,
            aborts: c.take_u64()?,
        });
    }
    let sheds_pipeline = c.take_u64()?;
    let sheds_queue = c.take_u64()?;
    let sheds_txns = c.take_u64()?;
    let subscribers = c.take_u32()?;
    let sub_dropped = c.take_u64()?;
    let npoints = c.take_u16()? as usize;
    let mut series = Vec::with_capacity(npoints);
    for _ in 0..npoints {
        series.push(SamplePoint {
            at_ms: c.take_u64()?,
            interval_ms: c.take_u64()?,
            commits: c.take_u64()?,
            aborts: c.take_u64()?,
            sheds: c.take_u64()?,
            shed_aborts: c.take_u64()?,
            queue_depth: c.take_u32()?,
            live_txns: c.take_u32()?,
            p99_ticks: c.take_u64()?,
        });
    }
    Some(ServerStats {
        uptime_ms,
        cc,
        num_vars,
        conns,
        live_txns,
        queue_depth,
        draining,
        shards,
        metrics,
        commit_p50_ticks,
        commit_p99_ticks,
        top_contended,
        sheds_pipeline,
        sheds_queue,
        sheds_txns,
        subscribers,
        sub_dropped,
        series,
    })
}

/// Append an encoded health report to `b`.
pub fn put_health(b: &mut Vec<u8>, h: &HealthReport) {
    put_bool(b, h.degraded);
    put_bool(b, h.draining);
    put_u32(b, h.shards);
    put_u32(b, h.shards_down);
}

/// Decode a health report (total).
pub fn take_health(c: &mut Cursor<'_>) -> Option<HealthReport> {
    Some(HealthReport {
        degraded: take_bool(c)?,
        draining: take_bool(c)?,
        shards: c.take_u32()?,
        shards_down: c.take_u32()?,
    })
}

// ---------------------------------------------------------- exposition

fn metric(out: &mut String, name: &str, kind: &str, help: &str, body: &str) {
    out.push_str("# HELP ");
    out.push_str(name);
    out.push(' ');
    out.push_str(help);
    out.push_str("\n# TYPE ");
    out.push_str(name);
    out.push(' ');
    out.push_str(kind);
    out.push('\n');
    out.push_str(body);
}

/// Render the Prometheus text exposition of a snapshot (the `/metrics`
/// body): `# HELP`/`# TYPE` headers, `ccopt_`-prefixed names, labels for
/// the abort-rule and shed-layer breakdowns and per-shard health. No
/// dependencies — the format is lines of `name{labels} value`.
pub fn render_prometheus(s: &ServerStats) -> String {
    let mut out = String::with_capacity(4096);
    let m = &s.metrics;
    metric(
        &mut out,
        "ccopt_uptime_seconds",
        "gauge",
        "Seconds since the server started.",
        &format!("ccopt_uptime_seconds {:.3}\n", s.uptime_ms as f64 / 1e3),
    );
    metric(
        &mut out,
        "ccopt_info",
        "gauge",
        "Server identity (constant 1; labels carry the configuration).",
        &format!(
            "ccopt_info{{cc=\"{}\",shards=\"{}\",vars=\"{}\"}} 1\n",
            s.cc,
            s.shards.len(),
            s.num_vars
        ),
    );
    for (name, help, v) in [
        (
            "ccopt_commits_total",
            "Transactions committed.",
            m.commits as u64,
        ),
        (
            "ccopt_aborts_total",
            "Transaction aborts (each restart re-runs the transaction).",
            m.aborts as u64,
        ),
        (
            "ccopt_waits_total",
            "Steps that had to wait at least once.",
            m.waits as u64,
        ),
        (
            "ccopt_steps_total",
            "Steps executed (including ones later rolled back).",
            m.steps_executed as u64,
        ),
        (
            "ccopt_retires_total",
            "Finished transactions whose slot was recycled.",
            m.retires as u64,
        ),
        (
            "ccopt_wal_records_total",
            "Write-ahead-log records appended.",
            m.wal_records as u64,
        ),
        (
            "ccopt_wal_syncs_total",
            "Write-ahead-log fsyncs issued.",
            m.wal_syncs as u64,
        ),
        (
            "ccopt_wal_bytes_total",
            "Bytes written to the write-ahead log.",
            m.wal_bytes as u64,
        ),
        (
            "ccopt_shard_restarts_total",
            "Crashed shard workers restarted by the supervisor.",
            m.shard_restarts as u64,
        ),
        (
            "ccopt_subscriber_dropped_total",
            "Trace events dropped across all live subscriptions.",
            s.sub_dropped,
        ),
    ] {
        metric(&mut out, name, "counter", help, &format!("{name} {v}\n"));
    }
    let mut rules = String::new();
    for rule in ConflictRule::ALL {
        let n = m.aborts_for(rule);
        if n > 0 {
            rules.push_str(&format!(
                "ccopt_aborts_by_rule_total{{rule=\"{}\"}} {n}\n",
                rule.name()
            ));
        }
    }
    if !rules.is_empty() {
        metric(
            &mut out,
            "ccopt_aborts_by_rule_total",
            "counter",
            "Aborts broken down by the conflict rule that fired.",
            &rules,
        );
    }
    metric(
        &mut out,
        "ccopt_sheds_total",
        "counter",
        "Requests refused by admission control, by layer.",
        &format!(
            "ccopt_sheds_total{{layer=\"pipeline\"}} {}\n\
             ccopt_sheds_total{{layer=\"queue\"}} {}\n\
             ccopt_sheds_total{{layer=\"txn_budget\"}} {}\n\
             ccopt_sheds_total{{layer=\"shard_mailbox\"}} {}\n",
            s.sheds_pipeline, s.sheds_queue, s.sheds_txns, m.shed_aborts
        ),
    );
    for (name, help, v) in [
        (
            "ccopt_connections",
            "Live client connections.",
            s.conns as u64,
        ),
        ("ccopt_live_txns", "Open transactions.", s.live_txns as u64),
        (
            "ccopt_queue_depth",
            "Requests waiting in the engine queue.",
            s.queue_depth as u64,
        ),
        (
            "ccopt_subscribers",
            "Live trace subscribers.",
            s.subscribers as u64,
        ),
        (
            "ccopt_draining",
            "1 while the server drains.",
            s.draining as u64,
        ),
    ] {
        metric(&mut out, name, "gauge", help, &format!("{name} {v}\n"));
    }
    metric(
        &mut out,
        "ccopt_commit_latency_ticks",
        "gauge",
        "Commit latency quantiles in engine ticks (cumulative).",
        &format!(
            "ccopt_commit_latency_ticks{{quantile=\"0.5\"}} {}\n\
             ccopt_commit_latency_ticks{{quantile=\"0.99\"}} {}\n",
            s.commit_p50_ticks, s.commit_p99_ticks
        ),
    );
    let mut up = String::new();
    let mut restarts = String::new();
    for (i, sh) in s.shards.iter().enumerate() {
        let healthy = (sh.alive && !sh.down) as u8;
        up.push_str(&format!("ccopt_shard_up{{shard=\"{i}\"}} {healthy}\n"));
        restarts.push_str(&format!(
            "ccopt_shard_restarts{{shard=\"{i}\"}} {}\n",
            sh.restarts
        ));
    }
    metric(
        &mut out,
        "ccopt_shard_up",
        "gauge",
        "1 while the shard's worker is alive and its storage recoverable.",
        &up,
    );
    metric(
        &mut out,
        "ccopt_shard_restarts",
        "counter",
        "Supervised restarts, by shard.",
        &restarts,
    );
    if !s.top_contended.is_empty() {
        let mut rows = String::new();
        for t in &s.top_contended {
            rows.push_str(&format!(
                "ccopt_contention_total{{var=\"{}\",kind=\"waits\"}} {}\n\
                 ccopt_contention_total{{var=\"{}\",kind=\"aborts\"}} {}\n",
                t.var, t.waits, t.var, t.aborts
            ));
        }
        metric(
            &mut out,
            "ccopt_contention_total",
            "counter",
            "Waits/aborts attributed to the most contended variables.",
            &rows,
        );
    }
    out
}

/// Validate a Prometheus text exposition and return its samples as
/// `(name{labels}, value)` pairs. Strict about what [`render_prometheus`]
/// emits: every non-comment line is `name[{labels}] value` with a finite
/// value, and every sample name is declared by a preceding `# TYPE`.
pub fn parse_prometheus(text: &str) -> Result<Vec<(String, f64)>, String> {
    let mut samples = Vec::new();
    let mut typed: Vec<String> = Vec::new();
    for (no, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {no}: bare # TYPE"))?;
            match parts.next() {
                Some("counter") | Some("gauge") => typed.push(name.to_string()),
                other => return Err(format!("line {no}: bad metric type {other:?}")),
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (key, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {no}: no value: {line:?}"))?;
        let value: f64 = value
            .parse()
            .map_err(|_| format!("line {no}: bad value {value:?}"))?;
        if !value.is_finite() {
            return Err(format!("line {no}: non-finite value"));
        }
        let name = key.split('{').next().unwrap_or(key);
        if !typed.iter().any(|t| t == name) {
            return Err(format!("line {no}: sample {name:?} has no # TYPE"));
        }
        samples.push((key.to_string(), value));
    }
    if samples.is_empty() {
        return Err("no samples".into());
    }
    Ok(samples)
}

/// Fetch one sample's value by its full `name{labels}` key.
pub fn sample(samples: &[(String, f64)], key: &str) -> Option<f64> {
    samples.iter().find(|(k, _)| k == key).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo() -> ServerStats {
        let mut metrics = Metrics {
            steps_executed: 100,
            waits: 4,
            aborts: 7,
            commits: 31,
            shed_aborts: 2,
            ..Metrics::default()
        };
        metrics.aborts_by_rule[ConflictRule::Deadlock.index()] = 3;
        metrics.aborts_by_rule[ConflictRule::Shed.index()] = 2;
        metrics.aborts_by_rule[ConflictRule::Client.index()] = 2;
        ServerStats {
            uptime_ms: 1234,
            cc: "strict-2pl".into(),
            num_vars: 64,
            conns: 3,
            live_txns: 2,
            queue_depth: 5,
            draining: false,
            shards: vec![
                ShardHealth {
                    alive: true,
                    down: false,
                    restarts: 0,
                },
                ShardHealth {
                    alive: true,
                    down: false,
                    restarts: 2,
                },
            ],
            metrics,
            commit_p50_ticks: 3,
            commit_p99_ticks: 15,
            top_contended: vec![ContendedVar {
                var: 9,
                waits: 4,
                aborts: 6,
            }],
            sheds_pipeline: 10,
            sheds_queue: 20,
            sheds_txns: 30,
            subscribers: 1,
            sub_dropped: 17,
            series: vec![SamplePoint {
                at_ms: 1000,
                interval_ms: 1000,
                commits: 31,
                aborts: 7,
                sheds: 60,
                shed_aborts: 2,
                queue_depth: 5,
                live_txns: 2,
                p99_ticks: 15,
            }],
        }
    }

    #[test]
    fn stats_round_trip() {
        let s = demo();
        let mut b = Vec::new();
        put_stats(&mut b, &s);
        let mut c = Cursor::new(&b);
        let back = take_stats(&mut c).unwrap();
        assert!(c.at_end());
        assert_eq!(back, s);
        assert_eq!(back.sheds_total(), 60);
        assert!(!back.degraded());
    }

    #[test]
    fn truncated_stats_decode_to_none() {
        let mut b = Vec::new();
        put_stats(&mut b, &demo());
        for cut in 0..b.len() {
            let mut c = Cursor::new(&b[..cut]);
            assert!(take_stats(&mut c).is_none(), "cut at {cut}");
        }
    }

    #[test]
    fn health_round_trip() {
        let h = HealthReport {
            degraded: true,
            draining: false,
            shards: 4,
            shards_down: 1,
        };
        let mut b = Vec::new();
        put_health(&mut b, &h);
        let mut c = Cursor::new(&b);
        assert_eq!(take_health(&mut c), Some(h));
        assert!(c.at_end());
    }

    #[test]
    fn series_is_clamped_to_the_newest_points() {
        let mut s = demo();
        s.series = (0..MAX_SERIES_POINTS as u64 + 50)
            .map(|i| SamplePoint {
                at_ms: i,
                ..SamplePoint::default()
            })
            .collect();
        let mut b = Vec::new();
        put_stats(&mut b, &s);
        assert!(b.len() < crate::MAX_FRAME as usize);
        let back = take_stats(&mut Cursor::new(&b)).unwrap();
        assert_eq!(back.series.len(), MAX_SERIES_POINTS);
        assert_eq!(back.series.first().unwrap().at_ms, 50);
        assert_eq!(
            back.series.last().unwrap().at_ms,
            MAX_SERIES_POINTS as u64 + 49
        );
    }

    #[test]
    fn exposition_renders_and_parses() {
        let s = demo();
        let text = render_prometheus(&s);
        let samples = parse_prometheus(&text).unwrap();
        assert_eq!(sample(&samples, "ccopt_commits_total"), Some(31.0));
        assert_eq!(
            sample(&samples, "ccopt_aborts_by_rule_total{rule=\"deadlock\"}"),
            Some(3.0)
        );
        assert_eq!(
            sample(&samples, "ccopt_sheds_total{layer=\"queue\"}"),
            Some(20.0)
        );
        assert_eq!(
            sample(&samples, "ccopt_sheds_total{layer=\"shard_mailbox\"}"),
            Some(2.0)
        );
        assert_eq!(sample(&samples, "ccopt_shard_up{shard=\"1\"}"), Some(1.0));
        assert_eq!(
            sample(&samples, "ccopt_commit_latency_ticks{quantile=\"0.99\"}"),
            Some(15.0)
        );
        // The ledger invariant holds in the exposition too.
        let by_rule: f64 = samples
            .iter()
            .filter(|(k, _)| k.starts_with("ccopt_aborts_by_rule_total{"))
            .map(|&(_, v)| v)
            .sum();
        assert_eq!(Some(by_rule), sample(&samples, "ccopt_aborts_total"));
    }

    #[test]
    fn parser_rejects_malformed_expositions() {
        assert!(parse_prometheus("").is_err());
        assert!(parse_prometheus("ccopt_x 1\n").is_err(), "no # TYPE");
        assert!(parse_prometheus("# TYPE ccopt_x histogram\nccopt_x 1\n").is_err());
        assert!(parse_prometheus("# TYPE ccopt_x gauge\nccopt_x abc\n").is_err());
    }
}
