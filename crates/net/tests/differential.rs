//! The served-vs-in-process differential: a single-connection serial
//! client workload must leave **bit-identical** committed state to the
//! equivalent in-process [`SessionDb`] run, for all seven mechanisms.
//!
//! The same deterministic program (seeded transactions of reads, blind
//! writes, and affine updates) runs twice per mechanism — once through a
//! wire [`Client`] against a sharded [`Server`], once directly against a
//! `SessionDb` — and the final committed images are compared value by
//! value. This pins three things at once: the wire codec round-trips
//! values exactly, the server's update semantics are
//! [`affine_eval`](ccopt_engine::affine_eval) and nothing else, and the
//! sharded engine behind the server computes what the unsharded session
//! layer computes.

use ccopt_client::{Client, TxnHandle};
use ccopt_engine::{affine_eval, cc_by_name, Op, SessionDb, MECHANISM_NAMES};
use ccopt_model::ids::VarId;
use ccopt_model::state::GlobalState;
use ccopt_model::value::Value;
use ccopt_net::{Server, ServerConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const VARS: usize = 24;
const TXNS: usize = 40;

#[derive(Clone, Copy, Debug)]
enum ProgOp {
    Read(u32),
    Write(u32, i64),
    Update(u32, i64, i64),
}

/// The deterministic workload: `TXNS` transactions of 1..=6 operations.
fn program(seed: u64) -> Vec<Vec<ProgOp>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..TXNS)
        .map(|_| {
            (0..rng.gen_range(1..=6usize))
                .map(|_| {
                    let var = rng.gen_range(0..VARS as u32);
                    match rng.gen_range(0..3u32) {
                        0 => ProgOp::Read(var),
                        1 => ProgOp::Write(var, rng.gen_range(-1000..1000)),
                        _ => ProgOp::Update(var, rng.gen_range(-5..5), rng.gen_range(-50..50)),
                    }
                })
                .collect()
        })
        .collect()
}

/// Run the workload over the wire; a serial client still honours the
/// full session contract (retry on `Wait`, replay on `Restarted`).
fn run_wire(client: &mut Client, prog: &[Vec<ProgOp>]) {
    for txn in prog {
        let h: TxnHandle = client.begin().expect("begin");
        'attempt: loop {
            for op in txn {
                loop {
                    let r = match *op {
                        ProgOp::Read(v) => client.read(h, v),
                        ProgOp::Write(v, x) => client.write(h, v, Value::Int(x)),
                        ProgOp::Update(v, a, c) => client.update(h, v, a, c),
                    }
                    .expect("operation");
                    match r {
                        Op::Done(_) => break,
                        Op::Wait => continue,
                        Op::Restarted => continue 'attempt,
                    }
                }
            }
            match client.commit(h).expect("commit") {
                Op::Done(()) => break,
                Op::Wait => continue,
                Op::Restarted => continue 'attempt,
            }
        }
    }
}

/// The same workload, in process.
fn run_session(db: &mut SessionDb, prog: &[Vec<ProgOp>]) {
    for txn in prog {
        let h = db.begin();
        'attempt: loop {
            for op in txn {
                loop {
                    let r = match *op {
                        ProgOp::Read(v) => db.read(h, VarId(v)),
                        ProgOp::Write(v, x) => db.write(h, VarId(v), Value::Int(x)),
                        ProgOp::Update(v, a, c) => {
                            db.update(h, VarId(v), move |old| affine_eval(a, c, old))
                        }
                    }
                    .expect("operation");
                    match r {
                        Op::Done(_) => break,
                        Op::Wait => continue,
                        Op::Restarted => continue 'attempt,
                    }
                }
            }
            match db.commit(h).expect("commit") {
                Op::Done(()) => {
                    db.retire(h).expect("retire");
                    break;
                }
                Op::Wait => continue,
                Op::Restarted => continue 'attempt,
            }
        }
    }
}

/// Read the server's committed state back over the wire (a read-only
/// transaction that aborts, leaving no trace).
fn wire_state(client: &mut Client) -> Vec<Value> {
    let h = client.begin().expect("begin reader");
    let mut out = Vec::with_capacity(VARS);
    'attempt: loop {
        out.clear();
        for v in 0..VARS as u32 {
            loop {
                match client.read(h, v).expect("read") {
                    Op::Done(val) => {
                        out.push(val);
                        break;
                    }
                    Op::Wait => continue,
                    Op::Restarted => continue 'attempt,
                }
            }
        }
        break;
    }
    client.abort(h).expect("abort reader");
    out
}

#[test]
fn serial_wire_workload_matches_in_process_session_for_all_mechanisms() {
    for (i, name) in MECHANISM_NAMES.iter().enumerate() {
        let prog = program(0xC0FFEE + i as u64);

        // Over the wire, through a sharded server.
        let server = Server::start(ServerConfig {
            cc: name.to_string(),
            num_vars: VARS,
            shards: 3,
            ..ServerConfig::default()
        })
        .unwrap_or_else(|e| panic!("{name}: server start: {e}"));
        let mut client = Client::connect(server.local_addr()).expect("connect");
        run_wire(&mut client, &prog);
        let served = wire_state(&mut client);
        drop(client);
        let stats = server.shutdown().expect("drain");
        assert_eq!(stats.commits as usize, TXNS, "{name}: every txn committed");

        // In process, unsharded.
        let mut db = SessionDb::with_capacity(
            cc_by_name(name).expect("known mechanism"),
            GlobalState::from_ints(&[0; VARS]),
            4,
        );
        run_session(&mut db, &prog);
        let local = db.committed_globals();

        assert_eq!(
            served, local.0,
            "{name}: served state diverged from the in-process session run"
        );
    }
}
