//! Wire-protocol robustness, mirroring the WAL's `wal_fuzz.rs`:
//! truncation, bit flips, and oversized length prefixes — against the
//! decoders (totality: `Err`, never a panic) and against a **live
//! server** (it answers or closes the abused connection cleanly, and
//! keeps serving well-formed connections afterwards). CI runs a reduced
//! case count (`CI` env var); local runs go deeper.

use ccopt_client::Client;
use ccopt_engine::BatchOp;
use ccopt_model::value::Value;
use ccopt_model::VarId;
use ccopt_net::{
    decode_request, decode_response, encode_request, frame_into, read_frame, FrameError, Request,
    Server, ServerConfig, WireError, MAX_BATCH_OPS, MAX_FRAME,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

fn cases() -> u32 {
    if std::env::var_os("CI").is_some() {
        8
    } else {
        48
    }
}

fn sample_batch(rng: &mut SmallRng) -> Request {
    let ops = (0..rng.gen_range(0..6usize))
        .map(|_| {
            let var = VarId(rng.gen_range(0..128));
            match rng.gen_range(0..3u32) {
                0 => BatchOp::Read(var),
                1 => BatchOp::Write(var, Value::Int(rng.gen_range(-1000..1000))),
                _ => BatchOp::Affine {
                    var,
                    a: rng.gen_range(-9..9),
                    c: rng.gen_range(-9..9),
                },
            }
        })
        .collect();
    Request::Batch {
        txn: rng.gen(),
        ops,
        commit: rng.gen(),
    }
}

fn sample_requests(rng: &mut SmallRng) -> Vec<Request> {
    let mut reqs = vec![
        sample_batch(rng),
        Request::Ping,
        Request::Begin,
        Request::Shutdown,
        Request::Stats,
        Request::Health,
        Request::Subscribe,
        Request::Commit { txn: rng.gen() },
        Request::Abort { txn: rng.gen() },
        Request::Read {
            txn: rng.gen(),
            var: rng.gen_range(0..128),
        },
        Request::Write {
            txn: rng.gen(),
            var: rng.gen_range(0..128),
            value: Value::Int(rng.gen_range(-1000..1000)),
        },
        Request::Update {
            txn: rng.gen(),
            var: rng.gen_range(0..128),
            a: rng.gen_range(-9..9),
            c: rng.gen_range(-9..9),
        },
    ];
    reqs.truncate(rng.gen_range(3..=reqs.len()));
    reqs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases()))]

    /// Decoding arbitrary bytes never panics: every byte soup is either
    /// a valid message or a `WireError`.
    #[test]
    fn decoders_are_total_on_random_bytes(seed in 0u64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let n = rng.gen_range(0..64usize);
            let bytes: Vec<u8> = (0..n).map(|_| rng.gen::<u32>() as u8).collect();
            let _ = decode_request(&bytes);
            let _ = decode_response(&bytes);
        }
    }

    /// Truncating or flipping a valid frame stream never panics the
    /// frame reader, and a flipped frame never decodes silently as a
    /// *different* valid message without the CRC catching it first.
    #[test]
    fn framed_streams_survive_truncation_and_flips(seed in 0u64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut wire = Vec::new();
        for (i, req) in sample_requests(&mut rng).iter().enumerate() {
            frame_into(&mut wire, &encode_request(i as u64, req));
        }
        // Truncation at any byte: reads yield frames then EOF or error.
        for _ in 0..8 {
            let cut = rng.gen_range(0..=wire.len());
            let mut r = &wire[..cut];
            while let Ok(Some(p)) = read_frame(&mut r) {
                let _ = decode_request(&p);
            }
        }
        // A single bit flip: every frame that still validates its CRC
        // must decode to the identical request (the flip either hits a
        // frame, which the CRC rejects, or hits nothing we return).
        for _ in 0..8 {
            let mut bad = wire.clone();
            let at = rng.gen_range(0..bad.len());
            bad[at] ^= 1 << rng.gen_range(0..8u32);
            let mut r = &bad[..];
            while let Ok(Some(p)) = read_frame(&mut r) {
                let _ = decode_request(&p);
            }
        }
    }

    /// The batch opcode's payload decoder is total: truncation at every
    /// byte, and an op-count field rewritten to lie (including counts
    /// past [`MAX_BATCH_OPS`], which must be refused before any
    /// allocation), yield `Err` — never a panic, never a bogus `Ok`
    /// claiming more ops than the payload carries.
    #[test]
    fn batch_payload_decoder_is_total(seed in 0u64..100_000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let req = sample_batch(&mut rng);
        let ops_len = match &req {
            Request::Batch { ops, .. } => ops.len(),
            _ => unreachable!(),
        };
        let payload = encode_request(rng.gen(), &req);
        // Truncation at every byte boundary.
        for cut in 0..payload.len() {
            let _ = decode_request(&payload[..cut]);
        }
        // The count field (opcode + id + txn + commit = byte 18) lies.
        for count in [ops_len as u64 + 1, 999, MAX_BATCH_OPS as u64, MAX_BATCH_OPS as u64 + 1, u16::MAX as u64] {
            let mut bad = payload.clone();
            bad[18..20].copy_from_slice(&(count as u16).to_le_bytes());
            match decode_request(&bad) {
                Ok((_, Request::Batch { ops, .. })) => assert_eq!(
                    ops.len(),
                    count as usize,
                    "a decode that claims success must have read every op"
                ),
                Ok(other) => panic!("count lie decoded as {other:?}"),
                Err(_) => {}
            }
        }
        // Arbitrary trailing garbage after a valid batch payload.
        let mut padded = payload.clone();
        padded.extend((0..rng.gen_range(1..8usize)).map(|_| rng.gen::<u32>() as u8));
        assert!(decode_request(&padded).is_err(), "trailing bytes must be rejected");
    }
}

#[test]
fn oversized_length_prefix_is_refused_before_allocation() {
    for len in [MAX_FRAME + 1, u32::MAX / 2, u32::MAX] {
        let mut wire = Vec::new();
        wire.extend_from_slice(&len.to_le_bytes());
        wire.extend_from_slice(&0u32.to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        match read_frame(&mut &wire[..]) {
            Err(FrameError::Wire(WireError::Oversized { len: got })) => assert_eq!(got, len),
            other => panic!("length {len} not refused: {other:?}"),
        }
    }
}

/// Abuse a live server with garbage, truncated frames, oversized
/// prefixes, and bit-flipped valid traffic. The server must never die:
/// after every abusive connection, a well-formed connection still
/// commits.
#[test]
fn live_server_survives_garbage_connections() {
    let server = Server::start(ServerConfig {
        num_vars: 16,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut rng = SmallRng::seed_from_u64(0xFEED);

    for round in 0..12 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
        match round % 4 {
            0 => {
                // Pure garbage bytes.
                let n = rng.gen_range(1..256usize);
                let junk: Vec<u8> = (0..n).map(|_| rng.gen::<u32>() as u8).collect();
                let _ = s.write_all(&junk);
            }
            1 => {
                // An oversized length prefix.
                let mut wire = Vec::new();
                wire.extend_from_slice(&u32::MAX.to_le_bytes());
                wire.extend_from_slice(&rng.gen::<u32>().to_le_bytes());
                let _ = s.write_all(&wire);
            }
            2 => {
                // A valid frame cut short.
                let mut wire = Vec::new();
                frame_into(&mut wire, &encode_request(1, &Request::Begin));
                let cut = rng.gen_range(1..wire.len());
                let _ = s.write_all(&wire[..cut]);
            }
            _ => {
                // Valid traffic with one flipped bit.
                let mut wire = Vec::new();
                frame_into(&mut wire, &encode_request(1, &Request::Begin));
                frame_into(&mut wire, &encode_request(2, &Request::Ping));
                let at = rng.gen_range(0..wire.len());
                wire[at] ^= 1 << rng.gen_range(0..8u32);
                let _ = s.write_all(&wire);
            }
        }
        drop(s);

        // The server is still alive and serving.
        let mut good = Client::connect(addr).expect("server still accepts");
        good.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let h = good.begin().expect("server still begins");
        assert!(matches!(
            good.write(h, 0, Value::Int(round as i64)).expect("op"),
            ccopt_engine::Op::Done(_)
        ));
        assert!(matches!(
            good.commit(h).expect("commit"),
            ccopt_engine::Op::Done(())
        ));
    }
    let stats = server.shutdown().expect("drain");
    assert!(stats.commits >= 12, "every good connection committed");
}

/// The batch opcode against a live server: truncated batch frames,
/// op counts rewritten past [`MAX_BATCH_OPS`], and **interleaved
/// partial frames** — a connection that dribbles half a batch frame
/// while other connections run real batch traffic. The server answers
/// or closes every abused connection and keeps serving batches.
#[test]
fn live_server_survives_batch_abuse_and_interleaved_partials() {
    let server = Server::start(ServerConfig {
        num_vars: 16,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut rng = SmallRng::seed_from_u64(0x000B_A7C4);

    // A connection that never finishes its frame: send the first half
    // of a valid batch frame and leave the socket open across all the
    // rounds below — the reader must not wedge the engine on it.
    let mut dribble = TcpStream::connect(addr).expect("connect");
    dribble
        .set_write_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    {
        let mut wire = Vec::new();
        frame_into(&mut wire, &encode_request(9, &sample_batch(&mut rng)));
        dribble.write_all(&wire[..wire.len() / 2]).unwrap();
    }

    for round in 0..9 {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
        match round % 3 {
            0 => {
                // A batch frame cut short mid-op.
                let mut wire = Vec::new();
                frame_into(&mut wire, &encode_request(1, &sample_batch(&mut rng)));
                let cut = rng.gen_range(1..wire.len());
                let _ = s.write_all(&wire[..cut]);
            }
            1 => {
                // The op count rewritten to an oversized lie — the CRC
                // is recomputed so only the decoder can refuse it.
                let mut payload = encode_request(2, &sample_batch(&mut rng));
                payload[18..20].copy_from_slice(&((MAX_BATCH_OPS + 1) as u16).to_le_bytes());
                let mut wire = Vec::new();
                frame_into(&mut wire, &payload);
                let _ = s.write_all(&wire);
                // "Answer or close": the id is recoverable, so an
                // answer must come back if the socket stays open.
                s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                if let Ok(Some(p)) = read_frame(&mut s) {
                    let (id, resp) = decode_response(&p).expect("decodes");
                    assert_eq!(id, 2);
                    assert!(matches!(resp, ccopt_net::Response::Err { .. }));
                }
            }
            _ => {
                // Another partial frame, interleaved with the dribbler:
                // a few more bytes trickle onto the long-lived socket
                // too, still never completing its frame.
                let mut wire = Vec::new();
                frame_into(&mut wire, &encode_request(3, &sample_batch(&mut rng)));
                let _ = s.write_all(&wire[..wire.len().min(9)]);
                let _ = dribble.write_all(&[rng.gen::<u32>() as u8]);
            }
        }
        drop(s);

        // Well-formed batch traffic still commits.
        let mut good = Client::connect(addr).expect("server still accepts");
        good.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let h = good.begin().expect("server still begins");
        let (results, commit) = good
            .batch(
                h,
                &[
                    BatchOp::Write(VarId(round as u32), Value::Int(round as i64)),
                    BatchOp::Affine {
                        var: VarId(round as u32),
                        a: 1,
                        c: 1,
                    },
                ],
                true,
            )
            .expect("batch still served");
        assert_eq!(results.len(), 2);
        assert!(matches!(commit, Some(ccopt_engine::Op::Done(()))));
    }
    drop(dribble);
    let stats = server.shutdown().expect("drain");
    assert!(stats.commits >= 9, "every good batch committed");
}

/// The ops opcodes under the same abuse: truncated and bit-flipped
/// `Stats` / `Health` / `Subscribe` frames are answered or the
/// connection closed — never a panic, never a wedged server — and the
/// ops plane still answers a well-formed snapshot afterwards.
#[test]
fn ops_opcodes_survive_truncation_and_flips_against_a_live_server() {
    let server = Server::start(ServerConfig {
        num_vars: 8,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();
    let mut rng = SmallRng::seed_from_u64(0x0B5C_F7A6);

    let ops_reqs = [Request::Stats, Request::Health, Request::Subscribe];
    for round in 0..12 {
        let req = &ops_reqs[round % ops_reqs.len()];
        let mut s = TcpStream::connect(addr).expect("connect");
        s.set_write_timeout(Some(Duration::from_secs(2))).unwrap();
        let mut wire = Vec::new();
        frame_into(&mut wire, &encode_request(1, req));
        if round % 2 == 0 {
            // Cut short mid-frame.
            let cut = rng.gen_range(1..wire.len());
            let _ = s.write_all(&wire[..cut]);
        } else {
            // One flipped bit somewhere in the frame.
            let at = rng.gen_range(0..wire.len());
            wire[at] ^= 1 << rng.gen_range(0..8u32);
            let _ = s.write_all(&wire);
        }
        drop(s);

        // The ops plane still answers a clean snapshot.
        let mut good = Client::connect(addr).expect("server still accepts");
        good.set_timeout(Some(Duration::from_secs(5))).unwrap();
        let stats = good.stats().expect("stats still served");
        assert_eq!(stats.shards.len(), 2);
        good.health().expect("health still served");
    }
    server.shutdown().expect("drain");
}

/// A frame whose *payload* is malformed (good CRC, bad contents) gets an
/// answer — the protocol promise is "answer or close", and with the
/// request id recoverable the server answers.
#[test]
fn malformed_payload_with_recoverable_id_is_answered() {
    let server = Server::start(ServerConfig {
        num_vars: 8,
        shards: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let mut s = TcpStream::connect(server.local_addr()).expect("connect");
    // Opcode 0xEE does not exist; id 77 is recoverable from bytes 1..9.
    let mut payload = vec![0xEE];
    payload.extend_from_slice(&77u64.to_le_bytes());
    let mut wire = Vec::new();
    frame_into(&mut wire, &payload);
    s.write_all(&wire).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let resp = read_frame(&mut s)
        .expect("frame")
        .expect("answered, not closed");
    let (id, resp) = decode_response(&resp).expect("decodes");
    assert_eq!(id, 77);
    assert!(matches!(resp, ccopt_net::Response::Err { .. }));
    server.shutdown().expect("drain");
}
