//! Process-level smoke for the ops plane: a real `ccopt-server` binary
//! started with `--metrics-addr` and `--stats-interval-ms`, scraped over
//! real HTTP, reconciled against client-observed totals, and a live
//! `Subscribe` stream captured to disk (the CI job uploads the capture
//! as an artifact).
//!
//! What must hold:
//! * `/metrics` serves a parseable Prometheus exposition and `/healthz`
//!   answers `200 ok`;
//! * `ccopt_commits_total` in the exposition and `metrics.commits` in a
//!   `Stats` snapshot both equal the commits the client itself counted;
//! * the `--stats-interval-ms` stdout line appears and is
//!   machine-parseable;
//! * the captured `Subscribe` stream is non-empty, schema-valid JSONL.

use ccopt_client::Client;
use ccopt_engine::Op;
use ccopt_net::{parse_prometheus, sample};
use ccopt_trace::validate_jsonl_line;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

const VARS: u32 = 8;
const TXNS: usize = 40;

struct ServerProc {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
    metrics: String,
}

fn spawn_server() -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ccopt-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--cc",
            "strict-2PL",
            "--shards",
            "2",
            "--vars",
            "8",
            "--metrics-addr",
            "127.0.0.1:0",
            "--stats-interval-ms",
            "50",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ccopt-server");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read banner");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .trim()
        .to_string();
    line.clear();
    stdout.read_line(&mut line).expect("read metrics banner");
    let metrics = line
        .strip_prefix("metrics on ")
        .unwrap_or_else(|| panic!("unexpected metrics banner: {line:?}"))
        .trim()
        .to_string();
    ServerProc {
        child,
        stdout,
        addr,
        metrics,
    }
}

fn http_get(addr: &str, path: &str) -> (u32, String) {
    let mut s = TcpStream::connect(addr).expect("connect ops listener");
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: ccopt\r\n\r\n").unwrap();
    let mut raw = String::new();
    let _ = s.read_to_string(&mut raw);
    let status: u32 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .unwrap_or_else(|| panic!("no status line in {raw:?}"));
    let body = raw
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

#[test]
fn served_binary_exposes_a_reconciling_ops_plane() {
    let mut server = spawn_server();

    // A live subscription on its own connection, from before the
    // workload, so the capture sees real transaction lifecycles.
    let mut sub = Client::connect(&server.addr).expect("connect subscriber");
    sub.set_timeout(Some(Duration::from_secs(5))).unwrap();
    sub.subscribe().expect("subscribe");

    // The workload: TXNS committed transactions the client counts.
    let mut client = Client::connect(&server.addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut committed = 0u64;
    for i in 0..TXNS {
        let h = client.begin().expect("begin");
        loop {
            match client
                .update(h, i as u32 % VARS, 1, i as i64)
                .expect("update")
            {
                Op::Done(_) => break,
                _ => continue,
            }
        }
        loop {
            match client.commit(h).expect("commit") {
                Op::Done(()) => {
                    committed += 1;
                    break;
                }
                Op::Wait => continue,
                Op::Restarted => break,
            }
        }
    }
    assert_eq!(committed, TXNS as u64, "serial workload commits everything");

    // Capture the subscription stream to the artifact the CI job
    // uploads; every line must be schema-valid JSONL.
    let dir = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("metrics-smoke");
    std::fs::create_dir_all(&dir).expect("create artifact dir");
    let capture_path = dir.join("subscribe.jsonl");
    let mut capture = std::fs::File::create(&capture_path).expect("create capture");
    let mut captured = 0usize;
    sub.set_timeout(Some(Duration::from_millis(200))).unwrap();
    while let Ok((_, line)) = sub.recv_event() {
        validate_jsonl_line(&line).unwrap_or_else(|e| panic!("invalid event {line:?}: {e}"));
        writeln!(capture, "{line}").expect("write capture");
        captured += 1;
        if captured >= 2000 {
            break;
        }
    }
    assert!(captured > 0, "the subscription captured trace events");

    // Health and exposition over real HTTP.
    let (code, body) = http_get(&server.metrics, "/healthz");
    assert_eq!(code, 200, "healthy: {body}");
    let (code, body) = http_get(&server.metrics, "/metrics");
    assert_eq!(code, 200);
    let samples = parse_prometheus(&body).expect("exposition parses");
    assert_eq!(
        sample(&samples, "ccopt_commits_total"),
        Some(committed as f64),
        "the exposition reconciles with client-observed commits"
    );
    assert_eq!(sample(&samples, "ccopt_shard_up{shard=\"0\"}"), Some(1.0));
    assert_eq!(sample(&samples, "ccopt_shard_up{shard=\"1\"}"), Some(1.0));

    // The wire snapshot reconciles too, and its ledgers balance.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.metrics.commits as u64, committed);
    assert_eq!(
        stats.metrics.aborts_by_rule.iter().sum::<usize>(),
        stats.metrics.aborts
    );
    assert!(stats.subscribers >= 1, "the subscription is visible");
    assert!(
        !stats.series.is_empty(),
        "the sampler populated the time-series"
    );

    // Drain over the wire; the binary's stdout must contain at least one
    // machine-parseable sampler line before the drain summary.
    client.shutdown_server().expect("shutdown request");
    let status = server.child.wait().expect("server exits");
    assert!(status.success(), "clean exit after wire drain");
    let mut rest = String::new();
    server
        .stdout
        .read_to_string(&mut rest)
        .expect("drain output");
    let stats_line = rest
        .lines()
        .find(|l| l.starts_with("stats "))
        .unwrap_or_else(|| panic!("no sampler stats line in {rest:?}"));
    for field in stats_line.trim_start_matches("stats ").split_whitespace() {
        let (k, v) = field
            .split_once('=')
            .unwrap_or_else(|| panic!("unparseable stats field {field:?}"));
        assert!(!k.is_empty());
        v.parse::<u64>()
            .unwrap_or_else(|_| panic!("non-numeric stats value {field:?}"));
    }
    assert!(
        rest.lines().any(|l| l.starts_with("drained: ")),
        "drain summary printed: {rest:?}"
    );
}
