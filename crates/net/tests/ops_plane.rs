//! The ops plane's contract: observation never perturbs.
//!
//! * **Differential invisibility** — the same serial wire workload runs
//!   twice per mechanism, once on a server with the whole ops plane off
//!   (sampler disabled, no HTTP, no subscribers) and once with all of it
//!   on (fast sampler, `/metrics` scrapers, a `Stats`/`Health` poller,
//!   and a live trace subscription) — and every response the workload
//!   client sees, plus the final committed state, must be identical.
//! * **Slow subscribers are isolated** — a subscriber that never reads
//!   stalls nothing; the workload commits at full rate and the
//!   subscription stream itself reports a nonzero dropped count.
//! * **Snapshot ledgers balance** — `aborts_by_rule` sums to `aborts`,
//!   the per-layer shed counters sum to the drain total, and the
//!   subscription stream is schema-valid JSONL.
//! * **`/healthz` tracks shard health** — an injected shard panic flips
//!   it to 503 `degraded` mid-run, and supervised recovery flips it
//!   back.

use ccopt_client::{Client, ClientError};
use ccopt_engine::{Op, MECHANISM_NAMES};
use ccopt_model::value::Value;
use ccopt_net::{parse_prometheus, sample, Server, ServerConfig};
use ccopt_trace::validate_jsonl_line;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const VARS: usize = 24;
const TXNS: usize = 30;

#[derive(Clone, Copy, Debug)]
enum ProgOp {
    Read(u32),
    Write(u32, i64),
    Update(u32, i64, i64),
}

fn program(seed: u64) -> Vec<Vec<ProgOp>> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..TXNS)
        .map(|_| {
            (0..rng.gen_range(1..=5usize))
                .map(|_| {
                    let var = rng.gen_range(0..VARS as u32);
                    match rng.gen_range(0..3u32) {
                        0 => ProgOp::Read(var),
                        1 => ProgOp::Write(var, rng.gen_range(-1000..1000)),
                        _ => ProgOp::Update(var, rng.gen_range(-5..5), rng.gen_range(-50..50)),
                    }
                })
                .collect()
        })
        .collect()
}

/// Run the workload and record **every** response the client observed,
/// in order — the trace the differential compares.
fn run_recorded(client: &mut Client, prog: &[Vec<ProgOp>]) -> Vec<String> {
    let mut log = Vec::new();
    for txn in prog {
        let h = client.begin().expect("begin");
        'attempt: loop {
            for op in txn {
                loop {
                    let r = match *op {
                        ProgOp::Read(v) => client.read(h, v),
                        ProgOp::Write(v, x) => client.write(h, v, Value::Int(x)),
                        ProgOp::Update(v, a, c) => client.update(h, v, a, c),
                    }
                    .expect("operation");
                    log.push(format!("{r:?}"));
                    match r {
                        Op::Done(_) => break,
                        Op::Wait => continue,
                        Op::Restarted => continue 'attempt,
                    }
                }
            }
            let c = client.commit(h).expect("commit");
            log.push(format!("{c:?}"));
            match c {
                Op::Done(()) => break,
                Op::Wait => continue,
                Op::Restarted => continue 'attempt,
            }
        }
    }
    // Final committed state rides at the end of the log.
    let h = client.begin().expect("begin reader");
    for v in 0..VARS as u32 {
        loop {
            match client.read(h, v).expect("read") {
                Op::Done(val) => {
                    log.push(format!("final {v} = {val:?}"));
                    break;
                }
                _ => continue,
            }
        }
    }
    client.abort(h).expect("abort reader");
    log
}

/// Minimal HTTP GET against the ops listener; returns (status, body).
/// Retries transient socket failures (the listener is single-threaded
/// and the test machine is running many servers at once).
fn http_get(addr: SocketAddr, path: &str) -> (u32, String) {
    let mut last = String::new();
    for _ in 0..5 {
        let raw = (|| -> std::io::Result<String> {
            let mut s = TcpStream::connect(addr)?;
            s.set_read_timeout(Some(Duration::from_secs(5)))?;
            write!(s, "GET {path} HTTP/1.1\r\nHost: ccopt\r\n\r\n")?;
            let mut raw = String::new();
            s.read_to_string(&mut raw)?;
            Ok(raw)
        })();
        match raw {
            Ok(raw) if raw.split_whitespace().nth(1).is_some() => {
                let status: u32 = raw
                    .split_whitespace()
                    .nth(1)
                    .and_then(|c| c.parse().ok())
                    .unwrap_or_else(|| panic!("no status line in {raw:?}"));
                let body = raw
                    .split_once("\r\n\r\n")
                    .map(|(_, b)| b.to_string())
                    .unwrap_or_default();
                return (status, body);
            }
            Ok(raw) => last = format!("empty response {raw:?}"),
            Err(e) => last = e.to_string(),
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("GET {path} kept failing: {last}");
}

#[test]
fn ops_plane_is_differentially_invisible_for_all_mechanisms() {
    for (i, name) in MECHANISM_NAMES.iter().enumerate() {
        let prog = program(0x0B5E_7E11 + i as u64);

        // Ops plane fully off: no sampler, no HTTP, no subscribers.
        let off = Server::start(ServerConfig {
            cc: name.to_string(),
            num_vars: VARS,
            shards: 3,
            sample_interval: Duration::ZERO,
            ..ServerConfig::default()
        })
        .unwrap_or_else(|e| panic!("{name}: ops-off start: {e}"));
        let mut client = Client::connect(off.local_addr()).expect("connect");
        let baseline = run_recorded(&mut client, &prog);
        drop(client);
        off.shutdown().expect("drain ops-off");

        // Everything on: fast sampler, HTTP scrapers, a Stats/Health
        // poller, and a live trace subscription draining concurrently.
        let on = Server::start(ServerConfig {
            cc: name.to_string(),
            num_vars: VARS,
            shards: 3,
            sample_interval: Duration::from_millis(5),
            metrics_addr: Some("127.0.0.1:0".to_string()),
            ..ServerConfig::default()
        })
        .unwrap_or_else(|e| panic!("{name}: ops-on start: {e}"));
        let addr = on.local_addr();
        let ops_addr = on.metrics_addr().expect("ops listener bound");
        let stop = Arc::new(AtomicBool::new(false));

        let mut sub = Client::connect(addr).expect("connect subscriber");
        sub.set_timeout(Some(Duration::from_millis(50))).unwrap();
        sub.subscribe().expect("subscribe");
        let sub_thread = {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut lines = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    match sub.recv_event() {
                        Ok((_, line)) => {
                            validate_jsonl_line(&line)
                                .unwrap_or_else(|e| panic!("invalid event {line:?}: {e}"));
                            lines += 1;
                        }
                        Err(ClientError::Io(_)) => {} // poll timeout
                        Err(e) => panic!("subscriber: {e}"),
                    }
                }
                lines
            })
        };
        let poll_thread = {
            let stop = Arc::clone(&stop);
            let name = name.to_string();
            std::thread::spawn(move || {
                let mut poller = Client::connect(addr).expect("connect poller");
                poller.set_timeout(Some(Duration::from_secs(5))).unwrap();
                while !stop.load(Ordering::SeqCst) {
                    let s = poller.stats().expect("stats");
                    assert_eq!(s.cc, name, "snapshot names the serving mechanism");
                    let _ = poller.health().expect("health");
                    let (code, body) = http_get(ops_addr, "/metrics");
                    assert_eq!(code, 200, "/metrics serves");
                    parse_prometheus(&body).expect("exposition parses");
                    std::thread::sleep(Duration::from_millis(3));
                }
            })
        };

        let mut client = Client::connect(addr).expect("connect");
        let observed = run_recorded(&mut client, &prog);
        drop(client);

        stop.store(true, Ordering::SeqCst);
        let events = sub_thread.join().expect("subscriber thread");
        poll_thread.join().expect("poller thread");
        assert!(events > 0, "{name}: the subscription streamed events");
        on.shutdown().expect("drain ops-on");

        assert_eq!(
            baseline, observed,
            "{name}: ops plane perturbed the workload's responses"
        );
    }
}

#[test]
fn slow_subscriber_never_stalls_the_workload_and_reports_drops() {
    // A tiny subscriber ring makes overflow certain; the subscriber
    // never reads while the workload runs.
    let server = Server::start(ServerConfig {
        num_vars: VARS,
        shards: 2,
        subscriber_ring: 4,
        sample_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let mut sub = Client::connect(addr).expect("connect subscriber");
    sub.subscribe().expect("subscribe");
    // ... and now it goes silent: no reads until the workload is done.

    let mut client = Client::connect(addr).expect("connect workload");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    let started = Instant::now();
    for i in 0..200u32 {
        let h = client.begin().expect("begin");
        loop {
            match client.update(h, i % VARS as u32, 1, 1).expect("update") {
                Op::Done(_) => break,
                _ => continue,
            }
        }
        loop {
            match client.commit(h).expect("commit") {
                Op::Done(()) => break,
                Op::Wait => continue,
                Op::Restarted => break, // serial: cannot happen
            }
        }
    }
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "the workload ran at full rate despite the dead subscriber"
    );

    // The engine's view: the subscription dropped events rather than
    // slowing anything down.
    let stats = client.stats().expect("stats");
    assert_eq!(stats.subscribers, 1, "the subscription is live");
    assert!(
        stats.sub_dropped > 0,
        "a never-reading subscriber must overflow its bounded ring"
    );

    // The in-stream view: once the subscriber finally reads, the
    // running dropped count rides along in the events themselves.
    sub.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut saw_drop = 0u64;
    for _ in 0..512 {
        match sub.recv_event() {
            Ok((dropped, line)) => {
                validate_jsonl_line(&line).expect("schema-valid event");
                saw_drop = saw_drop.max(dropped);
                if saw_drop > 0 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    assert!(
        saw_drop > 0,
        "the dropped count is reported in-stream, not just in Stats"
    );
    server.shutdown().expect("drain");
}

#[test]
fn stats_snapshot_ledgers_balance() {
    // max_txns 1 forces deterministic txn-budget sheds; the sampler is
    // on so the series fills.
    let server = Server::start(ServerConfig {
        num_vars: 8,
        shards: 2,
        max_txns: 1,
        sample_interval: Duration::from_millis(5),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.local_addr();

    let mut a = Client::connect(addr).expect("connect a");
    let mut b = Client::connect(addr).expect("connect b");
    a.set_timeout(Some(Duration::from_secs(5))).unwrap();
    b.set_timeout(Some(Duration::from_secs(5))).unwrap();

    let mut txn_sheds = 0u64;
    for i in 0..20i64 {
        let h = a.begin().expect("budget free");
        // The budget is exhausted: b's begin must shed at the txn layer.
        match b.begin() {
            Err(ClientError::Shed) => txn_sheds += 1,
            other => panic!("expected a txn-budget shed, got {other:?}"),
        }
        assert!(matches!(
            a.write(h, (i % 8) as u32, Value::Int(i)).expect("write"),
            Op::Done(_)
        ));
        assert!(matches!(a.commit(h).expect("commit"), Op::Done(())));
    }
    // Explicit aborts exercise the abort ledger too.
    for _ in 0..5 {
        let h = a.begin().expect("begin");
        a.abort(h).expect("abort");
    }
    std::thread::sleep(Duration::from_millis(30)); // let the sampler tick

    let stats = a.stats().expect("stats");
    assert!(stats.uptime_ms > 0);
    assert_eq!(stats.shards.len(), 2);
    assert_eq!(stats.cc, "strict-2PL");
    assert_eq!(stats.metrics.commits, 20);
    assert_eq!(
        stats.metrics.aborts_by_rule.iter().sum::<usize>(),
        stats.metrics.aborts,
        "every abort is attributed to exactly one rule"
    );
    assert_eq!(
        stats.sheds_txns, txn_sheds,
        "txn-budget sheds land in their own layer"
    );
    assert_eq!(stats.sheds_pipeline, 0);
    assert_eq!(stats.sheds_queue, 0);
    assert_eq!(
        stats.sheds_total(),
        stats.sheds_pipeline + stats.sheds_queue + stats.sheds_txns
    );
    assert!(!stats.series.is_empty(), "the sampler filled the series");
    let series_commits: u64 = stats.series.iter().map(|p| p.commits).sum();
    assert!(
        series_commits <= stats.metrics.commits as u64,
        "window deltas never exceed the cumulative counter"
    );

    drop(a);
    drop(b);
    let drained = server.shutdown().expect("drain");
    assert_eq!(drained.sheds_txns, txn_sheds);
    assert_eq!(
        drained.sheds(),
        drained.sheds_pipeline + drained.sheds_queue + drained.sheds_txns
    );
}

#[test]
fn healthz_flips_degraded_on_shard_panic_and_recovers() {
    let server = Server::start(ServerConfig {
        num_vars: 8,
        shards: 2,
        metrics_addr: Some("127.0.0.1:0".to_string()),
        sample_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let ops_addr = server.metrics_addr().expect("ops listener bound");

    // Healthy at rest, and the exposition agrees.
    let wait_status = |want: u32, what: &str| {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let (code, body) = http_get(ops_addr, "/healthz");
            if code == want {
                return body;
            }
            assert!(
                Instant::now() < deadline,
                "{what}: stuck at {code} ({body})"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    wait_status(200, "initially healthy");
    let (code, body) = http_get(ops_addr, "/metrics");
    assert_eq!(code, 200);
    let samples = parse_prometheus(&body).expect("exposition parses");
    assert_eq!(sample(&samples, "ccopt_shard_up{shard=\"0\"}"), Some(1.0));

    // Kill shard 0 mid-run: /healthz goes degraded within the engine's
    // loop latency, no scrape or sample interval required.
    server.panic_shard(0);
    let body = wait_status(503, "after shard panic");
    assert!(body.contains("degraded"), "reason is named: {body}");

    // The next transactions touching the dead shard trigger supervised
    // recovery; /healthz flips back on its own.
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.set_timeout(Some(Duration::from_secs(5))).unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let healthy = {
            let (code, _) = http_get(ops_addr, "/healthz");
            code == 200
        };
        if healthy {
            break;
        }
        assert!(Instant::now() < deadline, "shard never recovered");
        // Touch every variable so the dead shard is supervised.
        if let Ok(h) = client.begin() {
            for v in 0..8u32 {
                if client.read(h, v).is_err() {
                    break;
                }
            }
            let _ = client.abort(h);
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    // Recovery is visible in the snapshot too: a restart was counted.
    let stats = client.stats().expect("stats");
    assert!(
        stats.shards.iter().map(|s| s.restarts).sum::<u64>() >= 1,
        "the supervised restart shows up in per-shard stats"
    );
    assert_eq!(
        stats.shards.iter().map(|s| s.restarts).sum::<u64>(),
        stats.metrics.shard_restarts as u64,
        "per-shard restarts sum to the engine's total"
    );
    server.shutdown().expect("drain");
}
