//! Process-level smoke for the `ccopt-server` binary: a multi-connection
//! workload against a strict-durability server, a SIGKILL mid-life, a
//! recovery on the same data directory that must show **exactly** the
//! acknowledged commits, and finally a graceful wire-initiated drain
//! whose committed state round-trips through one more reopen.
//!
//! This is the served analogue of the engine's crash-recovery tests: the
//! crash is a real process kill, not a dropped struct, so it also covers
//! the binary's stdout contract (`listening on <addr>`) that operators
//! and CI scrape.

use ccopt_client::{Client, ClientError, TxnHandle};
use ccopt_durability::scratch_path;
use ccopt_engine::{BatchOp, Op};
use ccopt_model::value::Value;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

const VARS: u32 = 8;
const WRITERS: usize = 3;
const TXNS_PER_WRITER: usize = 25;

struct ServerProc {
    child: Child,
    stdout: BufReader<ChildStdout>,
    addr: String,
}

fn spawn_server(dir: &Path) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ccopt-server"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--cc",
            "strict-2PL",
            "--shards",
            "2",
            "--vars",
            "8",
            "--durability",
            "strict",
            "--data-dir",
        ])
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn ccopt-server");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut line = String::new();
    stdout.read_line(&mut line).expect("read banner");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {line:?}"))
        .trim()
        .to_string();
    ServerProc {
        child,
        stdout,
        addr,
    }
}

fn connect(addr: &str) -> Client {
    let mut c = Client::connect(addr).expect("connect");
    c.set_timeout(Some(Duration::from_secs(10))).unwrap();
    c
}

/// Begin, retrying on admission shed with a small backoff.
fn begin_retrying(c: &mut Client) -> TxnHandle {
    loop {
        match c.begin() {
            Ok(h) => return h,
            Err(ClientError::Shed) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => panic!("begin: {e}"),
        }
    }
}

/// Commit one increment of `var_a` and `var_b` (a cross-shard txn),
/// replaying on `Restarted` until the commit is acknowledged.
fn transfer(c: &mut Client, var_a: u32, var_b: u32) {
    let h = begin_retrying(c);
    'attempt: loop {
        for var in [var_a, var_b] {
            loop {
                match c.update(h, var, 1, 1).expect("update") {
                    Op::Done(_) => break,
                    Op::Wait => std::thread::sleep(Duration::from_millis(1)),
                    Op::Restarted => continue 'attempt,
                }
            }
        }
        match c.commit(h).expect("commit") {
            Op::Done(()) => return,
            Op::Wait => std::thread::sleep(Duration::from_millis(1)),
            Op::Restarted => continue 'attempt,
        }
    }
}

/// Read the full committed image through a read-only transaction.
fn snapshot(c: &mut Client) -> Vec<i64> {
    let h = begin_retrying(c);
    let mut out = Vec::new();
    'attempt: loop {
        out.clear();
        for var in 0..VARS {
            loop {
                match c.read(h, var).expect("read") {
                    Op::Done(v) => {
                        out.push(v.as_int().expect("int var"));
                        break;
                    }
                    Op::Wait => std::thread::sleep(Duration::from_millis(1)),
                    Op::Restarted => continue 'attempt,
                }
            }
        }
        break;
    }
    c.abort(h).expect("abort reader");
    out
}

#[test]
fn binary_survives_kill_and_drains_clean() {
    let dir = scratch_path("served-smoke");

    // ----- life 1: concurrent writers, then SIGKILL -------------------
    let server = spawn_server(&dir);
    let addr = server.addr.clone();
    let handles: Vec<_> = (0..WRITERS as u32)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = connect(&addr);
                for _ in 0..TXNS_PER_WRITER {
                    // Vars t and 4+t live on different halves of the
                    // keyspace, so each txn crosses shards.
                    transfer(&mut c, t, 4 + t);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }

    // Every commit above was acknowledged under strict durability, so
    // the image after a hard kill is exact, not just bounded.
    let mut expect = vec![0i64; VARS as usize];
    for t in 0..WRITERS {
        expect[t] = TXNS_PER_WRITER as i64;
        expect[4 + t] = TXNS_PER_WRITER as i64;
    }
    let mut server = server;
    server.child.kill().expect("SIGKILL");
    server.child.wait().expect("reap");

    // ----- life 2: recover, verify, write more, drain gracefully ------
    let mut server = spawn_server(&dir);
    let mut c = connect(&server.addr);
    assert_eq!(
        snapshot(&mut c),
        expect,
        "recovered image must equal the acknowledged commits"
    );
    transfer(&mut c, 0, 7); // the server keeps accepting writes post-recovery
    expect[0] += 1;
    expect[7] += 1;

    c.shutdown_server().expect("wire shutdown accepted");
    // New transactions are refused while draining (the server may finish
    // closing first, which surfaces as an I/O error — both are clean).
    match c.begin() {
        Err(ClientError::Draining) | Err(ClientError::Io(_)) => {}
        other => panic!("begin during drain: {other:?}"),
    }
    let status = server.child.wait().expect("reap");
    assert!(status.success(), "drained server exits 0, got {status:?}");
    let mut tail = String::new();
    std::io::Read::read_to_string(&mut server.stdout, &mut tail).expect("drain stats");
    assert!(
        tail.contains("drained: commits="),
        "binary reports drain stats, got {tail:?}"
    );

    // ----- life 3: the drained image reopens exactly ------------------
    let mut server = spawn_server(&dir);
    let mut c = connect(&server.addr);
    assert_eq!(snapshot(&mut c), expect, "drained image reopens exactly");
    let h = begin_retrying(&mut c);
    assert!(c.write(h, 3, Value::Int(0)).is_ok());
    c.shutdown_server().expect("second drain");
    assert!(server.child.wait().expect("reap").success());

    std::fs::remove_dir_all(&dir).ok();
}

/// One canary transaction through the wire **batch** path: both vars
/// written to the same `seq` in a single `Batch{..., commit: true}`
/// frame, replayed under the partial-batch contract (trailing `Wait` =
/// resume from that op, trailing `Restarted` = replay the program)
/// until the commit is acknowledged. Returns `false` when the socket
/// dies instead — the expected end once the server is SIGKILLed.
fn batch_canary(c: &mut Client, h: TxnHandle, var_a: u32, var_b: u32, seq: i64) -> bool {
    let program = [
        BatchOp::Write(ccopt_model::VarId(var_a), Value::Int(seq)),
        BatchOp::Write(ccopt_model::VarId(var_b), Value::Int(seq)),
    ];
    let mut cursor = 0usize;
    loop {
        let (results, commit) = match c.batch(h, &program[cursor..], true) {
            Ok(r) => r,
            Err(ClientError::Shed) => {
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            Err(_) => return false,
        };
        match results.last() {
            Some(Op::Restarted) => {
                cursor = 0;
                continue;
            }
            Some(Op::Wait) => {
                cursor += results.len() - 1;
                std::thread::sleep(Duration::from_millis(1));
                continue;
            }
            _ => cursor += results.len(),
        }
        debug_assert_eq!(cursor, program.len());
        match commit {
            Some(Op::Done(())) => return true,
            Some(Op::Wait) => {
                // Resubmit the (now empty) remainder until the commit
                // stops waiting.
                std::thread::sleep(Duration::from_millis(1));
            }
            Some(Op::Restarted) | None => cursor = 0,
        }
    }
}

/// The mid-batch crash: writers stream multi-var canary transactions
/// through the wire batch opcode while the server takes a SIGKILL, and
/// the recovered image must show **per-transaction** atomicity — every
/// canary pair equal (no torn transaction, even though both writes and
/// the commit shared one frame) and at least every *acknowledged*
/// sequence present — never "whatever prefix of the batch got applied".
#[test]
fn kill_mid_batch_preserves_per_transaction_atomicity() {
    let dir = scratch_path("served-batch-kill");
    let mut server = spawn_server(&dir);
    let addr = server.addr.clone();

    // Writer t owns the cross-shard canary pair (t, 4+t) and bumps it
    // with consecutive seq values until the server disappears.
    let handles: Vec<_> = (0..WRITERS as u32)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = connect(&addr);
                let mut acked = 0i64;
                for seq in 1.. {
                    let h = match c.begin() {
                        Ok(h) => h,
                        Err(ClientError::Shed) => {
                            std::thread::sleep(Duration::from_millis(2));
                            continue;
                        }
                        Err(_) => break,
                    };
                    if !batch_canary(&mut c, h, t, 4 + t, seq) {
                        break;
                    }
                    acked = seq;
                }
                (t as usize, acked)
            })
        })
        .collect();

    // Let the writers get deep into their stream, then pull the plug
    // mid-flight: some batch frames will be in the engine, some on the
    // wire, some half-committed.
    std::thread::sleep(Duration::from_millis(400));
    server.child.kill().expect("SIGKILL");
    server.child.wait().expect("reap");
    let acked: Vec<(usize, i64)> = handles
        .into_iter()
        .map(|h| h.join().expect("writer thread"))
        .collect();
    assert!(
        acked.iter().any(|&(_, n)| n > 0),
        "at least one canary must be acknowledged before the kill for \
         the recovery assertion to mean anything: {acked:?}"
    );

    // Recover and check the canaries. Strict durability acknowledged
    // exactly `acked[t]`; a commit that was in flight at the kill may
    // also have landed — but only as a whole transaction.
    let mut server = spawn_server(&dir);
    let mut c = connect(&server.addr);
    let image = snapshot(&mut c);
    for &(t, n) in &acked {
        let (a, b) = (image[t], image[t + 4]);
        assert_eq!(
            a, b,
            "writer {t}: canary pair torn ({a} vs {b}) — atomicity must \
             be per-transaction, never per-batch-prefix"
        );
        assert!(
            a >= n,
            "writer {t}: acknowledged seq {n} missing after recovery (found {a})"
        );
        assert!(
            a <= n + 1,
            "writer {t}: recovered seq {a} was never submitted (acked {n})"
        );
    }

    // The recovered server still takes batches, and drains clean.
    let h = begin_retrying(&mut c);
    assert!(batch_canary(&mut c, h, 0, 7, 1_000), "post-recovery batch");
    c.shutdown_server().expect("drain");
    assert!(server.child.wait().expect("reap").success());

    std::fs::remove_dir_all(&dir).ok();
}
