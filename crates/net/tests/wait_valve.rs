//! The distributed-deadlock valve: two wire clients in a cross-shard
//! lock cycle must both finish, because the server force-restarts a
//! transaction after `wait_valve` consecutive `Wait` answers.
//!
//! Shard-local deadlock detection cannot see this cycle — client A
//! holds the lock on shard 0's variable and waits for shard 1's, client
//! B the reverse — so without the server-side valve both naive
//! retry-loop clients would exchange `Wait` responses forever. The test
//! is the hang: it only passes because somebody's attempt comes back
//! `Restarted`.

use ccopt_client::Client;
use ccopt_engine::Op;
use ccopt_model::value::Value;
use ccopt_net::{Server, ServerConfig};
use std::sync::Barrier;
use std::time::Duration;

/// With two shards, variable 0 hashes to shard 0 and variable 1 to
/// shard 1 (Fibonacci-hash partition) — the two sides of the cycle.
const FIRST: [u32; 2] = [0, 1];

fn increment_both(client: &mut Client, first: u32, rendezvous: &Barrier) {
    let second = 1 - first;
    let h = client.begin().expect("begin");
    let mut met = false;
    'attempt: loop {
        for var in [first, second] {
            loop {
                match client.update(h, var, 1, 1).expect("update") {
                    Op::Done(_) => break,
                    Op::Wait => std::thread::sleep(Duration::from_micros(300)),
                    Op::Restarted => {
                        std::thread::sleep(Duration::from_micros(700 * (1 + first as u64)));
                        continue 'attempt;
                    }
                }
            }
            // Both sides hold their first lock before either asks for
            // its second: the deadlock is guaranteed, not racy. Only
            // the first attempt synchronises; replays run free.
            if var == first && !met {
                met = true;
                rendezvous.wait();
            }
        }
        loop {
            match client.commit(h).expect("commit") {
                Op::Done(()) => return,
                Op::Wait => std::thread::sleep(Duration::from_micros(300)),
                Op::Restarted => {
                    std::thread::sleep(Duration::from_micros(700 * (1 + first as u64)));
                    continue 'attempt;
                }
            }
        }
    }
}

#[test]
fn cross_shard_deadlock_is_broken_by_the_wait_valve() {
    let server = Server::start(ServerConfig {
        cc: "strict-2PL".to_string(),
        num_vars: 2,
        shards: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    let addr = server.local_addr();

    let rendezvous = Barrier::new(2);
    std::thread::scope(|s| {
        for first in FIRST {
            let rendezvous = &rendezvous;
            s.spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                increment_both(&mut c, first, rendezvous);
            });
        }
    });

    // Both committed and both incremented both variables.
    let mut c = Client::connect(addr).expect("connect");
    let h = c.begin().expect("begin");
    for var in FIRST {
        match c.read(h, var).expect("read") {
            Op::Done(v) => assert_eq!(v, Value::Int(2), "variable {var}"),
            other => panic!("snapshot read of {var} returned {other:?}"),
        }
    }
    c.abort(h).expect("abort");

    let stats = server.shutdown().expect("drain");
    assert_eq!(stats.commits, 2);
}
