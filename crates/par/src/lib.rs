//! # `ccopt-par` — minimal deterministic fork-join parallelism
//!
//! A rayon stand-in built on `std::thread::scope` (the build environment
//! has no network access to crates.io, so rayon itself is unavailable).
//! The one primitive the workspace needs is a parallel, order-preserving
//! map: results land at the index of their input, so a parallel map
//! followed by an in-order reduction is bit-identical to the sequential
//! loop whenever the per-item work is itself deterministic — which the
//! simulator guarantees by deriving an independent RNG stream per item.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads `par_map` uses: the machine's available
/// parallelism, overridable with `CCOPT_THREADS` (useful to force
/// `CCOPT_THREADS=1` when profiling).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("CCOPT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `0..n` in parallel, returning results in index order.
///
/// Work is distributed by an atomic cursor, so threads self-balance over
/// uneven items; output order is by index regardless of completion order.
/// With one thread (or `n <= 1`) this degrades to the plain sequential
/// loop — there is no other code path to diverge from.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        // Hand each worker a disjoint view of the slots via raw parts —
        // disjointness is guaranteed by the atomic cursor handing out each
        // index exactly once.
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let cursor = &cursor;
        for _ in 0..threads {
            // SendPtr is Copy, so each move closure gets its own copy; the
            // .get() method call makes the closure capture the whole
            // wrapper rather than its raw-pointer field (2021 disjoint
            // capture), keeping the Send impl in effect.
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                // SAFETY: index i is handed out exactly once across all
                // workers, so this write is the only access to slot i
                // while the scope is alive; the Vec outlives the scope.
                unsafe { *slots_ptr.get().add(i) = Some(out) };
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index was produced"))
        .collect()
}

/// Map `f` over a slice in parallel, preserving input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}
// SAFETY: the pointer is only dereferenced at indices handed out uniquely
// by the atomic cursor, inside the scope that owns the allocation.
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_matches_sequential() {
        let seq: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        let par = par_map_indexed(257, |i| (i as u64).wrapping_mul(0x9E37));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn uneven_work_self_balances() {
        let out = par_map_indexed(64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
