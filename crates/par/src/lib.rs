//! # `ccopt-par` — minimal deterministic parallelism primitives
//!
//! A rayon stand-in built on the standard library (the build environment
//! has no network access to crates.io, so rayon itself is unavailable).
//! Two primitives cover the workspace:
//!
//! * [`par_map`] / [`par_map_indexed`] — fork-join: a parallel,
//!   order-preserving map over `std::thread::scope`. Results land at the
//!   index of their input, so a parallel map followed by an in-order
//!   reduction is bit-identical to the sequential loop whenever the
//!   per-item work is itself deterministic — which the simulator
//!   guarantees by deriving an independent RNG stream per item.
//! * [`Worker`] — a persistent actor: one OS thread owning a piece of
//!   state, driven through a mailbox of `FnOnce(&mut T)` jobs. Jobs from
//!   one sender run in send order; [`Worker::submit`] returns a [`Reply`]
//!   so a coordinator can fan a batch out to several workers and then
//!   collect, which is how the engine's sharded database drives one
//!   worker per shard (`ccopt-engine::shard`).

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Number of worker threads `par_map` uses: the machine's available
/// parallelism, overridable with `CCOPT_THREADS` (useful to force
/// `CCOPT_THREADS=1` when profiling).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("CCOPT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `0..n` in parallel, returning results in index order.
///
/// Work is distributed by an atomic cursor, so threads self-balance over
/// uneven items; output order is by index regardless of completion order.
/// With one thread (or `n <= 1`) this degrades to the plain sequential
/// loop — there is no other code path to diverge from.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        // Hand each worker a disjoint view of the slots via raw parts —
        // disjointness is guaranteed by the atomic cursor handing out each
        // index exactly once.
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let cursor = &cursor;
        for _ in 0..threads {
            // SendPtr is Copy, so each move closure gets its own copy; the
            // .get() method call makes the closure capture the whole
            // wrapper rather than its raw-pointer field (2021 disjoint
            // capture), keeping the Send impl in effect.
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                // SAFETY: index i is handed out exactly once across all
                // workers, so this write is the only access to slot i
                // while the scope is alive; the Vec outlives the scope.
                unsafe { *slots_ptr.get().add(i) = Some(out) };
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index was produced"))
        .collect()
}

/// Map `f` over a slice in parallel, preserving input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

// ------------------------------------------------------------------ worker

/// A boxed job for a [`Worker`]'s mailbox.
type Job<T> = Box<dyn FnOnce(&mut T) + Send>;

/// The pending answer of a [`Worker::submit`] call. Dropping it without
/// [`wait`](Reply::wait)ing discards the result (the job still runs).
pub struct Reply<R> {
    rx: Receiver<R>,
}

impl<R> Reply<R> {
    /// Block until the worker has run the job and return its result.
    ///
    /// # Panics
    /// Panics when the worker died (a previous job panicked) before
    /// producing the result.
    pub fn wait(self) -> R {
        self.rx.recv().expect("worker completed the job")
    }
}

/// A persistent worker thread owning a piece of state `T`, driven through
/// a FIFO mailbox of closures.
///
/// Jobs submitted from the owning coordinator run strictly in submission
/// order, each with exclusive `&mut T` access — the actor pattern: state
/// is owned, never shared, so `T` needs no internal synchronization.
/// Dropping the worker closes the mailbox, drains the remaining jobs,
/// drops `T` *on the worker thread*, and joins — so resources owned by
/// `T` (files, logs) are fully released when `drop` returns.
pub struct Worker<T> {
    tx: Option<Sender<Job<T>>>,
    handle: Option<JoinHandle<()>>,
}

impl<T: Send + 'static> Worker<T> {
    /// Move `state` onto a fresh worker thread and open its mailbox.
    pub fn spawn(state: T) -> Worker<T> {
        let (tx, rx) = channel::<Job<T>>();
        let handle = std::thread::spawn(move || {
            let mut state = state;
            while let Ok(job) = rx.recv() {
                job(&mut state);
            }
        });
        Worker {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Enqueue `f` and return a [`Reply`] for its result. Use this to fan
    /// a batch of jobs out to several workers before collecting any of
    /// the answers — the workers run concurrently.
    ///
    /// # Panics
    /// Panics when the worker thread is gone (a previous job panicked).
    pub fn submit<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> Reply<R> {
        let (rtx, rrx) = channel();
        self.tx
            .as_ref()
            .expect("worker mailbox open until drop")
            .send(Box::new(move |state: &mut T| {
                let _ = rtx.send(f(state));
            }))
            .expect("worker thread alive");
        Reply { rx: rrx }
    }

    /// Run `f` on the worker and block for its result (a synchronous
    /// round-trip through the mailbox).
    pub fn call<R: Send + 'static>(&self, f: impl FnOnce(&mut T) -> R + Send + 'static) -> R {
        self.submit(f).wait()
    }
}

impl<T> Drop for Worker<T> {
    fn drop(&mut self) {
        // Closing the channel ends the worker loop; the join guarantees
        // the state (and everything it owns) is dropped before we return.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}
// SAFETY: the pointer is only dereferenced at indices handed out uniquely
// by the atomic cursor, inside the scope that owns the allocation.
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_matches_sequential() {
        let seq: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        let par = par_map_indexed(257, |i| (i as u64).wrapping_mul(0x9E37));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn worker_runs_jobs_in_order_with_exclusive_state() {
        let w = Worker::spawn(Vec::<u32>::new());
        for i in 0..100 {
            w.call(move |v| v.push(i));
        }
        let out = w.call(|v| v.clone());
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn workers_fan_out_and_collect() {
        let workers: Vec<Worker<u64>> = (0..4).map(Worker::spawn).collect();
        let replies: Vec<Reply<u64>> = workers
            .iter()
            .map(|w| w.submit(|s| std::mem::replace(s, *s * 10)))
            .collect();
        let got: Vec<u64> = replies.into_iter().map(Reply::wait).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let after: Vec<u64> = workers.iter().map(|w| w.call(|s| *s)).collect();
        assert_eq!(after, vec![0, 10, 20, 30]);
    }

    #[test]
    fn drop_joins_and_releases_state() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        struct Flagged(Arc<AtomicBool>);
        impl Drop for Flagged {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let flag = Arc::new(AtomicBool::new(false));
        let w = Worker::spawn(Flagged(flag.clone()));
        w.call(|_| ());
        drop(w);
        assert!(flag.load(Ordering::SeqCst), "state must drop before join");
    }

    #[test]
    fn uneven_work_self_balances() {
        let out = par_map_indexed(64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }
}
