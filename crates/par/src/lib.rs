//! # `ccopt-par` — minimal deterministic parallelism primitives
//!
//! A rayon stand-in built on the standard library (the build environment
//! has no network access to crates.io, so rayon itself is unavailable).
//! Two primitives cover the workspace:
//!
//! * [`par_map`] / [`par_map_indexed`] — fork-join: a parallel,
//!   order-preserving map over `std::thread::scope`. Results land at the
//!   index of their input, so a parallel map followed by an in-order
//!   reduction is bit-identical to the sequential loop whenever the
//!   per-item work is itself deterministic — which the simulator
//!   guarantees by deriving an independent RNG stream per item.
//! * [`Worker`] — a persistent actor: one OS thread owning a piece of
//!   state, driven through a mailbox of `FnOnce(&mut T)` jobs. Jobs from
//!   one sender run in send order; [`Worker::submit`] returns a [`Reply`]
//!   so a coordinator can fan a batch out to several workers and then
//!   collect, which is how the engine's sharded database drives one
//!   worker per shard (`ccopt-engine::shard`).
//!
//! ## Fault containment
//!
//! A worker is a *fault domain*: each job runs under
//! [`std::panic::catch_unwind`], so a panicking job kills
//! only its own worker, never the process. The state is dropped on the
//! worker thread at the point of death — for a shard database this closes
//! its write-ahead log *without* a final flush, which is exactly crash
//! semantics: recovery replays the durable prefix. After death every
//! interaction returns [`WorkerError`] instead of panicking, and queued
//! jobs that will never run resolve their [`Reply`]s as errors, so a
//! supervisor can detect the crash, fail the in-flight work, and respawn.
//!
//! The mailbox is optionally bounded ([`Worker::set_capacity`]):
//! [`Worker::try_submit`] refuses with [`SubmitError::Full`] instead of
//! queueing unboundedly, giving the layer above a backpressure signal to
//! shed load.

use std::num::NonZeroUsize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Number of worker threads `par_map` uses: the machine's available
/// parallelism, overridable with `CCOPT_THREADS` (useful to force
/// `CCOPT_THREADS=1` when profiling).
pub fn num_threads() -> usize {
    if let Ok(v) = std::env::var("CCOPT_THREADS") {
        if let Ok(n) = v.parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Map `f` over `0..n` in parallel, returning results in index order.
///
/// Work is distributed by an atomic cursor, so threads self-balance over
/// uneven items; output order is by index regardless of completion order.
/// With one thread (or `n <= 1`) this degrades to the plain sequential
/// loop — there is no other code path to diverge from.
pub fn par_map_indexed<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return (0..n).map(f).collect();
    }

    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let cursor = AtomicUsize::new(0);
    let f = &f;

    std::thread::scope(|scope| {
        // Hand each worker a disjoint view of the slots via raw parts —
        // disjointness is guaranteed by the atomic cursor handing out each
        // index exactly once.
        let slots_ptr = SendPtr(slots.as_mut_ptr());
        let cursor = &cursor;
        for _ in 0..threads {
            // SendPtr is Copy, so each move closure gets its own copy; the
            // .get() method call makes the closure capture the whole
            // wrapper rather than its raw-pointer field (2021 disjoint
            // capture), keeping the Send impl in effect.
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let out = f(i);
                // SAFETY: index i is handed out exactly once across all
                // workers, so this write is the only access to slot i
                // while the scope is alive; the Vec outlives the scope.
                unsafe { *slots_ptr.get().add(i) = Some(out) };
            });
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every index was produced"))
        .collect()
}

/// Map `f` over a slice in parallel, preserving input order.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map_indexed(items.len(), |i| f(&items[i]))
}

// ------------------------------------------------------------------ worker

/// The worker thread died (a previous job panicked) before — or while —
/// running the interaction that returned this error.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerError;

impl std::fmt::Display for WorkerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "worker thread dead (a job panicked)")
    }
}

impl std::error::Error for WorkerError {}

/// Why [`Worker::try_submit`] refused a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The worker thread died (a previous job panicked).
    Dead,
    /// The bounded mailbox is at capacity — backpressure; shed or retry.
    Full,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Dead => write!(f, "worker thread dead (a job panicked)"),
            SubmitError::Full => write!(f, "worker mailbox full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// A boxed job for a [`Worker`]'s mailbox.
type Job<T> = Box<dyn FnOnce(&mut T) + Send>;

/// The pending answer of a [`Worker::submit`] call. Dropping it without
/// [`wait`](Reply::wait)ing discards the result (the job still runs).
#[derive(Debug)]
pub struct Reply<R> {
    rx: Receiver<R>,
}

impl<R> Reply<R> {
    /// Block until the worker has run the job and return its result, or
    /// [`WorkerError`] when the worker died (this job or an earlier one
    /// panicked) before producing it.
    pub fn wait(self) -> Result<R, WorkerError> {
        self.rx.recv().map_err(|_| WorkerError)
    }
}

/// A persistent worker thread owning a piece of state `T`, driven through
/// a FIFO mailbox of closures.
///
/// Jobs submitted from the owning coordinator run strictly in submission
/// order, each with exclusive `&mut T` access — the actor pattern: state
/// is owned, never shared, so `T` needs no internal synchronization.
/// Dropping the worker closes the mailbox, drains the remaining jobs,
/// drops `T` *on the worker thread*, and joins — so resources owned by
/// `T` (files, logs) are fully released when `drop` returns.
///
/// A job that panics kills the worker, not the process: the panic is
/// caught, the state is dropped on the worker thread (mid-flight, as a
/// crash would leave it), queued jobs are discarded, and every later
/// interaction returns [`WorkerError`].
pub struct Worker<T> {
    tx: Option<Sender<Job<T>>>,
    handle: Option<JoinHandle<()>>,
    alive: Arc<AtomicBool>,
    /// Jobs submitted but not yet completed (mailbox depth).
    pending: Arc<AtomicUsize>,
    /// Mailbox bound for [`try_submit`](Worker::try_submit);
    /// `usize::MAX` = unbounded.
    capacity: Arc<AtomicUsize>,
}

impl<T: Send + 'static> Worker<T> {
    /// Move `state` onto a fresh worker thread and open its mailbox.
    pub fn spawn(state: T) -> Worker<T> {
        let (tx, rx) = channel::<Job<T>>();
        let alive = Arc::new(AtomicBool::new(true));
        let pending = Arc::new(AtomicUsize::new(0));
        let handle = {
            let alive = alive.clone();
            let pending = pending.clone();
            std::thread::spawn(move || {
                let mut state = state;
                while let Ok(job) = rx.recv() {
                    let ok = catch_unwind(AssertUnwindSafe(|| job(&mut state))).is_ok();
                    pending.fetch_sub(1, Ordering::Release);
                    if !ok {
                        // Fault containment: mark the domain dead *before*
                        // dropping the state so observers never see a live
                        // flag over a dropped state. Dropping here (on the
                        // worker thread, mid-flight) gives crash semantics
                        // to whatever the state owns — a WAL file closes
                        // without a final flush, so recovery sees exactly
                        // the durable prefix. Queued jobs die with the
                        // receiver; their Reply senders drop and every
                        // wait() resolves to Err(WorkerError).
                        alive.store(false, Ordering::Release);
                        drop(state);
                        return;
                    }
                }
            })
        };
        Worker {
            tx: Some(tx),
            handle: Some(handle),
            alive,
            pending,
            capacity: Arc::new(AtomicUsize::new(usize::MAX)),
        }
    }

    /// Whether the worker thread is still serving jobs. A `true` may be
    /// stale the instant it is read (the worker may be dying right now);
    /// `false` is definitive.
    pub fn is_alive(&self) -> bool {
        self.alive.load(Ordering::Acquire)
    }

    /// Jobs submitted but not yet completed.
    pub fn queue_len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Bound the mailbox at `cap` jobs for [`try_submit`](Self::try_submit)
    /// (`usize::MAX` = unbounded, the default). [`submit`](Self::submit)
    /// ignores the bound — control-plane jobs must never be shed.
    pub fn set_capacity(&self, cap: usize) {
        self.capacity.store(cap, Ordering::Release);
    }

    /// Whether the bounded mailbox is at capacity right now — the
    /// backpressure signal a coordinator can check *before* spending any
    /// per-operation setup work on a job it would have to shed.
    pub fn is_full(&self) -> bool {
        self.pending.load(Ordering::Acquire) >= self.capacity.load(Ordering::Acquire)
    }

    /// Close the mailbox and join the worker thread in place: queued jobs
    /// drain (or die with the receiver if the worker already panicked),
    /// the state — and everything it owns, such as log file handles — is
    /// fully dropped before this returns, and every later interaction
    /// returns [`WorkerError`]. A supervisor calls this before recovering
    /// a crashed shard's log in place, guaranteeing the dying worker's
    /// file handle is closed first.
    pub fn shutdown(&mut self) {
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.alive.store(false, Ordering::Release);
    }

    /// Enqueue `f` and return a [`Reply`] for its result, or
    /// [`WorkerError`] when the worker is dead. Use this to fan a batch
    /// of jobs out to several workers before collecting any of the
    /// answers — the workers run concurrently. Ignores the mailbox bound
    /// (see [`try_submit`](Self::try_submit) for backpressure).
    pub fn submit<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> Result<Reply<R>, WorkerError> {
        if !self.is_alive() {
            return Err(WorkerError);
        }
        let Some(tx) = self.tx.as_ref() else {
            // The mailbox was closed by an explicit shutdown.
            return Err(WorkerError);
        };
        let (rtx, rrx) = channel();
        self.pending.fetch_add(1, Ordering::AcqRel);
        let sent = tx.send(Box::new(move |state: &mut T| {
            let _ = rtx.send(f(state));
        }));
        if sent.is_err() {
            // The worker died between the liveness check and the send;
            // the job never entered the mailbox.
            self.pending.fetch_sub(1, Ordering::Release);
            return Err(WorkerError);
        }
        Ok(Reply { rx: rrx })
    }

    /// Like [`submit`](Self::submit), but refuse with
    /// [`SubmitError::Full`] when the mailbox is at the configured
    /// capacity — the backpressure path for data-plane jobs.
    pub fn try_submit<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> Result<Reply<R>, SubmitError> {
        if self.pending.load(Ordering::Acquire) >= self.capacity.load(Ordering::Acquire) {
            return Err(SubmitError::Full);
        }
        self.submit(f).map_err(|WorkerError| SubmitError::Dead)
    }

    /// Run `f` on the worker and block for its result (a synchronous
    /// round-trip through the mailbox), or [`WorkerError`] when the
    /// worker is dead or dies running `f`.
    pub fn call<R: Send + 'static>(
        &self,
        f: impl FnOnce(&mut T) -> R + Send + 'static,
    ) -> Result<R, WorkerError> {
        self.submit(f)?.wait()
    }
}

impl<T> Drop for Worker<T> {
    fn drop(&mut self) {
        // Closing the channel ends the worker loop; the join guarantees
        // the state (and everything it owns) is dropped before we return.
        self.tx.take();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct SendPtr<T>(*mut T);

impl<T> Clone for SendPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for SendPtr<T> {}

impl<T> SendPtr<T> {
    fn get(self) -> *mut T {
        self.0
    }
}
// SAFETY: the pointer is only dereferenced at indices handed out uniquely
// by the atomic cursor, inside the scope that owns the allocation.
unsafe impl<T: Send> Send for SendPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let out = par_map(&input, |&x| x * 2);
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn indexed_matches_sequential() {
        let seq: Vec<u64> = (0..257).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        let par = par_map_indexed(257, |i| (i as u64).wrapping_mul(0x9E37));
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_and_single() {
        assert!(par_map_indexed(0, |i| i).is_empty());
        assert_eq!(par_map_indexed(1, |i| i), vec![0]);
    }

    #[test]
    fn worker_runs_jobs_in_order_with_exclusive_state() {
        let w = Worker::spawn(Vec::<u32>::new());
        for i in 0..100 {
            w.call(move |v| v.push(i)).unwrap();
        }
        let out = w.call(|v| v.clone()).unwrap();
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn workers_fan_out_and_collect() {
        let workers: Vec<Worker<u64>> = (0..4).map(Worker::spawn).collect();
        let replies: Vec<Reply<u64>> = workers
            .iter()
            .map(|w| w.submit(|s| std::mem::replace(s, *s * 10)).unwrap())
            .collect();
        let got: Vec<u64> = replies.into_iter().map(|r| r.wait().unwrap()).collect();
        assert_eq!(got, vec![0, 1, 2, 3]);
        let after: Vec<u64> = workers.iter().map(|w| w.call(|s| *s).unwrap()).collect();
        assert_eq!(after, vec![0, 10, 20, 30]);
    }

    #[test]
    fn drop_joins_and_releases_state() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        struct Flagged(Arc<AtomicBool>);
        impl Drop for Flagged {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let flag = Arc::new(AtomicBool::new(false));
        let w = Worker::spawn(Flagged(flag.clone()));
        w.call(|_| ()).unwrap();
        drop(w);
        assert!(flag.load(Ordering::SeqCst), "state must drop before join");
    }

    #[test]
    fn uneven_work_self_balances() {
        let out = par_map_indexed(64, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            i
        });
        assert_eq!(out, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn panicking_job_kills_worker_not_process() {
        let w = Worker::spawn(0u32);
        let r = w.call(|_| panic!("injected"));
        assert_eq!(r, Err(WorkerError));
        // The error return is the definitive death signal; the liveness
        // flag flips moments later (the reply channel drops during the
        // unwind, before the worker loop observes the panic).
        while w.is_alive() {
            std::thread::yield_now();
        }
        // Every later interaction is a clean error, never a panic.
        assert!(w.submit(|s| *s).is_err());
        assert_eq!(w.call(|s| *s), Err(WorkerError));
        assert_eq!(w.try_submit(|s| *s).unwrap_err(), SubmitError::Dead);
    }

    #[test]
    fn panic_drops_state_on_worker_thread() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        struct Flagged(Arc<AtomicBool>);
        impl Drop for Flagged {
            fn drop(&mut self) {
                self.0.store(true, Ordering::SeqCst);
            }
        }
        let flag = Arc::new(AtomicBool::new(false));
        let w = Worker::spawn(Flagged(flag.clone()));
        assert!(w.call(|_| panic!("injected")).is_err());
        // The catch-unwind path drops the state at the point of death;
        // wait for the worker thread to finish doing so.
        while !flag.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        assert!(!w.is_alive());
    }

    #[test]
    fn queued_jobs_after_panic_resolve_as_errors() {
        let w = Worker::spawn(0u64);
        // A slow first job keeps the mailbox backed up so the panic and
        // the victims are all queued together.
        let _slow = w
            .submit(|_| std::thread::sleep(std::time::Duration::from_millis(20)))
            .unwrap();
        let bomb = w.submit(|_| panic!("injected")).unwrap();
        let victims: Vec<Reply<u64>> = (0..4).map(|_| w.submit(|s| *s).unwrap()).collect();
        assert!(bomb.wait().is_err());
        for v in victims {
            assert_eq!(v.wait(), Err(WorkerError));
        }
    }

    #[test]
    fn shutdown_joins_and_closes_the_mailbox() {
        let mut w = Worker::spawn(5u32);
        assert_eq!(w.call(|s| *s).unwrap(), 5);
        w.shutdown();
        assert!(!w.is_alive());
        assert_eq!(w.call(|s| *s), Err(WorkerError));
        assert!(w.submit(|s| *s).is_err());
        // Shutting down twice is fine.
        w.shutdown();
    }

    #[test]
    fn bounded_mailbox_sheds_when_full() {
        let w = Worker::spawn(());
        w.set_capacity(2);
        let (gate_tx, gate_rx) = channel::<()>();
        // Stall the worker so submissions pile up deterministically.
        let stalled = w
            .submit(move |_| {
                let _ = gate_rx.recv();
            })
            .unwrap();
        let queued = w.try_submit(|_| ()).unwrap();
        assert_eq!(w.try_submit(|_| ()).unwrap_err(), SubmitError::Full);
        // Control-plane submit ignores the bound.
        let control = w.submit(|_| ()).unwrap();
        gate_tx.send(()).unwrap();
        stalled.wait().unwrap();
        queued.wait().unwrap();
        control.wait().unwrap();
        // Drained: accepted again.
        w.try_submit(|_| ()).unwrap().wait().unwrap();
    }
}
