//! One-call analysis of the full class hierarchy over `H`.
//!
//! Computes, for every schedule of a (small-format) system, membership in:
//! serial ⊆ CSR ⊆ SR ⊆ WSR ⊆ C(T). This is the data behind the paper's
//! information/performance ladder (Theorems 2–4) and the `hierarchy_table`
//! experiment.

use crate::correct::correct_membership;
use crate::enumerate::all_schedules;
use crate::graph::is_csr;
use crate::herbrand::HerbrandCtx;
use crate::schedule::Schedule;
use crate::sr::sr_membership;
use crate::wsr::{wsr_membership, WsrOptions};
use ccopt_model::system::TransactionSystem;

/// Sizes of each class (and of `H`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ClassSizes {
    /// `|H|`.
    pub h: usize,
    /// Number of serial schedules (= n! modulo coinciding formats).
    pub serial: usize,
    /// `|CSR(T)|` — conflict-serializable schedules.
    pub csr: usize,
    /// `|SR(T)|` — Herbrand-serializable schedules.
    pub sr: usize,
    /// `|WSR(T)|` — weakly serializable schedules (bounded search).
    pub wsr: usize,
    /// `|C(T)|` — correct schedules over the check space.
    pub correct: usize,
}

/// Full membership analysis over an explicit enumeration of `H`.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// The schedules of `H` in enumeration order.
    pub schedules: Vec<Schedule>,
    /// Serial-schedule flags.
    pub serial: Vec<bool>,
    /// CSR membership flags.
    pub csr: Vec<bool>,
    /// SR membership flags.
    pub sr: Vec<bool>,
    /// WSR membership flags.
    pub wsr: Vec<bool>,
    /// C(T) membership flags.
    pub correct: Vec<bool>,
}

impl Analysis {
    /// Run the full analysis. Intended for formats with at most a few
    /// thousand schedules.
    pub fn run(sys: &TransactionSystem, wsr_opts: WsrOptions) -> Self {
        let schedules = all_schedules(&sys.format());
        let ctx = HerbrandCtx::for_system(sys);
        let serial = schedules.iter().map(Schedule::is_serial).collect();
        let csr = schedules.iter().map(|h| is_csr(&sys.syntax, h)).collect();
        let sr = sr_membership(&ctx, &schedules);
        let wsr = wsr_membership(sys, &schedules, wsr_opts);
        let correct = correct_membership(sys, &schedules);
        Analysis {
            schedules,
            serial,
            csr,
            sr,
            wsr,
            correct,
        }
    }

    /// The class sizes.
    pub fn sizes(&self) -> ClassSizes {
        fn count(v: &[bool]) -> usize {
            v.iter().filter(|&&b| b).count()
        }
        ClassSizes {
            h: self.schedules.len(),
            serial: count(&self.serial),
            csr: count(&self.csr),
            sr: count(&self.sr),
            wsr: count(&self.wsr),
            correct: count(&self.correct),
        }
    }

    /// Verify the inclusion chain serial ⊆ CSR ⊆ SR ⊆ WSR ⊆ C pointwise;
    /// returns the name of the first violated inclusion.
    pub fn check_inclusions(&self) -> Result<(), String> {
        for (i, h) in self.schedules.iter().enumerate() {
            if self.serial[i] && !self.csr[i] {
                return Err(format!("serial ⊄ CSR at {h}"));
            }
            if self.csr[i] && !self.sr[i] {
                return Err(format!("CSR ⊄ SR at {h}"));
            }
            if self.sr[i] && !self.wsr[i] {
                return Err(format!("SR ⊄ WSR at {h}"));
            }
            if self.wsr[i] && !self.correct[i] {
                return Err(format!("WSR ⊄ C at {h}"));
            }
        }
        Ok(())
    }

    /// Indices of schedules in a named class.
    pub fn members(&self, class: Class) -> Vec<usize> {
        let flags = self.flags(class);
        (0..self.schedules.len()).filter(|&i| flags[i]).collect()
    }

    /// Flags slice of a named class.
    pub fn flags(&self, class: Class) -> &[bool] {
        match class {
            Class::Serial => &self.serial,
            Class::Csr => &self.csr,
            Class::Sr => &self.sr,
            Class::Wsr => &self.wsr,
            Class::Correct => &self.correct,
        }
    }
}

/// The five classes of the ladder.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Class {
    /// Serial schedules.
    Serial,
    /// Conflict-serializable schedules.
    Csr,
    /// Herbrand-serializable schedules (`SR(T)`).
    Sr,
    /// Weakly serializable schedules (`WSR(T)`).
    Wsr,
    /// Correct schedules (`C(T)`).
    Correct,
}

impl std::fmt::Display for Class {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Class::Serial => write!(f, "serial"),
            Class::Csr => write!(f, "CSR"),
            Class::Sr => write!(f, "SR"),
            Class::Wsr => write!(f, "WSR"),
            Class::Correct => write!(f, "C"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_model::random::{random_system, RandomConfig};
    use ccopt_model::systems;

    #[test]
    fn fig1_ladder_is_strict_between_sr_and_wsr() {
        let sys = systems::fig1();
        let a = Analysis::run(&sys, WsrOptions::default());
        a.check_inclusions().unwrap();
        let s = a.sizes();
        assert_eq!(s.h, 3);
        assert_eq!(s.serial, 2);
        assert_eq!(s.csr, 2);
        assert_eq!(s.sr, 2);
        assert_eq!(s.wsr, 3); // the gap exhibited by Figure 1
        assert_eq!(s.correct, 3); // TrueIc
    }

    #[test]
    fn thm2_ladder_collapses_to_serial() {
        let sys = systems::thm2_adversary();
        let a = Analysis::run(&sys, WsrOptions::default());
        a.check_inclusions().unwrap();
        let s = a.sizes();
        assert_eq!(s.h, 3);
        assert_eq!(s.serial, 2);
        // The only correct schedules are the serial ones here.
        assert_eq!(s.correct, 2);
    }

    #[test]
    fn inclusions_hold_on_random_systems() {
        for seed in 0..8 {
            let cfg = RandomConfig {
                num_txns: 2,
                steps_per_txn: (1, 3),
                num_vars: 2,
                read_fraction: 0.2,
                ..RandomConfig::default()
            };
            let sys = random_system(&cfg, seed);
            let a = Analysis::run(&sys, WsrOptions::default());
            a.check_inclusions()
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        }
    }

    #[test]
    fn members_and_flags_are_consistent() {
        let sys = systems::fig1();
        let a = Analysis::run(&sys, WsrOptions::default());
        for class in [
            Class::Serial,
            Class::Csr,
            Class::Sr,
            Class::Wsr,
            Class::Correct,
        ] {
            let members = a.members(class);
            let flags = a.flags(class);
            for (i, &f) in flags.iter().enumerate() {
                assert_eq!(members.contains(&i), f);
            }
        }
        assert_eq!(Class::Sr.to_string(), "SR");
    }

    #[test]
    fn banking_ladder_runs_end_to_end() {
        // Format (3,2,4): |H| = 1260. WSR is the expensive one; use a small
        // bound to keep the test quick while still exercising the path.
        let sys = systems::banking();
        let opts = WsrOptions {
            max_len: 3,
            uniform: true,
        };
        let a = Analysis::run(&sys, opts);
        let s = a.sizes();
        assert_eq!(s.h, 1260);
        assert_eq!(s.serial, 6);
        assert!(s.csr >= s.serial);
        assert!(s.sr >= s.csr);
        assert!(s.correct >= s.wsr);
    }
}
