//! `C(T)`: the set of correct schedules.
//!
//! Section 3.1: "A schedule is said to be *correct* if its execution
//! preserves the consistency of the database. The set of all correct
//! schedules of T is denoted by C(T). The set C(T) is always nonempty,
//! since it at least contains, by our basic assumption, all serial
//! schedules."
//!
//! Correctness is decided over the system's finite check space (see the
//! substitution note in DESIGN.md).

use crate::schedule::Schedule;
use ccopt_model::exec::Executor;
use ccopt_model::system::TransactionSystem;

/// Is `h ∈ C(T)`: does executing `h` map every consistent check state to a
/// consistent state?
pub fn is_correct(sys: &TransactionSystem, h: &Schedule) -> bool {
    Executor::new(sys).check_sequence_correct(h.steps()).is_ok()
}

/// Membership flags of `C(T)` over an explicit schedule list.
pub fn correct_membership(sys: &TransactionSystem, schedules: &[Schedule]) -> Vec<bool> {
    let ex = Executor::new(sys);
    schedules
        .iter()
        .map(|h| ex.check_sequence_correct(h.steps()).is_ok())
        .collect()
}

/// A human-readable explanation of why `h ∉ C(T)` (or `None` when correct).
pub fn incorrectness_witness(sys: &TransactionSystem, h: &Schedule) -> Option<String> {
    Executor::new(sys).check_sequence_correct(h.steps()).err()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_schedules;
    use ccopt_model::ids::StepId;
    use ccopt_model::systems;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn serial_schedules_are_always_correct() {
        for sys in [
            systems::banking(),
            systems::fig1(),
            systems::thm2_adversary(),
        ] {
            for s in Schedule::all_serials(&sys.format()) {
                assert!(is_correct(&sys, &s), "serial {s} incorrect in {}", sys.name);
            }
        }
    }

    #[test]
    fn thm2_adversary_rejects_the_interleaving() {
        let sys = systems::thm2_adversary();
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        assert!(!is_correct(&sys, &h));
        let reason = incorrectness_witness(&sys, &h).unwrap();
        assert!(reason.contains("inconsistent"), "got: {reason}");
    }

    #[test]
    fn trivial_ic_makes_everything_correct() {
        let sys = systems::fig1(); // TrueIc
        for h in all_schedules(&sys.format()) {
            assert!(is_correct(&sys, &h));
        }
    }

    #[test]
    fn banking_has_incorrect_interleavings() {
        // A lost-update interleaving of withdraw (T2) inside audit (T3)
        // breaks A + B = S - 50C.
        let sys = systems::banking();
        let all = all_schedules(&sys.format());
        let flags = correct_membership(&sys, &all);
        let incorrect = flags.iter().filter(|&&b| !b).count();
        assert!(
            incorrect > 0,
            "expected some incorrect banking interleavings"
        );
        // And serials are among the correct ones.
        let correct = flags.iter().filter(|&&b| b).count();
        assert!(correct >= 6);
    }

    #[test]
    fn membership_vector_matches_pointwise() {
        let sys = systems::thm2_adversary();
        let all = all_schedules(&sys.format());
        let flags = correct_membership(&sys, &all);
        for (h, &m) in all.iter().zip(&flags) {
            assert_eq!(is_correct(&sys, h), m);
        }
    }
}
