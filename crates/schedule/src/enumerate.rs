//! Enumeration and sampling of the schedule set `H`.
//!
//! `H` depends only on the format; its size is the multinomial coefficient
//! `(Σ m_i)! / Π (m_i!)`. Exhaustive enumeration is used for the exact
//! fixpoint-ratio experiments (§6: "the probability that none of the
//! transaction steps have to wait is |P|/|H|"); uniform sampling covers the
//! formats where `|H|` is astronomically large.

use crate::schedule::Schedule;
use ccopt_model::ids::{total_steps, StepId, TxnId};
use rand::Rng;

/// Exact `|H|` as a u128 (multinomial coefficient). Panics on overflow,
/// which for u128 requires formats far beyond anything enumerable anyway.
pub fn count_schedules(format: &[u32]) -> u128 {
    let mut count: u128 = 1;
    let mut placed: u128 = 0;
    // Multiply binomials: C(placed + m_i, m_i) for each transaction.
    for &m in format {
        for k in 1..=u128::from(m) {
            placed += 1;
            // count *= placed; count /= k — keep exact by multiplying first.
            count = count.checked_mul(placed).expect("|H| overflows u128");
            count /= k;
        }
    }
    count
}

/// Enumerate every schedule of `format` in lexicographic order of
/// transaction choice. The closure receives each schedule; return `false`
/// to stop early.
pub fn for_each_schedule(format: &[u32], mut f: impl FnMut(&Schedule) -> bool) {
    let total = total_steps(format);
    let mut pcs = vec![0u32; format.len()];
    let mut steps: Vec<StepId> = Vec::with_capacity(total);
    recurse(format, &mut pcs, &mut steps, total, &mut f);
}

/// Depth-first generation; recursion depth equals the number of steps.
/// Returns `false` to propagate early termination.
fn recurse<F: FnMut(&Schedule) -> bool>(
    format: &[u32],
    pcs: &mut [u32],
    steps: &mut Vec<StepId>,
    total: usize,
    f: &mut F,
) -> bool {
    if steps.len() == total {
        return f(&Schedule::new_unchecked(steps.clone()));
    }
    for i in 0..format.len() {
        if pcs[i] < format[i] {
            steps.push(StepId::new(i as u32, pcs[i]));
            pcs[i] += 1;
            let keep_going = recurse(format, pcs, steps, total, f);
            pcs[i] -= 1;
            steps.pop();
            if !keep_going {
                return false;
            }
        }
    }
    true
}

/// Collect every schedule of `format`. Intended for small formats
/// (`|H|` up to a few hundred thousand).
pub fn all_schedules(format: &[u32]) -> Vec<Schedule> {
    let mut out = Vec::new();
    for_each_schedule(format, |s| {
        out.push(s.clone());
        true
    });
    out
}

/// Draw a uniformly random schedule of `format`.
///
/// Uniformity: at each position, choose transaction `i` with probability
/// proportional to the number of distinct completions after taking a step
/// of `i`, which equals `remaining_i / remaining_total` of the multinomial —
/// the standard "random interleaving" construction (equivalently: a uniformly
/// random permutation of the multiset of transaction labels).
pub fn sample_schedule<R: Rng + ?Sized>(format: &[u32], rng: &mut R) -> Schedule {
    let total = total_steps(format);
    let mut remaining: Vec<u32> = format.to_vec();
    let mut left = total as u64;
    let mut pcs = vec![0u32; format.len()];
    let mut steps = Vec::with_capacity(total);
    while left > 0 {
        let mut pick = rng.gen_range(0..left);
        let mut chosen = usize::MAX;
        for (i, &r) in remaining.iter().enumerate() {
            if pick < u64::from(r) {
                chosen = i;
                break;
            }
            pick -= u64::from(r);
        }
        debug_assert_ne!(chosen, usize::MAX);
        steps.push(StepId::new(chosen as u32, pcs[chosen]));
        pcs[chosen] += 1;
        remaining[chosen] -= 1;
        left -= 1;
    }
    Schedule::new_unchecked(steps)
}

/// All transaction ids of a format, in index order (convenience).
pub fn txn_ids(format: &[u32]) -> Vec<TxnId> {
    (0..format.len() as u32).map(TxnId).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn counts_match_multinomials() {
        assert_eq!(count_schedules(&[]), 1);
        assert_eq!(count_schedules(&[3]), 1);
        assert_eq!(count_schedules(&[1, 1]), 2);
        assert_eq!(count_schedules(&[2, 1]), 3);
        assert_eq!(count_schedules(&[2, 2]), 6);
        assert_eq!(count_schedules(&[3, 2, 4]), 1260); // the banking format
        assert_eq!(count_schedules(&[2, 2, 2]), 90);
    }

    #[test]
    fn enumeration_matches_count_and_is_unique() {
        for format in [vec![2, 2], vec![3, 2], vec![2, 2, 2], vec![1, 1, 1, 1]] {
            let all = all_schedules(&format);
            assert_eq!(all.len() as u128, count_schedules(&format));
            let set: HashSet<_> = all.iter().collect();
            assert_eq!(set.len(), all.len(), "duplicates for {format:?}");
            for s in &all {
                assert!(s.is_legal(&format));
            }
        }
    }

    #[test]
    fn enumeration_is_lexicographic_by_txn_choice() {
        let all = all_schedules(&[1, 1]);
        assert_eq!(all[0].steps()[0].txn.0, 0);
        assert_eq!(all[1].steps()[0].txn.0, 1);
    }

    #[test]
    fn early_stop_works() {
        let mut seen = 0;
        for_each_schedule(&[2, 2], |_| {
            seen += 1;
            seen < 3
        });
        assert_eq!(seen, 3);
    }

    #[test]
    fn sampling_is_legal_and_covers_h() {
        let format = [2, 1];
        let mut rng = SmallRng::seed_from_u64(1);
        let mut seen = HashSet::new();
        for _ in 0..200 {
            let s = sample_schedule(&format, &mut rng);
            assert!(s.is_legal(&format));
            seen.insert(s);
        }
        // |H| = 3 and 200 draws should see all of them.
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // For format (1,1): two schedules, each with probability 1/2.
        let format = [1, 1];
        let mut rng = SmallRng::seed_from_u64(7);
        let mut first = 0;
        let n = 2000;
        for _ in 0..n {
            let s = sample_schedule(&format, &mut rng);
            if s.steps()[0].txn.0 == 0 {
                first += 1;
            }
        }
        let ratio = f64::from(first) / f64::from(n);
        assert!((0.45..0.55).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn single_transaction_has_one_schedule() {
        let all = all_schedules(&[4]);
        assert_eq!(all.len(), 1);
        assert!(all[0].is_serial());
    }
}
