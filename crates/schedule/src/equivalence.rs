//! Final-state equivalence and step commutation.
//!
//! Two schedules are *equivalent under an interpretation* when they produce
//! the same final global state from every check state. Under Herbrand
//! semantics this is the equivalence underlying `SR(T)`; under the actual
//! semantics it underlies `WSR(T)` and the semantic schedulers.
//!
//! *Commutation* of adjacent steps is the paper's "elementary
//! transformation" (Fig. 4(b)): swapping two adjacent steps of different
//! transactions. Syntactically non-conflicting steps always commute;
//! semantically, more pairs may commute (e.g. two blind increments).

use crate::schedule::Schedule;
use ccopt_model::exec::Executor;
use ccopt_model::system::TransactionSystem;

/// Are `a` and `b` equivalent under the system's interpretation: same final
/// globals from every check state? Execution errors make schedules
/// inequivalent (unless both fail from the same state).
pub fn equivalent(sys: &TransactionSystem, a: &Schedule, b: &Schedule) -> bool {
    let ex = Executor::new(sys);
    sys.space.initial_states.iter().all(|init| {
        let ra = ex.run_sequence(init.clone(), a.steps()).map(|s| s.globals);
        let rb = ex.run_sequence(init.clone(), b.steps()).map(|s| s.globals);
        match (ra, rb) {
            (Ok(ga), Ok(gb)) => ga == gb,
            _ => false,
        }
    })
}

/// Does swapping positions `k` and `k+1` of `h` preserve the final state on
/// every check state? Returns `None` when the swap is illegal (same
/// transaction or out of range), `Some(true/false)` otherwise.
pub fn swap_preserves_state(sys: &TransactionSystem, h: &Schedule, k: usize) -> Option<bool> {
    let swapped = h.swap_adjacent(k)?;
    Some(equivalent(sys, h, &swapped))
}

/// Do the steps at positions `k`, `k+1` commute *syntactically* (different
/// transactions and no conflict)? Syntactic commutation implies semantic
/// commutation under every interpretation (Herbrand's theorem direction).
pub fn swap_is_syntactic(sys: &TransactionSystem, h: &Schedule, k: usize) -> Option<bool> {
    let steps = h.steps();
    if k + 1 >= steps.len() || steps[k].txn == steps[k + 1].txn {
        return None;
    }
    Some(!sys.syntax.conflict(steps[k], steps[k + 1]))
}

/// All schedules reachable from `h` by repeatedly swapping adjacent
/// *syntactically non-conflicting* steps — the homotopy class of `h` in the
/// sense of Section 5.3. Only for small formats.
pub fn homotopy_class(sys: &TransactionSystem, h: &Schedule) -> Vec<Schedule> {
    use std::collections::{HashSet, VecDeque};
    let mut seen: HashSet<Schedule> = HashSet::new();
    let mut queue = VecDeque::new();
    seen.insert(h.clone());
    queue.push_back(h.clone());
    while let Some(cur) = queue.pop_front() {
        for k in 0..cur.len().saturating_sub(1) {
            if swap_is_syntactic(sys, &cur, k) == Some(true) {
                let next = cur.swap_adjacent(k).expect("validated swap");
                if seen.insert(next.clone()) {
                    queue.push_back(next);
                }
            }
        }
    }
    let mut out: Vec<Schedule> = seen.into_iter().collect();
    out.sort();
    out
}

/// Is `h` connected to some *serial* schedule by elementary transformations?
/// By the Section 5.3 discussion this coincides with conflict
/// serializability.
pub fn homotopic_to_serial(sys: &TransactionSystem, h: &Schedule) -> bool {
    homotopy_class(sys, h).iter().any(Schedule::is_serial)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_schedules;
    use crate::graph::is_csr;
    use ccopt_model::ids::StepId;
    use ccopt_model::random::{random_system, RandomConfig};
    use ccopt_model::systems;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn fig1_h_semantically_equals_t2_t1_serial() {
        let sys = systems::fig1();
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        let t2t1 = Schedule::new_unchecked(vec![sid(1, 0), sid(0, 0), sid(0, 1)]);
        assert!(equivalent(&sys, &h, &t2t1));
        let t1t2 = Schedule::new_unchecked(vec![sid(0, 0), sid(0, 1), sid(1, 0)]);
        assert!(!equivalent(&sys, &h, &t1t2));
    }

    #[test]
    fn semantic_commutation_can_exceed_syntactic() {
        // In fig1, T11 (x+1) and T21 (x+1) commute semantically (addition)
        // but conflict syntactically.
        let sys = systems::fig1();
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        assert_eq!(swap_is_syntactic(&sys, &h, 0), Some(false));
        assert_eq!(swap_preserves_state(&sys, &h, 0), Some(true));
        // T21 (x+1) and T12 (2x) do not commute semantically.
        assert_eq!(swap_preserves_state(&sys, &h, 1), Some(false));
    }

    #[test]
    fn swap_bounds_and_same_txn_rejected() {
        let sys = systems::fig1();
        let serial = Schedule::new_unchecked(vec![sid(0, 0), sid(0, 1), sid(1, 0)]);
        assert_eq!(swap_preserves_state(&sys, &serial, 0), None); // same txn
        assert_eq!(swap_preserves_state(&sys, &serial, 5), None); // range
        assert_eq!(swap_is_syntactic(&sys, &serial, 0), None);
    }

    #[test]
    fn homotopy_class_equals_csr_on_random_systems() {
        // Section 5.3: homotopic-to-serial == conflict-serializable.
        for seed in 0..10 {
            let cfg = RandomConfig {
                num_txns: 2,
                steps_per_txn: (1, 3),
                num_vars: 2,
                read_fraction: 0.2,
                ..RandomConfig::default()
            };
            let sys = random_system(&cfg, seed);
            for h in all_schedules(&sys.format()) {
                assert_eq!(
                    homotopic_to_serial(&sys, &h),
                    is_csr(&sys.syntax, &h),
                    "mismatch for {h} (seed {seed})"
                );
            }
        }
    }

    #[test]
    fn homotopy_class_contains_self_and_is_closed() {
        let sys = systems::fig2_like();
        let h = Schedule::serial(&sys.format(), &crate::enumerate::txn_ids(&sys.format()));
        let class = homotopy_class(&sys, &h);
        assert!(class.contains(&h));
        // Closure: every member's class is the same set.
        let other = &class[class.len() / 2];
        let class2 = homotopy_class(&sys, other);
        assert_eq!(class, class2);
    }

    #[test]
    fn disjoint_transactions_have_full_homotopy_class() {
        use ccopt_model::expr::Expr;
        use ccopt_model::ic::TrueIc;
        use ccopt_model::interp::ExprInterpretation;
        use ccopt_model::syntax::SyntaxBuilder;
        use ccopt_model::system::{StateSpace, TransactionSystem};
        use std::sync::Arc;
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x"))
            .txn("T2", |t| t.update("y"))
            .build();
        let interp = ExprInterpretation::new(vec![
            vec![Expr::add(Expr::Local(0), Expr::Const(1))],
            vec![Expr::add(Expr::Local(0), Expr::Const(1))],
        ]);
        let sys = TransactionSystem::new(
            "disjoint",
            syn,
            Arc::new(interp),
            Arc::new(TrueIc),
            StateSpace::from_ints(&[&[0, 0]]),
        );
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0)]);
        let class = homotopy_class(&sys, &h);
        assert_eq!(class.len(), 2); // both schedules of H
    }
}
