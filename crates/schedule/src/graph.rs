//! Serialization (conflict) graphs and conflict serializability.
//!
//! The serialization-graph test is the standard efficient *sufficient*
//! condition for Herbrand serializability: build a digraph on transactions
//! with an edge `T_i → T_k` whenever some step of `T_i` precedes a
//! conflicting step of `T_k` in the schedule; the schedule is conflict
//! serializable (CSR) iff the graph is acyclic, and any topological order is
//! then an equivalent serial order.
//!
//! The paper's Section 5.3 identifies commutations of adjacent
//! non-conflicting steps ("elementary transformations") as the homotopy
//! moves of the progress-space geometry; CSR is exactly the class reachable
//! from a serial schedule by such moves.

use crate::schedule::Schedule;
use ccopt_model::ids::TxnId;
use ccopt_model::syntax::Syntax;

/// The serialization graph of a schedule.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    n: usize,
    /// Adjacency matrix: `edges[i * n + k]` = edge `T_i → T_k`.
    edges: Vec<bool>,
}

/// Result of the conflict-serializability test.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum SerializationVerdict {
    /// Acyclic graph; the payload is a witnessing equivalent serial order.
    Serializable(Vec<TxnId>),
    /// A cycle was found; the payload is one cycle (transaction indices).
    Cyclic(Vec<TxnId>),
}

impl SerializationVerdict {
    /// True for the serializable verdict.
    pub fn is_serializable(&self) -> bool {
        matches!(self, SerializationVerdict::Serializable(_))
    }
}

impl ConflictGraph {
    /// Build the serialization graph of `h` under the conflict relation of
    /// `syntax`.
    pub fn build(syntax: &Syntax, h: &Schedule) -> Self {
        let n = syntax.num_txns();
        let mut edges = vec![false; n * n];
        let steps = h.steps();
        for (p, &a) in steps.iter().enumerate() {
            for &b in &steps[p + 1..] {
                if syntax.conflict(a, b) {
                    let i = a.txn.index();
                    let k = b.txn.index();
                    if i != k {
                        edges[i * n + k] = true;
                    }
                }
            }
        }
        ConflictGraph { n, edges }
    }

    /// Number of transactions (nodes).
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Is there an edge `T_i → T_k`?
    pub fn has_edge(&self, i: TxnId, k: TxnId) -> bool {
        self.edges[i.index() * self.n + k.index()]
    }

    /// All edges as `(from, to)` pairs.
    pub fn edges(&self) -> Vec<(TxnId, TxnId)> {
        let mut out = Vec::new();
        for i in 0..self.n {
            for k in 0..self.n {
                if self.edges[i * self.n + k] {
                    out.push((TxnId(i as u32), TxnId(k as u32)));
                }
            }
        }
        out
    }

    /// Test acyclicity; on success return a topological order (an equivalent
    /// serial order), otherwise return one cycle.
    pub fn check(&self) -> SerializationVerdict {
        // Kahn's algorithm with deterministic (index) tie-breaking.
        let mut indeg = vec![0usize; self.n];
        for i in 0..self.n {
            for (k, d) in indeg.iter_mut().enumerate() {
                if self.edges[i * self.n + k] {
                    *d += 1;
                }
            }
        }
        let mut order = Vec::with_capacity(self.n);
        let mut removed = vec![false; self.n];
        loop {
            let next = (0..self.n).find(|&k| !removed[k] && indeg[k] == 0);
            match next {
                Some(k) => {
                    removed[k] = true;
                    order.push(TxnId(k as u32));
                    for (m, d) in indeg.iter_mut().enumerate() {
                        if self.edges[k * self.n + m] {
                            *d -= 1;
                        }
                    }
                }
                None => break,
            }
        }
        if order.len() == self.n {
            SerializationVerdict::Serializable(order)
        } else {
            SerializationVerdict::Cyclic(self.find_cycle(&removed))
        }
    }

    /// Locate a cycle among the nodes not removed by Kahn's algorithm.
    fn find_cycle(&self, removed: &[bool]) -> Vec<TxnId> {
        // Every remaining node has nonzero indegree within the remaining
        // set, so walking *predecessors* from any remaining node must
        // revisit one — the revisited stretch, reversed, is a forward cycle.
        let start = (0..self.n)
            .find(|&k| !removed[k])
            .expect("cycle exists when Kahn terminates early");
        let mut path = vec![start];
        let mut seen_at = vec![usize::MAX; self.n];
        seen_at[start] = 0;
        let mut cur = start;
        loop {
            let pred = (0..self.n)
                .find(|&m| !removed[m] && self.edges[m * self.n + cur])
                .expect("remaining nodes have remaining predecessors");
            if seen_at[pred] != usize::MAX {
                let mut cycle: Vec<TxnId> = path[seen_at[pred]..]
                    .iter()
                    .map(|&i| TxnId(i as u32))
                    .collect();
                cycle.reverse();
                return cycle;
            }
            seen_at[pred] = path.len();
            path.push(pred);
            cur = pred;
        }
    }
}

/// Is `h` conflict serializable under `syntax`'s conflict relation?
pub fn is_csr(syntax: &Syntax, h: &Schedule) -> bool {
    ConflictGraph::build(syntax, h).check().is_serializable()
}

/// Conflict-serializability verdict with witness.
pub fn csr_verdict(syntax: &Syntax, h: &Schedule) -> SerializationVerdict {
    ConflictGraph::build(syntax, h).check()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_schedules;
    use ccopt_model::ids::StepId;
    use ccopt_model::syntax::SyntaxBuilder;
    use ccopt_model::systems;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn fig1_interleaving_is_cyclic() {
        let sys = systems::fig1();
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        let g = ConflictGraph::build(&sys.syntax, &h);
        assert!(g.has_edge(TxnId(0), TxnId(1)));
        assert!(g.has_edge(TxnId(1), TxnId(0)));
        let verdict = g.check();
        assert!(!verdict.is_serializable());
        match verdict {
            SerializationVerdict::Cyclic(c) => assert_eq!(c.len(), 2),
            _ => unreachable!(),
        }
    }

    #[test]
    fn serial_schedules_are_always_csr() {
        let sys = systems::banking();
        for s in Schedule::all_serials(&sys.format()) {
            let v = csr_verdict(&sys.syntax, &s);
            assert!(v.is_serializable(), "serial schedule {s} not CSR");
        }
    }

    #[test]
    fn topological_witness_respects_edges() {
        let sys = systems::banking();
        for h in all_schedules(&sys.format()).into_iter().take(200) {
            let g = ConflictGraph::build(&sys.syntax, &h);
            if let SerializationVerdict::Serializable(order) = g.check() {
                let pos: std::collections::HashMap<_, _> =
                    order.iter().enumerate().map(|(p, &t)| (t, p)).collect();
                for (a, b) in g.edges() {
                    assert!(pos[&a] < pos[&b], "edge {a}->{b} violated by witness");
                }
            }
        }
    }

    #[test]
    fn read_read_steps_produce_no_edge() {
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.read("x"))
            .txn("T2", |t| t.read("x"))
            .build();
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0)]);
        let g = ConflictGraph::build(&syn, &h);
        assert!(g.edges().is_empty());
        assert!(g.check().is_serializable());
    }

    #[test]
    fn three_cycle_is_detected() {
        // T1: x y, T2: y z, T3: z x, interleaved so edges 1->2->3->1.
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("y"))
            .txn("T2", |t| t.update("y").update("z"))
            .txn("T3", |t| t.update("z").update("x"))
            .build();
        // Order: T1(y@2 after T2 reads y? construct manually):
        // T2,1 (y), T1,1 (x), T1,2 (y) -> edge 2->1 on y;
        // T3,1 (z), T2,2 (z) -> edge 3->2;
        // T3,2 (x) after T1,1 (x) -> edge 1->3.
        let h = Schedule::new_unchecked(vec![
            sid(1, 0),
            sid(0, 0),
            sid(0, 1),
            sid(2, 0),
            sid(1, 1),
            sid(2, 1),
        ]);
        assert!(h.is_legal(&[2, 2, 2]));
        let g = ConflictGraph::build(&syn, &h);
        assert!(g.has_edge(TxnId(1), TxnId(0)));
        assert!(g.has_edge(TxnId(2), TxnId(1)));
        assert!(g.has_edge(TxnId(0), TxnId(2)));
        let verdict = g.check();
        assert!(!verdict.is_serializable());
        if let SerializationVerdict::Cyclic(c) = verdict {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn csr_count_on_fig3_pair() {
        // T1: x y; T2: y x. |H| = 6; the two serials plus... every
        // interleaving conflicts on both variables, so only the serials and
        // interleavings with one-directional conflicts survive.
        let sys = systems::fig3_pair();
        let all = all_schedules(&sys.format());
        let csr: Vec<_> = all.iter().filter(|h| is_csr(&sys.syntax, h)).collect();
        // Manual analysis: schedules where all conflicts point one way.
        // (T11 T12 T21 T22), (T21 T22 T11 T12) serial;
        // (T11 T21 T12 T22): T1->T2 on... T11(x) before T22(x): 1->2;
        //   T21(y) before T12(y): 2->1 — cyclic.
        // By symmetry only the 2 serials are CSR here.
        assert_eq!(csr.len(), 2);
        for h in csr {
            assert!(h.is_serial());
        }
    }
}
