//! Symbolic execution of schedules under Herbrand semantics.
//!
//! Section 4.2: "one can supplement this syntax with canonical semantics
//! called Herbrand semantics [...] the Herbrand interpretation captures all
//! the history of the values of all global variables."
//!
//! [`HerbrandCtx`] owns the herbrandized copy of a system plus the shared
//! term arena, and memoizes the `n!` serial outcomes so that `SR(T)`
//! membership is a hash lookup after one symbolic run.

use crate::schedule::{permutations, Schedule};
use ccopt_model::exec::Executor;
use ccopt_model::ids::{StepId, TxnId, VarId};
use ccopt_model::interp::HerbrandInterpretation;
use ccopt_model::state::GlobalState;
use ccopt_model::syntax::Syntax;
use ccopt_model::system::TransactionSystem;
use ccopt_model::term::{TermArena, TermId};
use ccopt_model::value::Value;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Context for Herbrand-semantics runs over one syntax.
pub struct HerbrandCtx {
    sys: TransactionSystem,
    interp: Arc<HerbrandInterpretation>,
    /// Final term vectors of each serial order, memoized.
    serial_outcomes: Vec<(Vec<TxnId>, Vec<TermId>)>,
}

impl HerbrandCtx {
    /// Build a context from a syntax (semantics are discarded — Herbrand
    /// semantics depend on syntax alone).
    pub fn new(syntax: &Syntax) -> Self {
        let interp = Arc::new(HerbrandInterpretation::for_syntax(syntax));
        let sys = TransactionSystem::new(
            "herbrand-ctx",
            syntax.clone(),
            interp.clone(),
            Arc::new(ccopt_model::ic::TrueIc),
            ccopt_model::system::StateSpace::default(),
        );
        let mut ctx = HerbrandCtx {
            sys,
            interp,
            serial_outcomes: Vec::new(),
        };
        ctx.serial_outcomes = ctx.compute_serial_outcomes();
        ctx
    }

    /// Build a context for a full system's syntax.
    pub fn for_system(sys: &TransactionSystem) -> Self {
        Self::new(&sys.syntax)
    }

    /// The syntax under execution.
    pub fn syntax(&self) -> &Syntax {
        &self.sys.syntax
    }

    /// The shared term arena (for rendering).
    pub fn arena(&self) -> Arc<Mutex<TermArena>> {
        self.interp.arena()
    }

    /// Initial symbolic global state: every variable holds its `Init` term.
    pub fn initial_globals(&self) -> GlobalState {
        let n = self.sys.syntax.num_vars();
        GlobalState::new(
            (0..n as u32)
                .map(|v| Value::Term(self.interp.init_term(VarId(v))))
                .collect(),
        )
    }

    /// Run a step sequence symbolically; returns the final term of every
    /// global variable.
    ///
    /// # Panics
    /// Panics when the sequence is not executable (out of program order).
    pub fn run(&self, steps: &[StepId]) -> Vec<TermId> {
        let ex = Executor::new(&self.sys);
        let st = ex
            .run_sequence(self.initial_globals(), steps)
            .expect("herbrand execution of a legal schedule cannot fail");
        st.globals
            .iter()
            .map(|(_, v)| v.as_term().expect("herbrand run yields terms"))
            .collect()
    }

    /// Final terms of a whole schedule.
    pub fn run_schedule(&self, h: &Schedule) -> Vec<TermId> {
        self.run(h.steps())
    }

    /// Final terms of a *concatenation* of whole-transaction executions
    /// (repetitions and omissions allowed): each occurrence runs from fresh
    /// locals, carrying the symbolic globals forward.
    pub fn run_concat(&self, order: &[TxnId]) -> Vec<TermId> {
        let ex = Executor::new(&self.sys);
        let g = ex
            .run_concatenation(self.initial_globals(), order)
            .expect("herbrand concatenation cannot fail");
        g.iter()
            .map(|(_, v)| v.as_term().expect("herbrand run yields terms"))
            .collect()
    }

    /// The memoized serial outcomes: `(transaction order, final terms)` for
    /// each of the `n!` serial schedules.
    pub fn serial_outcomes(&self) -> &[(Vec<TxnId>, Vec<TermId>)] {
        &self.serial_outcomes
    }

    fn compute_serial_outcomes(&self) -> Vec<(Vec<TxnId>, Vec<TermId>)> {
        let format = self.sys.format();
        let ids: Vec<TxnId> = (0..format.len() as u32).map(TxnId).collect();
        permutations(&ids)
            .into_iter()
            .map(|order| {
                let s = Schedule::serial(&format, &order);
                let terms = self.run(s.steps());
                (order, terms)
            })
            .collect()
    }

    /// Does `h` produce the same final Herbrand state as some serial
    /// schedule? If so, return the witnessing transaction order.
    pub fn serial_witness(&self, h: &Schedule) -> Option<Vec<TxnId>> {
        let terms = self.run_schedule(h);
        self.serial_outcomes
            .iter()
            .find(|(_, t)| *t == terms)
            .map(|(o, _)| o.clone())
    }

    /// Render the final state of a run as `var = term` lines.
    pub fn render_final(&self, terms: &[TermId]) -> String {
        let arena = self.interp.arena();
        let arena = arena.lock();
        let names = &self.sys.syntax.vars;
        terms
            .iter()
            .enumerate()
            .map(|(i, &t)| format!("{} = {}", names[i], arena.render(t, Some(names))))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Group all schedules of the format by their final Herbrand state;
    /// returns `final-terms -> schedules`. Only for small formats.
    pub fn equivalence_classes(&self, schedules: &[Schedule]) -> HashMap<Vec<TermId>, Vec<usize>> {
        let mut map: HashMap<Vec<TermId>, Vec<usize>> = HashMap::new();
        for (i, h) in schedules.iter().enumerate() {
            map.entry(self.run_schedule(h)).or_default().push(i);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_schedules;
    use ccopt_model::systems;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn fig1_history_differs_from_both_serials() {
        // The exact claim of Section 4.3: h = (T11, T21, T12) yields
        // f12(f11(x), f21(f11(x))) — wait, under the full-args model:
        // h's x-term is f12(x0, f21(f11(x0))) which differs from both
        // serial terms f12(..) o f21 and f21 o f12.
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        assert!(ctx.serial_witness(&h).is_none());
        // Both serial schedules trivially match themselves.
        for (order, _) in ctx.serial_outcomes() {
            let s = Schedule::serial(&sys.format(), order);
            assert_eq!(ctx.serial_witness(&s), Some(order.clone()));
        }
    }

    #[test]
    fn serial_outcomes_are_distinct_for_fig1() {
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        let outcomes = ctx.serial_outcomes();
        assert_eq!(outcomes.len(), 2);
        assert_ne!(outcomes[0].1, outcomes[1].1);
    }

    #[test]
    fn herbrand_distinguishes_all_interleavings_on_one_variable() {
        // On fig1's format (2,1) there are 3 schedules; each has a distinct
        // final term (single variable, all steps update it).
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        let all = all_schedules(&sys.format());
        assert_eq!(all.len(), 3);
        let classes = ctx.equivalence_classes(&all);
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn disjoint_transactions_all_equivalent() {
        // Two transactions on different variables: every schedule has the
        // same final terms.
        use ccopt_model::syntax::SyntaxBuilder;
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("x"))
            .txn("T2", |t| t.update("y"))
            .build();
        let ctx = HerbrandCtx::new(&syn);
        let all = all_schedules(&syn.format());
        assert_eq!(all.len(), 3);
        let classes = ctx.equivalence_classes(&all);
        assert_eq!(classes.len(), 1);
    }

    #[test]
    fn render_final_is_readable() {
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        let terms = ctx.run_schedule(&h);
        let rendered = ctx.render_final(&terms);
        assert!(rendered.starts_with("x = f12("));
        assert!(rendered.contains("f21"));
    }

    #[test]
    fn run_is_deterministic() {
        let sys = systems::banking();
        let ctx = HerbrandCtx::for_system(&sys);
        let s = Schedule::serial(&sys.format(), &[TxnId(2), TxnId(0), TxnId(1)]);
        assert_eq!(ctx.run_schedule(&s), ctx.run_schedule(&s));
    }
}
