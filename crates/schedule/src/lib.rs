//! # `ccopt-schedule` — schedules and the correctness-class hierarchy
//!
//! Section 3.1 of the paper: "A *schedule* (a log or a history) of a
//! transaction system T is a permutation π of the set of steps in T such
//! that π(T_ij) < π(T_ik) for 1 ≤ j < k ≤ m_i."
//!
//! This crate provides:
//!
//! * [`schedule`] — the [`Schedule`] type, legality,
//!   serial schedules, permutation helpers and the multinomial count `|H|`;
//! * [`enumerate`] — exhaustive enumeration and uniform sampling of `H`;
//! * [`herbrand`] — symbolic execution under Herbrand semantics
//!   (Section 4.2), producing final-state terms;
//! * [`graph`] — the serialization (conflict) graph and conflict
//!   serializability (CSR), the efficient sufficient test;
//! * [`sr`] — `SR(T)`: serializability under Herbrand semantics, the
//!   optimal class for complete syntactic information (Theorem 3);
//! * [`wsr`] — `WSR(T)`: weak serializability (Section 4.3, Theorem 4);
//! * [`correct`] — `C(T)`: correctness against the integrity constraints
//!   over the system's check space;
//! * [`equivalence`] — final-state equivalence and step-commutation tests;
//! * [`classes`] — one-call analysis computing every class over `H`
//!   (the data behind the paper's information/performance ladder).

pub mod classes;
pub mod correct;
pub mod enumerate;
pub mod equivalence;
pub mod graph;
pub mod herbrand;
pub mod schedule;
pub mod sr;
pub mod wsr;

pub use classes::{Analysis, ClassSizes};
pub use enumerate::{all_schedules, count_schedules, sample_schedule};
pub use graph::{ConflictGraph, SerializationVerdict};
pub use herbrand::HerbrandCtx;
pub use schedule::Schedule;
