//! The [`Schedule`] type: a legal permutation of the steps of a format.

use ccopt_model::ids::{total_steps, StepId, TxnId};
use std::fmt;

/// A schedule (log, history): every step of the format exactly once, in an
/// order that respects each transaction's program order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Schedule(pub Vec<StepId>);

impl Schedule {
    /// Wrap a step sequence without checking legality.
    pub fn new_unchecked(steps: Vec<StepId>) -> Self {
        Schedule(steps)
    }

    /// Wrap a step sequence, verifying it is a legal schedule of `format`.
    pub fn new(steps: Vec<StepId>, format: &[u32]) -> Result<Self, String> {
        let s = Schedule(steps);
        s.check_legal(format)?;
        Ok(s)
    }

    /// The steps in order.
    pub fn steps(&self) -> &[StepId] {
        &self.0
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when empty (only legal for the empty format).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Check this is a permutation of all steps of `format` respecting
    /// program order.
    pub fn check_legal(&self, format: &[u32]) -> Result<(), String> {
        if self.0.len() != total_steps(format) {
            return Err(format!(
                "schedule has {} steps, format has {}",
                self.0.len(),
                total_steps(format)
            ));
        }
        let mut next = vec![0u32; format.len()];
        for &s in &self.0 {
            let i = s.txn.index();
            if i >= format.len() || s.idx >= format[i] {
                return Err(format!("unknown step {s}"));
            }
            if s.idx != next[i] {
                return Err(format!(
                    "step {s} out of program order (expected index {})",
                    next[i]
                ));
            }
            next[i] += 1;
        }
        Ok(())
    }

    /// True when the schedule is legal for `format`.
    pub fn is_legal(&self, format: &[u32]) -> bool {
        self.check_legal(format).is_ok()
    }

    /// Is this schedule *serial*: all steps of each transaction contiguous?
    pub fn is_serial(&self) -> bool {
        let mut seen_complete: Vec<TxnId> = Vec::new();
        let mut current: Option<TxnId> = None;
        for &s in &self.0 {
            match current {
                Some(t) if t == s.txn => {}
                _ => {
                    if seen_complete.contains(&s.txn) {
                        return false;
                    }
                    if let Some(t) = current {
                        seen_complete.push(t);
                    }
                    current = Some(s.txn);
                }
            }
        }
        true
    }

    /// For a serial schedule, the transaction order; `None` when not serial.
    pub fn serial_order(&self) -> Option<Vec<TxnId>> {
        if !self.is_serial() {
            return None;
        }
        let mut order = Vec::new();
        for &s in &self.0 {
            if order.last() != Some(&s.txn) {
                order.push(s.txn);
            }
        }
        Some(order)
    }

    /// The serial schedule executing transactions in the given order.
    pub fn serial(format: &[u32], order: &[TxnId]) -> Schedule {
        let mut steps = Vec::with_capacity(total_steps(format));
        for &t in order {
            for j in 0..format[t.index()] {
                steps.push(StepId { txn: t, idx: j });
            }
        }
        Schedule(steps)
    }

    /// All `n!` serial schedules of a format.
    pub fn all_serials(format: &[u32]) -> Vec<Schedule> {
        let n = format.len();
        let ids: Vec<TxnId> = (0..n as u32).map(TxnId).collect();
        permutations(&ids)
            .into_iter()
            .map(|order| Schedule::serial(format, &order))
            .collect()
    }

    /// Position of step `s` in the schedule.
    pub fn position(&self, s: StepId) -> Option<usize> {
        self.0.iter().position(|&x| x == s)
    }

    /// Swap the steps at positions `k` and `k+1`, returning the new schedule.
    /// Only legal when the two steps belong to different transactions.
    pub fn swap_adjacent(&self, k: usize) -> Option<Schedule> {
        if k + 1 >= self.0.len() || self.0[k].txn == self.0[k + 1].txn {
            return None;
        }
        let mut v = self.0.clone();
        v.swap(k, k + 1);
        Some(Schedule(v))
    }

    /// Project the schedule to the steps of one transaction (their order is
    /// by construction the program order).
    pub fn project(&self, t: TxnId) -> Vec<StepId> {
        self.0.iter().copied().filter(|s| s.txn == t).collect()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, ")")
    }
}

/// All permutations of `items` (Heap's algorithm); order is deterministic.
pub fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut work = items.to_vec();
    let n = work.len();
    if n == 0 {
        out.push(Vec::new());
        return out;
    }
    let mut c = vec![0usize; n];
    out.push(work.clone());
    let mut i = 0;
    while i < n {
        if c[i] < i {
            if i % 2 == 0 {
                work.swap(0, i);
            } else {
                work.swap(c[i], i);
            }
            out.push(work.clone());
            c[i] += 1;
            i = 0;
        } else {
            c[i] = 0;
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn legality_checks_order_and_completeness() {
        let format = [2, 1];
        let ok = Schedule::new(vec![sid(0, 0), sid(1, 0), sid(0, 1)], &format);
        assert!(ok.is_ok());
        // Out of program order.
        let bad = Schedule::new(vec![sid(0, 1), sid(0, 0), sid(1, 0)], &format);
        assert!(bad.is_err());
        // Missing a step.
        let bad = Schedule::new(vec![sid(0, 0), sid(0, 1)], &format);
        assert!(bad.is_err());
        // Unknown step.
        let bad = Schedule::new(vec![sid(0, 0), sid(0, 1), sid(5, 0)], &format);
        assert!(bad.is_err());
    }

    #[test]
    fn serial_detection() {
        let format = [2, 2];
        let s = Schedule::serial(&format, &[TxnId(1), TxnId(0)]);
        assert!(s.is_serial());
        assert_eq!(s.serial_order(), Some(vec![TxnId(1), TxnId(0)]));
        let interleaved = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1), sid(1, 1)]);
        assert!(!interleaved.is_serial());
        assert_eq!(interleaved.serial_order(), None);
    }

    #[test]
    fn returning_to_a_finished_transaction_is_not_serial() {
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        assert!(!h.is_serial());
    }

    #[test]
    fn all_serials_has_factorial_size() {
        let format = [1, 1, 1];
        let serials = Schedule::all_serials(&format);
        assert_eq!(serials.len(), 6);
        // All distinct and all serial.
        let set: std::collections::HashSet<_> = serials.iter().collect();
        assert_eq!(set.len(), 6);
        assert!(serials.iter().all(|s| s.is_serial()));
        assert!(serials.iter().all(|s| s.is_legal(&format)));
    }

    #[test]
    fn swap_adjacent_respects_transactions() {
        let format = [2, 1];
        let h = Schedule::new(vec![sid(0, 0), sid(1, 0), sid(0, 1)], &format).unwrap();
        // Swapping positions 0,1 (different txns) works.
        let g = h.swap_adjacent(0).unwrap();
        assert_eq!(g.steps()[0], sid(1, 0));
        assert!(g.is_legal(&format));
        // Positions out of range.
        assert!(h.swap_adjacent(2).is_none());
        // Same-transaction swap refused.
        let serial = Schedule::serial(&format, &[TxnId(0), TxnId(1)]);
        assert!(serial.swap_adjacent(0).is_none());
    }

    #[test]
    fn projection_recovers_program_order() {
        let h = Schedule::new_unchecked(vec![sid(1, 0), sid(0, 0), sid(1, 1), sid(0, 1)]);
        assert_eq!(h.project(TxnId(0)), vec![sid(0, 0), sid(0, 1)]);
        assert_eq!(h.project(TxnId(1)), vec![sid(1, 0), sid(1, 1)]);
    }

    #[test]
    fn permutations_count_and_uniqueness() {
        let p = permutations(&[1, 2, 3, 4]);
        assert_eq!(p.len(), 24);
        let set: std::collections::HashSet<_> = p.iter().collect();
        assert_eq!(set.len(), 24);
        assert_eq!(permutations::<i32>(&[]).len(), 1);
    }

    #[test]
    fn display_is_paper_notation() {
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0)]);
        assert_eq!(h.to_string(), "(T1,1, T2,1)");
    }
}
