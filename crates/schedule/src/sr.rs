//! `SR(T)`: serializability under Herbrand semantics (Section 4.2).
//!
//! "We say that a schedule h is *serializable* if its execution results are
//! the same as the execution results of some serial schedule under the
//! Herbrand semantics. By SR(T) we denote the set of all serializable
//! histories of T."
//!
//! `SR(T)` depends only on the *syntax* of `T` — which is exactly why the
//! serialization scheduler is realizable from complete syntactic
//! information, and optimal for it (Theorem 3).

use crate::herbrand::HerbrandCtx;
use crate::schedule::Schedule;
use ccopt_model::ids::TxnId;
use std::collections::HashSet;

/// Membership test with witness: `Some(order)` when `h ∈ SR(T)` with the
/// equivalent serial order, `None` otherwise.
pub fn sr_witness(ctx: &HerbrandCtx, h: &Schedule) -> Option<Vec<TxnId>> {
    ctx.serial_witness(h)
}

/// Is `h ∈ SR(T)`?
pub fn is_sr(ctx: &HerbrandCtx, h: &Schedule) -> bool {
    sr_witness(ctx, h).is_some()
}

/// Compute `SR(T)` over an explicit schedule list (e.g. all of `H`),
/// returning membership flags aligned with the input.
pub fn sr_membership(ctx: &HerbrandCtx, schedules: &[Schedule]) -> Vec<bool> {
    let serial_states: HashSet<_> = ctx
        .serial_outcomes()
        .iter()
        .map(|(_, terms)| terms.clone())
        .collect();
    schedules
        .iter()
        .map(|h| serial_states.contains(&ctx.run_schedule(h)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_schedules;
    use crate::graph::is_csr;
    use ccopt_model::ids::StepId;
    use ccopt_model::random::{random_system, RandomConfig};
    use ccopt_model::syntax::SyntaxBuilder;
    use ccopt_model::systems;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn fig1_h_is_not_sr() {
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        assert!(!is_sr(&ctx, &h));
    }

    #[test]
    fn serials_are_sr_with_their_own_witness() {
        let sys = systems::banking();
        let ctx = HerbrandCtx::for_system(&sys);
        for (order, _) in ctx.serial_outcomes() {
            let s = Schedule::serial(&sys.format(), order);
            let w = sr_witness(&ctx, &s).expect("serial must be SR");
            // The witness reproduces the same final terms — it may be another
            // order when two serials coincide, but for banking they differ.
            let ws = Schedule::serial(&sys.format(), &w);
            assert_eq!(ctx.run_schedule(&ws), ctx.run_schedule(&s));
        }
    }

    #[test]
    fn csr_implies_sr_on_small_random_systems() {
        // The fundamental inclusion CSR ⊆ SR, checked exhaustively.
        for seed in 0..15 {
            let cfg = RandomConfig {
                num_txns: 2,
                steps_per_txn: (1, 3),
                num_vars: 2,
                read_fraction: 0.25,
                ..RandomConfig::default()
            };
            let sys = random_system(&cfg, seed);
            let ctx = HerbrandCtx::for_system(&sys);
            for h in all_schedules(&sys.format()) {
                if is_csr(&sys.syntax, &h) {
                    assert!(
                        is_sr(&ctx, &h),
                        "CSR schedule {h} not SR in system seed {seed}"
                    );
                }
            }
        }
    }

    #[test]
    fn sr_membership_vector_is_consistent_with_pointwise() {
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        let all = all_schedules(&sys.format());
        let bulk = sr_membership(&ctx, &all);
        for (h, &m) in all.iter().zip(&bulk) {
            assert_eq!(is_sr(&ctx, h), m);
        }
        // Exactly the two serials are SR on fig1.
        assert_eq!(bulk.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn every_sr_witness_reproduces_the_final_state() {
        // Soundness of the witness on a blind-write syntax (where the
        // SR/CSR gap is largest): whenever sr_witness returns an order, the
        // corresponding serial schedule has identical final Herbrand terms.
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.write("x").write("y"))
            .txn("T2", |t| t.write("y").write("x"))
            .build();
        let ctx = HerbrandCtx::new(&syn);
        for h in all_schedules(&syn.format()) {
            if let Some(w) = sr_witness(&ctx, &h) {
                let ws = Schedule::serial(&syn.format(), &w);
                assert_eq!(ctx.run_schedule(&ws), ctx.run_schedule(&h));
            }
        }
    }
}
