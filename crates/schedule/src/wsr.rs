//! `WSR(T)`: weak serializability (Section 4.3).
//!
//! "A schedule h is said to be *weakly serializable* if starting from any
//! state E the execution of the schedule will end with a state which is
//! achievable by some concatenation of transactions, possibly with
//! repetitions and omissions of transactions, also starting from state E."
//!
//! Weak serializability uses the actual interpretations (all information
//! except the integrity constraints) and is the optimal class at that level
//! (Theorem 4). Fig. 1's history `(T11, T21, T12)` is the canonical member
//! of `WSR \ SR`.
//!
//! Deciding WSR over unbounded concatenations is undecidable in general; we
//! bound the concatenation length (see [`WsrOptions`]) and document the
//! bound in every verdict. For the paper's examples small bounds are exact.

use crate::schedule::Schedule;
use ccopt_model::exec::Executor;
use ccopt_model::ids::TxnId;
use ccopt_model::state::GlobalState;
use ccopt_model::system::TransactionSystem;

/// Options controlling the bounded concatenation search.
#[derive(Clone, Copy, Debug)]
pub struct WsrOptions {
    /// Maximum concatenation length (number of transaction executions).
    pub max_len: usize,
    /// When true (the default), one concatenation must work for *every*
    /// start state; when false, each start state may use its own
    /// concatenation (the weaker per-state reading of the definition).
    pub uniform: bool,
}

impl Default for WsrOptions {
    fn default() -> Self {
        WsrOptions {
            max_len: 4,
            uniform: true,
        }
    }
}

/// Positive verdicts carry the witnessing concatenation(s).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum WsrVerdict {
    /// One concatenation matches the schedule on every check state.
    Uniform(Vec<TxnId>),
    /// Per-state witnesses (aligned with the system's check states).
    PerState(Vec<Vec<TxnId>>),
    /// No concatenation within the bound matches.
    NotWeaklySerializable,
}

impl WsrVerdict {
    /// Is the schedule weakly serializable (under either reading)?
    pub fn is_member(&self) -> bool {
        !matches!(self, WsrVerdict::NotWeaklySerializable)
    }
}

/// Test `h ∈ WSR(T)` by bounded search over concatenations.
///
/// The search enumerates concatenations in length order (shortest witness
/// returned). The empty concatenation is included — a schedule that is the
/// identity on every check state is weakly serializable via omission of all
/// transactions.
pub fn wsr_verdict(sys: &TransactionSystem, h: &Schedule, opts: WsrOptions) -> WsrVerdict {
    let ex = Executor::new(sys);
    let inits = &sys.space.initial_states;
    if inits.is_empty() {
        // Vacuously weakly serializable; witness: empty concatenation.
        return WsrVerdict::Uniform(Vec::new());
    }
    // Final state of h from every init; execution failure disqualifies.
    let mut finals: Vec<GlobalState> = Vec::with_capacity(inits.len());
    for init in inits {
        match ex.run_sequence(init.clone(), h.steps()) {
            Ok(st) => finals.push(st.globals),
            Err(_) => return WsrVerdict::NotWeaklySerializable,
        }
    }

    if opts.uniform {
        match find_uniform_witness(&ex, inits, &finals, sys.num_txns(), opts.max_len) {
            Some(w) => WsrVerdict::Uniform(w),
            None => WsrVerdict::NotWeaklySerializable,
        }
    } else {
        let mut witnesses = Vec::with_capacity(inits.len());
        for (init, fin) in inits.iter().zip(&finals) {
            match find_witness_for_state(&ex, init, fin, sys.num_txns(), opts.max_len) {
                Some(w) => witnesses.push(w),
                None => return WsrVerdict::NotWeaklySerializable,
            }
        }
        WsrVerdict::PerState(witnesses)
    }
}

/// Is `h ∈ WSR(T)` under the default options?
pub fn is_wsr(sys: &TransactionSystem, h: &Schedule) -> bool {
    wsr_verdict(sys, h, WsrOptions::default()).is_member()
}

fn find_uniform_witness(
    ex: &Executor<'_>,
    inits: &[GlobalState],
    finals: &[GlobalState],
    n: usize,
    max_len: usize,
) -> Option<Vec<TxnId>> {
    let mut seq: Vec<TxnId> = Vec::new();
    for len in 0..=max_len {
        seq.clear();
        seq.resize(len, TxnId(0));
        if search_uniform(ex, inits, finals, n, &mut seq, 0) {
            return Some(seq);
        }
    }
    None
}

fn search_uniform(
    ex: &Executor<'_>,
    inits: &[GlobalState],
    finals: &[GlobalState],
    n: usize,
    seq: &mut [TxnId],
    pos: usize,
) -> bool {
    if pos == seq.len() {
        return inits.iter().zip(finals).all(|(init, fin)| {
            ex.run_concatenation(init.clone(), seq)
                .map(|g| &g == fin)
                .unwrap_or(false)
        });
    }
    for t in 0..n {
        seq[pos] = TxnId(t as u32);
        if search_uniform(ex, inits, finals, n, seq, pos + 1) {
            return true;
        }
    }
    false
}

fn find_witness_for_state(
    ex: &Executor<'_>,
    init: &GlobalState,
    fin: &GlobalState,
    n: usize,
    max_len: usize,
) -> Option<Vec<TxnId>> {
    // BFS over concatenations from this single state: states reachable by
    // serial executions, tracking the shortest generating sequence.
    use std::collections::{HashMap, VecDeque};
    let mut seen: HashMap<GlobalState, Vec<TxnId>> = HashMap::new();
    let mut queue = VecDeque::new();
    seen.insert(init.clone(), Vec::new());
    queue.push_back(init.clone());
    if init == fin {
        return Some(Vec::new());
    }
    while let Some(g) = queue.pop_front() {
        let path = seen[&g].clone();
        if path.len() >= max_len {
            continue;
        }
        for t in 0..n {
            let t = TxnId(t as u32);
            let Ok(st) = ex.run_transaction(g.clone(), t) else {
                continue;
            };
            let g2 = st.globals;
            if seen.contains_key(&g2) {
                continue;
            }
            let mut p2 = path.clone();
            p2.push(t);
            if &g2 == fin {
                return Some(p2);
            }
            seen.insert(g2.clone(), p2);
            queue.push_back(g2);
        }
    }
    None
}

/// Membership flags of `WSR(T)` over an explicit schedule list.
pub fn wsr_membership(
    sys: &TransactionSystem,
    schedules: &[Schedule],
    opts: WsrOptions,
) -> Vec<bool> {
    schedules
        .iter()
        .map(|h| wsr_verdict(sys, h, opts).is_member())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::all_schedules;
    use crate::herbrand::HerbrandCtx;
    use crate::sr::is_sr;
    use ccopt_model::ids::StepId;
    use ccopt_model::systems;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn fig1_history_is_weakly_serializable_via_t2_t1() {
        let sys = systems::fig1();
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        let v = wsr_verdict(&sys, &h, WsrOptions::default());
        assert_eq!(v, WsrVerdict::Uniform(vec![TxnId(1), TxnId(0)]));
    }

    #[test]
    fn fig1_exhibits_the_sr_wsr_gap() {
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        assert!(!is_sr(&ctx, &h));
        assert!(is_wsr(&sys, &h));
    }

    #[test]
    fn sr_subset_of_wsr_on_fig1() {
        // SR ⊆ WSR: any serial-equivalent schedule is equivalent to a
        // concatenation without repetitions or omissions.
        let sys = systems::fig1();
        let ctx = HerbrandCtx::for_system(&sys);
        for h in all_schedules(&sys.format()) {
            if is_sr(&ctx, &h) {
                assert!(is_wsr(&sys, &h), "SR schedule {h} not WSR");
            }
        }
    }

    #[test]
    fn per_state_mode_is_no_stricter_than_uniform() {
        let sys = systems::fig1();
        let opts_uniform = WsrOptions::default();
        let opts_per_state = WsrOptions {
            uniform: false,
            ..WsrOptions::default()
        };
        for h in all_schedules(&sys.format()) {
            let u = wsr_verdict(&sys, &h, opts_uniform).is_member();
            let p = wsr_verdict(&sys, &h, opts_per_state).is_member();
            if u {
                assert!(p, "uniform member {h} missing per-state");
            }
        }
    }

    #[test]
    fn empty_witness_for_identity_schedules() {
        // A system whose transactions are identities: any schedule equals
        // the empty concatenation.
        use ccopt_model::expr::Expr;
        use ccopt_model::ic::TrueIc;
        use ccopt_model::interp::ExprInterpretation;
        use ccopt_model::syntax::SyntaxBuilder;
        use ccopt_model::system::StateSpace;
        use std::sync::Arc;
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x"))
            .txn("T2", |t| t.update("x"))
            .build();
        let interp = ExprInterpretation::new(vec![vec![Expr::Local(0)], vec![Expr::Local(0)]]);
        let sys = ccopt_model::system::TransactionSystem::new(
            "identity",
            syn,
            Arc::new(interp),
            Arc::new(TrueIc),
            StateSpace::from_ints(&[&[3], &[5]]),
        );
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0)]);
        let v = wsr_verdict(&sys, &h, WsrOptions::default());
        assert_eq!(v, WsrVerdict::Uniform(vec![]));
    }

    #[test]
    fn non_wsr_schedule_detected() {
        // Theorem 2 adversary system with TrueIc and rich check states:
        // h = (T11, T21, T12): x -> 2(x+1) - 1 = 2x + 1.
        // Concatenations generate compositions of (x) (identity from T1) and
        // 2x; from x=0 the reachable values are {0}... T1 alone: x+1-1 = x.
        // T2: 2x. From 0: {0}. h gives 1 — unreachable. Not WSR.
        let sys = systems::thm2_adversary();
        let h = Schedule::new_unchecked(vec![sid(0, 0), sid(1, 0), sid(0, 1)]);
        let v = wsr_verdict(&sys, &h, WsrOptions::default());
        assert_eq!(v, WsrVerdict::NotWeaklySerializable);
    }

    #[test]
    fn membership_vector_matches_pointwise() {
        let sys = systems::fig1();
        let all = all_schedules(&sys.format());
        let opts = WsrOptions::default();
        let bulk = wsr_membership(&sys, &all, opts);
        for (h, &m) in all.iter().zip(&bulk) {
            assert_eq!(wsr_verdict(&sys, h, opts).is_member(), m);
        }
        // All three schedules of fig1 are weakly serializable.
        assert_eq!(bulk.iter().filter(|&&b| b).count(), 3);
    }
}
