//! Property tests for the schedule crate's core invariants.

use ccopt_model::random::{random_system, RandomConfig};
use ccopt_schedule::enumerate::{all_schedules, count_schedules, sample_schedule};
use ccopt_schedule::graph::{csr_verdict, SerializationVerdict};
use ccopt_schedule::herbrand::HerbrandCtx;
use ccopt_schedule::schedule::{permutations, Schedule};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn small_format() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(1u32..=3, 1..=3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// |enumeration| equals the multinomial count, with no duplicates and
    /// only legal schedules.
    #[test]
    fn enumeration_is_complete_and_legal(format in small_format()) {
        let all = all_schedules(&format);
        prop_assert_eq!(all.len() as u128, count_schedules(&format));
        let set: std::collections::HashSet<_> = all.iter().collect();
        prop_assert_eq!(set.len(), all.len());
        for h in &all {
            prop_assert!(h.is_legal(&format));
        }
    }

    /// Sampled schedules are always legal.
    #[test]
    fn samples_are_legal(format in small_format(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = sample_schedule(&format, &mut rng);
        prop_assert!(h.is_legal(&format));
    }

    /// Serial schedules and their orders round-trip.
    #[test]
    fn serial_round_trip(format in small_format()) {
        for s in Schedule::all_serials(&format) {
            let order = s.serial_order().expect("serial");
            prop_assert_eq!(Schedule::serial(&format, &order), s);
        }
    }

    /// Adjacent swaps preserve legality and are involutive.
    #[test]
    fn swaps_are_involutive(format in small_format(), seed in 0u64..1000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let h = sample_schedule(&format, &mut rng);
        for k in 0..h.len().saturating_sub(1) {
            if let Some(g) = h.swap_adjacent(k) {
                prop_assert!(g.is_legal(&format));
                prop_assert_eq!(g.swap_adjacent(k).expect("swap back"), h.clone());
            }
        }
    }

    /// Herbrand symbolic execution is deterministic and every CSR witness
    /// reproduces the final state.
    #[test]
    fn herbrand_and_csr_agree(seed in 0u64..300) {
        let cfg = RandomConfig {
            num_txns: 2,
            steps_per_txn: (1, 3),
            num_vars: 2,
            read_fraction: 0.25,
            hot_fraction: 0.0,
            num_check_states: 2,
            value_range: (-2, 2),
        };
        let sys = random_system(&cfg, seed);
        let ctx = HerbrandCtx::for_system(&sys);
        for h in all_schedules(&sys.format()) {
            let t1 = ctx.run_schedule(&h);
            let t2 = ctx.run_schedule(&h);
            prop_assert_eq!(&t1, &t2);
            if let SerializationVerdict::Serializable(order) = csr_verdict(&sys.syntax, &h) {
                let s = Schedule::serial(&sys.format(), &order);
                prop_assert_eq!(ctx.run_schedule(&s), t1, "CSR witness mismatch for {}", h);
            }
        }
    }

    /// Permutation helper produces n! distinct outputs.
    #[test]
    fn permutations_count(n in 0usize..5) {
        let items: Vec<usize> = (0..n).collect();
        let perms = permutations(&items);
        let expected: usize = (1..=n.max(1)).product();
        prop_assert_eq!(perms.len(), expected);
        let set: std::collections::HashSet<_> = perms.iter().collect();
        prop_assert_eq!(set.len(), perms.len());
    }
}
