//! # `ccopt-schedulers` — practical online schedulers
//!
//! The paper's framework evaluates *any* concurrency control as a scheduler
//! `S : H → C(T)` with a fixpoint set `P`. This crate implements the
//! classical scheduler families as [`OnlineScheduler`]s so they can be
//! ranked on the paper's performance axis (`|P|/|H|`, experiment T2) and
//! driven by the Section 6 simulator (experiment T3):
//!
//! * [`serial`] — the paper's introductory strawman: "delay all other user
//!   requests until the first user logs out" (first-come whole-transaction
//!   serialization). Fixpoints: the serial histories.
//! * [`two_phase`] — 2PL entrusted to the lock-respecting scheduler
//!   (re-exported from `ccopt-locking`). Fixpoints: histories whose lock
//!   acquisitions never block.
//! * [`sgt`] — serialization-graph testing: grant unless the conflict graph
//!   would close a cycle. Fixpoints: exactly the conflict-serializable
//!   histories — the best any syntactic scheduler can do efficiently.
//! * [`timestamp`] — timestamp ordering: conflicts must occur in arrival-
//!   timestamp order.
//! * [`occ`] — optimistic concurrency control with backward validation
//!   (Kung & Robinson's later line of work): everything is granted, but a
//!   failed validation re-serializes the transaction's commit.
//! * [`weak`] — the semantic (weak-serialization) scheduler: the Theorem 4
//!   optimum packaged as a practical scheduler.
//! * [`suite`] — one-call construction of the whole scheduler line-up for a
//!   system.
//!
//! ```
//! use ccopt_schedulers::suite::scheduler_suite;
//! use ccopt_core::fixpoint::fixpoint_ratio;
//! use ccopt_model::systems;
//!
//! let sys = systems::fig1();
//! for mut s in scheduler_suite(&sys) {
//!     let r = fixpoint_ratio(s.as_mut(), &sys.format());
//!     assert!((0.0..=1.0).contains(&r));
//! }
//! ```

pub mod occ;
pub mod serial;
pub mod sgt;
pub mod suite;
pub mod timestamp;
pub mod weak;

/// 2PL + LRS, packaged.
pub mod two_phase {
    use ccopt_locking::lrs::LrsScheduler;
    use ccopt_locking::policy::LockingPolicy;
    use ccopt_locking::two_phase::TwoPhasePolicy;
    use ccopt_model::system::TransactionSystem;

    /// Build the 2PL lock-manager scheduler for a system: transform the
    /// syntax with the [`TwoPhasePolicy`] and entrust the result to the
    /// lock-respecting scheduler.
    pub fn two_phase_scheduler(sys: &TransactionSystem) -> LrsScheduler {
        LrsScheduler::new(TwoPhasePolicy.transform(&sys.syntax))
    }
}

pub use ccopt_core::scheduler::OnlineScheduler;
pub use occ::OccScheduler;
pub use serial::SerialScheduler;
pub use sgt::SgtScheduler;
pub use timestamp::TimestampScheduler;
pub use weak::WeakScheduler;
