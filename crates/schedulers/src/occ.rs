//! Optimistic concurrency control with backward validation.
//!
//! H. T. Kung's own later line of work (Kung & Robinson 1981) fits the
//! paper's framework as a scheduler that *never delays reads or writes* —
//! every step is granted immediately — and pays at commit: a transaction
//! validates when its last step arrives, checking that no transaction that
//! committed during its lifetime wrote anything it accessed. A failed
//! validation re-serializes the final step (abort/restart in a real
//! engine; here the commit waits, which is what the fixpoint measure sees).

use ccopt_core::info::InfoLevel;
use ccopt_core::scheduler::OnlineScheduler;
use ccopt_model::ids::{StepId, TxnId, VarId};
use ccopt_model::syntax::Syntax;
use std::collections::BTreeSet;

/// The OCC scheduler (backward validation at the final step).
#[derive(Clone, Debug)]
pub struct OccScheduler {
    syntax: Syntax,
    /// Commit counter (validation clock).
    clock: u64,
    /// Per transaction: start tick (first step arrival).
    start: Vec<Option<u64>>,
    /// Per transaction: access set so far.
    access: Vec<BTreeSet<VarId>>,
    /// Per transaction: granted step count.
    granted_count: Vec<u32>,
    /// Committed write sets with commit ticks: `(tick, writes)`.
    committed: Vec<(u64, BTreeSet<VarId>)>,
    /// Parked final steps awaiting validation.
    parked: Vec<StepId>,
    forced: usize,
}

impl OccScheduler {
    /// Build for a syntax.
    pub fn new(syntax: Syntax) -> Self {
        let n = syntax.num_txns();
        OccScheduler {
            syntax,
            clock: 0,
            start: vec![None; n],
            access: vec![BTreeSet::new(); n],
            granted_count: vec![0; n],
            committed: Vec::new(),
            parked: Vec::new(),
            forced: 0,
        }
    }

    fn is_final_step(&self, step: StepId) -> bool {
        step.idx as usize + 1 == self.syntax.transactions[step.txn.index()].steps.len()
    }

    /// Backward validation: no committed transaction with commit tick after
    /// our start wrote anything we accessed.
    fn validates(&self, t: TxnId, including: Option<VarId>) -> bool {
        let Some(start) = self.start[t.index()] else {
            return true;
        };
        let mut accessed = self.access[t.index()].clone();
        if let Some(v) = including {
            accessed.insert(v);
        }
        for (tick, writes) in &self.committed {
            if *tick > start && writes.intersection(&accessed).next().is_some() {
                return false;
            }
        }
        true
    }

    fn commit(&mut self, t: TxnId) {
        self.clock += 1;
        let writes: BTreeSet<VarId> = self.access[t.index()]
            .iter()
            .copied()
            .filter(|&v| {
                self.syntax.transactions[t.index()]
                    .steps
                    .iter()
                    .any(|s| s.var == v && s.kind.writes())
            })
            .collect();
        self.committed.push((self.clock, writes));
    }

    fn grant(&mut self, step: StepId) {
        let ti = step.txn.index();
        if self.start[ti].is_none() {
            // Read phase begins; start tick is the current commit clock.
            self.start[ti] = Some(self.clock);
        }
        self.access[ti].insert(self.syntax.var_of(step));
        self.granted_count[ti] += 1;
        if self.is_final_step(step) {
            self.commit(step.txn);
        }
    }

    fn retry_parked(&mut self) -> Vec<StepId> {
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            let mut k = 0;
            while k < self.parked.len() {
                let cand = self.parked[k];
                let v = self.syntax.var_of(cand);
                if self.validates(cand.txn, Some(v)) {
                    self.parked.remove(k);
                    self.grant(cand);
                    out.push(cand);
                    progressed = true;
                } else {
                    k += 1;
                }
            }
            if !progressed {
                return out;
            }
        }
    }
}

impl OnlineScheduler for OccScheduler {
    fn reset(&mut self) {
        self.clock = 0;
        self.start.iter_mut().for_each(|s| *s = None);
        self.access.iter_mut().for_each(BTreeSet::clear);
        self.granted_count.iter_mut().for_each(|c| *c = 0);
        self.committed.clear();
        self.parked.clear();
        self.forced = 0;
    }

    fn on_request(&mut self, step: StepId) -> Vec<StepId> {
        let mut out = Vec::new();
        if self.parked.iter().any(|p| p.txn == step.txn) {
            self.parked.push(step);
        } else if !self.is_final_step(step) {
            // Read/write phase: optimistic, always granted.
            self.grant(step);
            out.push(step);
        } else {
            // Commit point: validate.
            let v = self.syntax.var_of(step);
            if self.validates(step.txn, Some(v)) {
                self.grant(step);
                out.push(step);
            } else {
                self.parked.push(step);
            }
        }
        out.extend(self.retry_parked());
        out
    }

    fn finish(&mut self) -> Vec<StepId> {
        let mut out = self.retry_parked();
        // Failed validations restart: emit in arrival order (reported via
        // `forced_flushes`).
        let leftovers: Vec<StepId> = std::mem::take(&mut self.parked);
        self.forced += leftovers.len();
        for &s in &leftovers {
            self.grant(s);
        }
        out.extend(leftovers);
        out
    }

    fn name(&self) -> &str {
        "OCC"
    }

    fn info(&self) -> InfoLevel {
        InfoLevel::Syntactic
    }

    fn forced_flushes(&self) -> usize {
        self.forced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_core::fixpoint::fixpoint_set;
    use ccopt_core::scheduler::run_scheduler;
    use ccopt_model::systems;
    use ccopt_schedule::enumerate::all_schedules;
    use ccopt_schedule::graph::is_csr;
    use ccopt_schedule::schedule::Schedule;

    #[test]
    fn serial_histories_validate() {
        let sys = systems::fig3_pair();
        let mut s = OccScheduler::new(sys.syntax.clone());
        for serial in Schedule::all_serials(&sys.format()) {
            let run = run_scheduler(&mut s, &serial);
            assert!(run.no_delays, "serial {serial} failed OCC validation");
        }
    }

    #[test]
    fn fixpoints_are_a_subset_of_csr() {
        for sys in [systems::fig1(), systems::fig3_pair(), systems::rw_pair(1)] {
            let mut s = OccScheduler::new(sys.syntax.clone());
            let p = fixpoint_set(&mut s, &sys.format());
            for h in &p {
                assert!(
                    is_csr(&sys.syntax, h),
                    "OCC fixpoint {h} not CSR in {}",
                    sys.name
                );
            }
        }
    }

    #[test]
    fn interleaved_writer_fails_validation() {
        use ccopt_model::ids::StepId;
        // fig3_pair, history (T1:x, T2:y, T2:x, T1:y): T2 commits during
        // T1's lifetime having written y which T1 later reads... T1's final
        // step is its commit: by then T2 (committed) wrote x,y; T1 accessed
        // x before and y at commit — validation fails.
        let sys = systems::fig3_pair();
        let mut s = OccScheduler::new(sys.syntax.clone());
        s.reset();
        assert!(!s.on_request(StepId::new(0, 0)).is_empty()); // T1 x
        assert!(!s.on_request(StepId::new(1, 0)).is_empty()); // T2 y
        assert!(!s.on_request(StepId::new(1, 1)).is_empty()); // T2 x + commit
        let got = s.on_request(StepId::new(0, 1)); // T1 y + commit: fail
        assert!(got.is_empty());
        assert_eq!(s.finish(), vec![StepId::new(0, 1)]);
    }

    #[test]
    fn outputs_are_legal() {
        let sys = systems::fig3_pair();
        let mut s = OccScheduler::new(sys.syntax.clone());
        for h in all_schedules(&sys.format()) {
            let run = run_scheduler(&mut s, &h);
            assert!(run.output.is_legal(&sys.format()));
        }
    }

    #[test]
    fn disjoint_transactions_never_fail_validation() {
        use ccopt_model::syntax::SyntaxBuilder;
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("x"))
            .txn("T2", |t| t.update("y").update("y"))
            .build();
        let mut s = OccScheduler::new(syn.clone());
        let p = fixpoint_set(&mut s, &syn.format());
        assert_eq!(
            p.len() as u128,
            ccopt_schedule::enumerate::count_schedules(&syn.format())
        );
    }
}
