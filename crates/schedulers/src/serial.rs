//! The serial scheduler (Sections 1 and 4.1).
//!
//! "One sure way to secure consistency would be to delay all other user
//! requests until the first user logs out, then let the second user go, and
//! so on. [...] It requires no information about the transactions except
//! for a user identification for each request." Theorem 2 proves this
//! strawman *optimal* for minimum information.

use ccopt_core::info::InfoLevel;
use ccopt_core::scheduler::OnlineScheduler;
use ccopt_model::ids::{StepId, TxnId};

/// First-come serial scheduler: grants the steps of one transaction at a
/// time, in arrival order of first steps.
#[derive(Clone, Debug)]
pub struct SerialScheduler {
    /// Steps per transaction (the format — the only information used).
    format: Vec<u32>,
    current: Option<TxnId>,
    granted_in_current: u32,
    pending: Vec<StepId>,
}

impl SerialScheduler {
    /// Build from a format.
    pub fn new(format: &[u32]) -> Self {
        SerialScheduler {
            format: format.to_vec(),
            current: None,
            granted_in_current: 0,
            pending: Vec::new(),
        }
    }

    fn try_grant_now(&mut self, step: StepId) -> bool {
        match self.current {
            None => {
                self.current = Some(step.txn);
                self.granted_in_current = 1;
                true
            }
            Some(t) if t == step.txn => {
                self.granted_in_current += 1;
                true
            }
            _ => false,
        }
    }

    /// Finish the current transaction if complete, then drain pending steps
    /// of (successively) the earliest-arrived transactions.
    fn roll(&mut self) -> Vec<StepId> {
        let mut granted = Vec::new();
        loop {
            if let Some(t) = self.current {
                if self.granted_in_current == self.format[t.index()] {
                    self.current = None;
                    self.granted_in_current = 0;
                } else {
                    // Current transaction still running: grant its pending
                    // steps in order, if any arrived while others held the
                    // floor.
                    if let Some(pos) = self.pending.iter().position(|s| s.txn == t) {
                        let s = self.pending.remove(pos);
                        self.granted_in_current += 1;
                        granted.push(s);
                        continue;
                    }
                    break;
                }
            } else if let Some(&first) = self.pending.first() {
                self.pending.remove(0);
                self.current = Some(first.txn);
                self.granted_in_current = 1;
                granted.push(first);
            } else {
                break;
            }
        }
        granted
    }
}

impl OnlineScheduler for SerialScheduler {
    fn reset(&mut self) {
        self.current = None;
        self.granted_in_current = 0;
        self.pending.clear();
    }

    fn on_request(&mut self, step: StepId) -> Vec<StepId> {
        let mut granted = Vec::new();
        if self.pending.iter().any(|p| p.txn == step.txn) {
            // Program order within the queue.
            self.pending.push(step);
        } else if self.try_grant_now(step) {
            granted.push(step);
        } else {
            self.pending.push(step);
        }
        granted.extend(self.roll());
        granted
    }

    fn finish(&mut self) -> Vec<StepId> {
        self.roll()
    }

    fn name(&self) -> &str {
        "serial"
    }

    fn info(&self) -> InfoLevel {
        InfoLevel::FormatOnly
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_core::fixpoint::{fixpoint_ratio, fixpoint_set};
    use ccopt_core::scheduler::run_scheduler;
    use ccopt_schedule::enumerate::for_each_schedule;
    use ccopt_schedule::schedule::Schedule;

    fn sid(t: u32, j: u32) -> StepId {
        StepId::new(t, j)
    }

    #[test]
    fn fixpoints_are_exactly_the_serial_histories() {
        let format = [2, 2];
        let mut s = SerialScheduler::new(&format);
        let p = fixpoint_set(&mut s, &format);
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(Schedule::is_serial));
    }

    #[test]
    fn outputs_are_always_serial_and_legal() {
        let format = [2, 1, 2];
        let mut s = SerialScheduler::new(&format);
        for_each_schedule(&format, |h| {
            let run = run_scheduler(&mut s, h);
            assert!(run.output.is_serial(), "not serial for {h}: {}", run.output);
            assert!(run.output.is_legal(&format));
            true
        });
    }

    #[test]
    fn ratio_matches_closed_form() {
        // For format (m1, m2): |serial| = 2, |H| = C(m1+m2, m1).
        let format = [3, 2];
        let mut s = SerialScheduler::new(&format);
        let r = fixpoint_ratio(&mut s, &format);
        assert!((r - 2.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn floor_is_granted_in_arrival_order() {
        let mut s = SerialScheduler::new(&[1, 1, 1]);
        s.reset();
        assert_eq!(s.on_request(sid(2, 0)), vec![sid(2, 0)]);
        // T3 finished (single step); next arrival gets the floor at once.
        assert_eq!(s.on_request(sid(0, 0)), vec![sid(0, 0)]);
        assert_eq!(s.on_request(sid(1, 0)), vec![sid(1, 0)]);
        assert!(s.finish().is_empty());
    }

    #[test]
    fn queued_transactions_run_in_first_arrival_order() {
        let mut s = SerialScheduler::new(&[2, 2]);
        s.reset();
        assert_eq!(s.on_request(sid(0, 0)), vec![sid(0, 0)]);
        assert_eq!(s.on_request(sid(1, 0)), vec![]);
        assert_eq!(s.on_request(sid(1, 1)), vec![]);
        // T1 finishes; T2's two queued steps flush in order.
        assert_eq!(
            s.on_request(sid(0, 1)),
            vec![sid(0, 1), sid(1, 0), sid(1, 1)]
        );
    }
}
