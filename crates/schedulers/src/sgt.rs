//! Serialization-graph testing (SGT).
//!
//! The paper (Section 5.3) observes that "most sophisticated serialization
//! principles require that the scheduler remembers which transaction read
//! data first from which, and thus they cannot be implemented by locks
//! alone". SGT is that sophisticated principle: maintain the conflict graph
//! of granted steps and grant a request iff it keeps the graph acyclic.
//! Its fixpoint set is exactly CSR — the efficiently-decidable core of the
//! Theorem 3 optimum `SR(T)`.

use ccopt_core::info::InfoLevel;
use ccopt_core::scheduler::OnlineScheduler;
use ccopt_model::ids::StepId;
use ccopt_model::syntax::Syntax;

/// The SGT scheduler.
#[derive(Clone, Debug)]
pub struct SgtScheduler {
    syntax: Syntax,
    /// Granted steps in order.
    granted: Vec<StepId>,
    /// Parked requests in arrival order.
    parked: Vec<StepId>,
    forced: usize,
}

impl SgtScheduler {
    /// Build for a system's syntax (SGT needs the conflict relation, i.e.
    /// complete syntactic information).
    pub fn new(syntax: Syntax) -> Self {
        SgtScheduler {
            syntax,
            granted: Vec::new(),
            parked: Vec::new(),
            forced: 0,
        }
    }

    /// Would granting `step` now keep the serialization graph acyclic?
    fn grant_is_safe(&self, step: StepId) -> bool {
        let n = self.syntax.num_txns();
        let mut edges = vec![false; n * n];
        let mut all: Vec<StepId> = self.granted.clone();
        all.push(step);
        for (p, &a) in all.iter().enumerate() {
            for &b in &all[p + 1..] {
                if self.syntax.conflict(a, b) {
                    edges[a.txn.index() * n + b.txn.index()] = true;
                }
            }
        }
        acyclic(&edges, n)
    }

    /// Program order: a step may only be granted when all earlier steps of
    /// its transaction have been granted.
    fn in_program_order(&self, step: StepId) -> bool {
        let done = self.granted.iter().filter(|s| s.txn == step.txn).count() as u32;
        done == step.idx
    }

    fn try_grant(&mut self, step: StepId) -> bool {
        if self.in_program_order(step) && self.grant_is_safe(step) {
            self.granted.push(step);
            true
        } else {
            false
        }
    }

    fn retry_parked(&mut self) -> Vec<StepId> {
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            let mut k = 0;
            while k < self.parked.len() {
                let cand = self.parked[k];
                if self.try_grant(cand) {
                    self.parked.remove(k);
                    out.push(cand);
                    progressed = true;
                } else {
                    k += 1;
                }
            }
            if !progressed {
                return out;
            }
        }
    }
}

fn acyclic(edges: &[bool], n: usize) -> bool {
    // Kahn's algorithm.
    let mut indeg = vec![0usize; n];
    for i in 0..n {
        for (k, d) in indeg.iter_mut().enumerate() {
            if edges[i * n + k] {
                *d += 1;
            }
        }
    }
    let mut removed = vec![false; n];
    for _ in 0..n {
        let Some(next) = (0..n).find(|&k| !removed[k] && indeg[k] == 0) else {
            return false;
        };
        removed[next] = true;
        for (m, d) in indeg.iter_mut().enumerate() {
            if edges[next * n + m] {
                *d -= 1;
            }
        }
    }
    true
}

impl OnlineScheduler for SgtScheduler {
    fn reset(&mut self) {
        self.granted.clear();
        self.parked.clear();
        self.forced = 0;
    }

    fn on_request(&mut self, step: StepId) -> Vec<StepId> {
        let mut out = Vec::new();
        if self.parked.iter().any(|p| p.txn == step.txn) {
            self.parked.push(step);
        } else if self.try_grant(step) {
            out.push(step);
        } else {
            self.parked.push(step);
        }
        out.extend(self.retry_parked());
        out
    }

    fn finish(&mut self) -> Vec<StepId> {
        let mut out = self.retry_parked();
        if !self.parked.is_empty() {
            // The remaining parked steps cannot be granted without a cycle
            // — the aborted-and-restarted transactions replay their steps
            // in arrival order (the run already counts as delayed, and
            // `forced_flushes` reports the restart).
            self.forced += self.parked.len();
            out.append(&mut self.parked);
            for &s in &out {
                if !self.granted.contains(&s) {
                    self.granted.push(s);
                }
            }
        }
        out
    }

    fn name(&self) -> &str {
        "SGT"
    }

    fn info(&self) -> InfoLevel {
        InfoLevel::Syntactic
    }

    fn forced_flushes(&self) -> usize {
        self.forced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_core::fixpoint::fixpoint_set;
    use ccopt_core::scheduler::run_scheduler;
    use ccopt_model::systems;
    use ccopt_schedule::enumerate::all_schedules;
    use ccopt_schedule::graph::is_csr;

    #[test]
    fn fixpoint_set_is_exactly_csr() {
        for sys in [systems::fig1(), systems::fig3_pair(), systems::rw_pair(1)] {
            let mut s = SgtScheduler::new(sys.syntax.clone());
            let p = fixpoint_set(&mut s, &sys.format());
            let csr: std::collections::BTreeSet<_> = all_schedules(&sys.format())
                .into_iter()
                .filter(|h| is_csr(&sys.syntax, h))
                .collect();
            assert_eq!(p, csr, "mismatch on {}", sys.name);
        }
    }

    #[test]
    fn outputs_are_legal_for_every_history() {
        let sys = systems::fig3_pair();
        let mut s = SgtScheduler::new(sys.syntax.clone());
        for h in all_schedules(&sys.format()) {
            let run = run_scheduler(&mut s, &h);
            assert!(run.output.is_legal(&sys.format()), "illegal for {h}");
        }
    }

    #[test]
    fn sgt_strictly_beats_2pl_on_rw_pair() {
        // SGT's fixpoint set (CSR) strictly contains 2PL's (lock-compatible
        // histories) on workloads with private variables.
        let sys = systems::rw_pair(2);
        let mut sgt = SgtScheduler::new(sys.syntax.clone());
        let mut tpl = crate::two_phase::two_phase_scheduler(&sys);
        let p_sgt = fixpoint_set(&mut sgt, &sys.format());
        let p_tpl = fixpoint_set(&mut tpl, &sys.format());
        assert!(p_tpl.is_subset(&p_sgt));
        assert!(
            p_tpl.len() < p_sgt.len(),
            "expected strict: 2PL {} vs SGT {}",
            p_tpl.len(),
            p_sgt.len()
        );
    }

    #[test]
    fn parked_cycle_is_flushed_at_finish() {
        use ccopt_model::ids::StepId;
        let sys = systems::fig3_pair();
        let mut s = SgtScheduler::new(sys.syntax.clone());
        s.reset();
        // Build the cycle: T1:x, T2:y granted; T1:y forms edge T2->T1
        // (grantable), then T2:x would close the cycle.
        assert!(!s.on_request(StepId::new(0, 0)).is_empty());
        assert!(!s.on_request(StepId::new(1, 0)).is_empty());
        assert!(!s.on_request(StepId::new(0, 1)).is_empty());
        assert!(s.on_request(StepId::new(1, 1)).is_empty()); // parked
        let tail = s.finish();
        assert_eq!(tail, vec![StepId::new(1, 1)]);
    }
}
