//! One-call construction of the scheduler line-up for a system.
//!
//! The T2/T3 experiments rank the same schedulers over and over; this
//! module builds them consistently.

use crate::occ::OccScheduler;
use crate::serial::SerialScheduler;
use crate::sgt::SgtScheduler;
use crate::timestamp::TimestampScheduler;
use crate::two_phase::two_phase_scheduler;
use crate::weak::WeakScheduler;
use ccopt_core::scheduler::OnlineScheduler;
use ccopt_model::system::TransactionSystem;

/// All practical schedulers for a system, coarsest information first:
/// serial, 2PL, T/O, OCC, SGT.
///
/// The weak-serialization scheduler is *not* included by default because
/// building it enumerates `H` (exponential); add it explicitly via
/// [`with_weak`] for small formats.
pub fn scheduler_suite(sys: &TransactionSystem) -> Vec<Box<dyn OnlineScheduler>> {
    vec![
        Box::new(SerialScheduler::new(&sys.format())),
        Box::new(two_phase_scheduler(sys)),
        Box::new(TimestampScheduler::new(sys.syntax.clone())),
        Box::new(OccScheduler::new(sys.syntax.clone())),
        Box::new(SgtScheduler::new(sys.syntax.clone())),
    ]
}

/// The suite plus the weak-serialization scheduler (small formats only).
pub fn with_weak(sys: &TransactionSystem) -> Vec<Box<dyn OnlineScheduler>> {
    let mut v = scheduler_suite(sys);
    v.push(Box::new(WeakScheduler::new(sys)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_core::fixpoint::fixpoint_ratio;
    use ccopt_model::systems;

    #[test]
    fn suite_has_five_schedulers_in_information_order() {
        let sys = systems::fig3_pair();
        let suite = scheduler_suite(&sys);
        assert_eq!(suite.len(), 5);
        assert_eq!(suite[0].name(), "serial");
        assert_eq!(suite[4].name(), "SGT");
        for w in suite.windows(2) {
            assert!(w[1].info().refines(w[0].info()) || w[0].info() == w[1].info());
        }
    }

    #[test]
    fn serial_is_never_better_than_sgt() {
        for sys in [systems::fig1(), systems::fig3_pair(), systems::rw_pair(1)] {
            let mut suite = scheduler_suite(&sys);
            let serial_r = fixpoint_ratio(suite[0].as_mut(), &sys.format());
            let sgt_r = fixpoint_ratio(suite[4].as_mut(), &sys.format());
            assert!(
                serial_r <= sgt_r + 1e-12,
                "{}: serial {serial_r} > SGT {sgt_r}",
                sys.name
            );
        }
    }

    #[test]
    fn with_weak_adds_the_semantic_scheduler() {
        let sys = systems::fig1();
        let suite = with_weak(&sys);
        assert_eq!(suite.len(), 6);
        assert_eq!(suite[5].name(), "weak-serialization");
    }
}
