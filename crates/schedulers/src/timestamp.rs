//! Timestamp ordering (T/O).
//!
//! Each transaction is stamped on the arrival of its first step; a step on
//! variable `x` may be granted only when its transaction's stamp is at
//! least the stamp of every transaction that has already touched `x`
//! conflictingly. Out-of-order requests wait until the owner transactions
//! complete; at end-of-input the stragglers replay in arrival order
//! (abort/restart in a real system — the run counts as delayed either way).

use ccopt_core::info::InfoLevel;
use ccopt_core::scheduler::OnlineScheduler;
use ccopt_model::ids::{StepId, TxnId};
use ccopt_model::syntax::Syntax;

/// The timestamp-ordering scheduler.
#[derive(Clone, Debug)]
pub struct TimestampScheduler {
    syntax: Syntax,
    /// Arrival stamp per transaction (assigned at first request).
    stamp: Vec<Option<u64>>,
    next_stamp: u64,
    /// Largest stamp of a *reader* per variable.
    read_stamp: Vec<u64>,
    /// Largest stamp of a *writer* per variable.
    write_stamp: Vec<u64>,
    /// Steps granted per transaction (for program order).
    granted_count: Vec<u32>,
    parked: Vec<StepId>,
    forced: usize,
}

impl TimestampScheduler {
    /// Build for a syntax.
    pub fn new(syntax: Syntax) -> Self {
        let n = syntax.num_txns();
        let v = syntax.num_vars();
        TimestampScheduler {
            syntax,
            stamp: vec![None; n],
            next_stamp: 1,
            read_stamp: vec![0; v],
            write_stamp: vec![0; v],
            granted_count: vec![0; n],
            parked: Vec::new(),
            forced: 0,
        }
    }

    fn stamp_of(&mut self, t: TxnId) -> u64 {
        if let Some(s) = self.stamp[t.index()] {
            return s;
        }
        let s = self.next_stamp;
        self.next_stamp += 1;
        self.stamp[t.index()] = Some(s);
        s
    }

    fn in_program_order(&self, step: StepId) -> bool {
        self.granted_count[step.txn.index()] == step.idx
    }

    fn try_grant(&mut self, step: StepId) -> bool {
        if !self.in_program_order(step) {
            return false;
        }
        let ts = self.stamp_of(step.txn);
        let sx = self.syntax.step(step);
        let v = sx.var.index();
        // A read must not precede a later writer; a write must not precede
        // a later reader or writer.
        let read_ok = !sx.kind.reads() || ts >= self.write_stamp[v];
        let write_ok = !sx.kind.writes() || (ts >= self.read_stamp[v] && ts >= self.write_stamp[v]);
        if !(read_ok && write_ok) {
            return false;
        }
        if sx.kind.reads() {
            self.read_stamp[v] = self.read_stamp[v].max(ts);
        }
        if sx.kind.writes() {
            self.write_stamp[v] = self.write_stamp[v].max(ts);
        }
        self.granted_count[step.txn.index()] += 1;
        true
    }

    fn retry_parked(&mut self) -> Vec<StepId> {
        let mut out = Vec::new();
        loop {
            let mut progressed = false;
            let mut k = 0;
            while k < self.parked.len() {
                let cand = self.parked[k];
                if self.try_grant(cand) {
                    self.parked.remove(k);
                    out.push(cand);
                    progressed = true;
                } else {
                    k += 1;
                }
            }
            if !progressed {
                return out;
            }
        }
    }
}

impl OnlineScheduler for TimestampScheduler {
    fn reset(&mut self) {
        self.stamp.iter_mut().for_each(|s| *s = None);
        self.next_stamp = 1;
        self.read_stamp.iter_mut().for_each(|s| *s = 0);
        self.write_stamp.iter_mut().for_each(|s| *s = 0);
        self.granted_count.iter_mut().for_each(|c| *c = 0);
        self.parked.clear();
        self.forced = 0;
    }

    fn on_request(&mut self, step: StepId) -> Vec<StepId> {
        // Stamp at first contact, even if the step then parks.
        self.stamp_of(step.txn);
        let mut out = Vec::new();
        if self.parked.iter().any(|p| p.txn == step.txn) {
            self.parked.push(step);
        } else if self.try_grant(step) {
            out.push(step);
        } else {
            self.parked.push(step);
        }
        out.extend(self.retry_parked());
        out
    }

    fn finish(&mut self) -> Vec<StepId> {
        let mut out = self.retry_parked();
        // Anything still parked lost a timestamp race: replay in arrival
        // order (restart semantics, reported via `forced_flushes`).
        self.forced += self.parked.len();
        for &s in &self.parked {
            self.granted_count[s.txn.index()] += 1;
        }
        out.append(&mut self.parked);
        out
    }

    fn name(&self) -> &str {
        "T/O"
    }

    fn info(&self) -> InfoLevel {
        InfoLevel::Syntactic
    }

    fn forced_flushes(&self) -> usize {
        self.forced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_core::fixpoint::fixpoint_set;
    use ccopt_core::scheduler::run_scheduler;
    use ccopt_model::systems;
    use ccopt_schedule::enumerate::all_schedules;
    use ccopt_schedule::graph::is_csr;
    use ccopt_schedule::schedule::Schedule;

    #[test]
    fn serial_histories_are_fixpoints() {
        let sys = systems::fig3_pair();
        let mut s = TimestampScheduler::new(sys.syntax.clone());
        for serial in Schedule::all_serials(&sys.format()) {
            let run = run_scheduler(&mut s, &serial);
            assert!(run.no_delays, "serial {serial} delayed by T/O");
        }
    }

    #[test]
    fn fixpoints_are_a_subset_of_csr() {
        for sys in [systems::fig1(), systems::fig3_pair(), systems::rw_pair(1)] {
            let mut s = TimestampScheduler::new(sys.syntax.clone());
            let p = fixpoint_set(&mut s, &sys.format());
            for h in &p {
                assert!(is_csr(&sys.syntax, h), "T/O fixpoint {h} not CSR");
            }
        }
    }

    #[test]
    fn out_of_stamp_conflict_is_delayed() {
        use ccopt_model::ids::StepId;
        // fig3_pair: T1 arrives first (stamp 1) but T2 touches y first?
        // Feed: T2,1 (y; stamp T2 = 1), T1,1 (x; stamp T1 = 2),
        // T1,2 (y): T1 stamp 2 >= wts(y) = 1 — granted.
        // Then T2,2 (x): T2 stamp 1 < wts(x) = 2 — delayed.
        let sys = systems::fig3_pair();
        let mut s = TimestampScheduler::new(sys.syntax.clone());
        s.reset();
        assert_eq!(s.on_request(StepId::new(1, 0)), vec![StepId::new(1, 0)]);
        assert_eq!(s.on_request(StepId::new(0, 0)), vec![StepId::new(0, 0)]);
        assert_eq!(s.on_request(StepId::new(0, 1)), vec![StepId::new(0, 1)]);
        assert_eq!(s.on_request(StepId::new(1, 1)), vec![]);
        assert_eq!(s.finish(), vec![StepId::new(1, 1)]);
    }

    #[test]
    fn read_read_is_not_ordered() {
        use ccopt_model::ids::StepId;
        use ccopt_model::syntax::SyntaxBuilder;
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.read("x"))
            .txn("T2", |t| t.read("x"))
            .build();
        let mut s = TimestampScheduler::new(syn);
        s.reset();
        // Later-stamped reader first, earlier-stamped reader second: both
        // granted (reads do not conflict).
        assert!(!s.on_request(StepId::new(1, 0)).is_empty());
        assert!(!s.on_request(StepId::new(0, 0)).is_empty());
    }

    #[test]
    fn outputs_are_legal() {
        let sys = systems::fig3_pair();
        let mut s = TimestampScheduler::new(sys.syntax.clone());
        for h in all_schedules(&sys.format()) {
            let run = run_scheduler(&mut s, &h);
            assert!(run.output.is_legal(&sys.format()));
        }
    }
}
