//! The weak-serialization scheduler as a packaged practical scheduler.
//!
//! This is the Theorem 4 optimum — the scheduler that uses complete
//! semantic information but no integrity constraints — realized through the
//! class machinery of `ccopt-core`. Histories like Figure 1's
//! `(T11, T21, T12)` pass it without delay because the interpretations
//! happen to commute, even though no syntactic scheduler may pass them.

use ccopt_core::info::InfoLevel;
use ccopt_core::optimal::OptimalScheduler;
use ccopt_core::scheduler::OnlineScheduler;
use ccopt_model::ids::StepId;
use ccopt_model::system::TransactionSystem;
use ccopt_schedule::wsr::WsrOptions;

/// Weak-serialization scheduler (semantic information, no IC).
pub struct WeakScheduler {
    inner: OptimalScheduler,
}

impl WeakScheduler {
    /// Build for a system with default WSR search options.
    pub fn new(sys: &TransactionSystem) -> Self {
        WeakScheduler {
            inner: OptimalScheduler::for_level(sys, InfoLevel::SemanticNoIc),
        }
    }

    /// Build with explicit WSR options (search bound / uniformity).
    pub fn with_options(sys: &TransactionSystem, opts: WsrOptions) -> Self {
        WeakScheduler {
            inner: OptimalScheduler::for_level_with(sys, InfoLevel::SemanticNoIc, opts),
        }
    }

    /// Size of the underlying WSR class.
    pub fn class_size(&self) -> usize {
        self.inner.class().len()
    }
}

impl OnlineScheduler for WeakScheduler {
    fn reset(&mut self) {
        self.inner.reset();
    }

    fn on_request(&mut self, step: StepId) -> Vec<StepId> {
        self.inner.on_request(step)
    }

    fn finish(&mut self) -> Vec<StepId> {
        self.inner.finish()
    }

    fn name(&self) -> &str {
        "weak-serialization"
    }

    fn info(&self) -> InfoLevel {
        InfoLevel::SemanticNoIc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_core::fixpoint::{fixpoint_set, is_fixpoint};
    use ccopt_model::systems;
    use ccopt_schedule::schedule::Schedule;

    #[test]
    fn passes_the_fig1_history() {
        let sys = systems::fig1();
        let mut s = WeakScheduler::new(&sys);
        let h = Schedule::new_unchecked(vec![
            StepId::new(0, 0),
            StepId::new(1, 0),
            StepId::new(0, 1),
        ]);
        assert!(is_fixpoint(&mut s, &h));
        assert_eq!(s.class_size(), 3);
    }

    #[test]
    fn dominates_the_sgt_fixpoints_on_fig1() {
        let sys = systems::fig1();
        let mut weak = WeakScheduler::new(&sys);
        let mut sgt = crate::sgt::SgtScheduler::new(sys.syntax.clone());
        let p_weak = fixpoint_set(&mut weak, &sys.format());
        let p_sgt = fixpoint_set(&mut sgt, &sys.format());
        assert!(p_sgt.is_subset(&p_weak));
        assert!(p_sgt.len() < p_weak.len());
    }

    #[test]
    fn rejects_non_wsr_histories() {
        let sys = systems::thm2_adversary();
        let mut s = WeakScheduler::new(&sys);
        let h = Schedule::new_unchecked(vec![
            StepId::new(0, 0),
            StepId::new(1, 0),
            StepId::new(0, 1),
        ]);
        assert!(!is_fixpoint(&mut s, &h));
    }
}
