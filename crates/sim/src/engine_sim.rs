//! Discrete-event simulation over the real database engine.
//!
//! Terminals submit steps of their transactions; each attempt costs
//! *scheduling time*, a granted step costs *execution time*, a blocked step
//! polls after a retry interval (accumulating *waiting time*), and an abort
//! pays a restart penalty before the transaction begins again. This is the
//! Section 6 time decomposition made operational.
//!
//! Batches are embarrassingly parallel: every batch derives its own RNG
//! stream from `(seed, batch index)` and runs a private `Database`, so the
//! parallel path produces **bit-identical** statistics to the sequential
//! one — results are reduced in batch order either way. Set
//! [`SimConfig::parallel`] to false (or `CCOPT_THREADS=1`) to force the
//! sequential path, e.g. when profiling.

use crate::stats::Summary;
use ccopt_engine::cc::ConcurrencyControl;
use ccopt_engine::db::{Database, StepOutcome};
use ccopt_model::ids::TxnId;
use ccopt_model::system::TransactionSystem;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Simulation parameters (times in abstract milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct SimConfig {
    /// Cost of one scheduler decision (charged per attempt).
    pub scheduling_time: f64,
    /// Cost of executing one step.
    pub exec_time: f64,
    /// Mean think time between a terminal's steps (exponential).
    pub think_time: f64,
    /// Poll interval while a step is blocked.
    pub retry_interval: f64,
    /// Extra delay before a restarted transaction resubmits.
    pub restart_penalty: f64,
    /// Number of independent batches (system instances run to completion).
    pub batches: usize,
    /// RNG seed. Each batch uses an independent stream derived from
    /// `(seed, batch index)`, so results do not depend on whether batches
    /// run sequentially or in parallel.
    pub seed: u64,
    /// Safety valve: maximum events per batch.
    pub max_events: usize,
    /// Run batches on all cores (the default). The statistics are
    /// bit-identical either way; sequential is useful for profiling.
    pub parallel: bool,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            scheduling_time: 0.1,
            exec_time: 1.0,
            think_time: 2.0,
            retry_interval: 0.5,
            restart_penalty: 1.0,
            batches: 20,
            seed: 42,
            max_events: 200_000,
            parallel: true,
        }
    }
}

/// Aggregated simulation output.
#[derive(Clone, Debug)]
pub struct SimResult {
    /// Concurrency control name.
    pub cc_name: String,
    /// Committed transactions per unit time (across batches).
    pub throughput: f64,
    /// Per-transaction response times.
    pub response: Summary,
    /// Per-transaction waiting time (poll intervals summed).
    pub waiting: Summary,
    /// Per-transaction scheduling time (attempts × decision cost).
    pub scheduling: Summary,
    /// Total aborts across batches.
    pub aborts: usize,
    /// Aborts charged to multi-version write-write validation (subset of
    /// `aborts`; 0 for single-version mechanisms).
    pub mv_write_aborts: usize,
    /// Total wait outcomes across batches (steps that had to poll).
    pub waits: usize,
    /// Total commits across batches.
    pub commits: usize,
}

#[derive(PartialEq)]
struct Event {
    time: f64,
    terminal: usize,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
            .then(self.terminal.cmp(&other.terminal))
    }
}

/// Raw per-batch output, reduced in batch order by [`simulate_engine`].
struct BatchOut {
    clock: f64,
    response: Vec<f64>,
    waiting: Vec<f64>,
    scheduling: Vec<f64>,
    aborts: usize,
    mv_write_aborts: usize,
    waits: usize,
    commits: usize,
}

/// The RNG stream of one batch: a pure function of `(seed, batch)`, so
/// batch results are independent of scheduling order.
fn batch_rng(seed: u64, batch: usize) -> SmallRng {
    // SplitMix-style mix keeps nearby (seed, batch) pairs decorrelated.
    let mixed = seed
        .wrapping_add((batch as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .rotate_left(17)
        ^ seed.rotate_right(23);
    SmallRng::seed_from_u64(mixed)
}

/// Run one batch to completion: instantiate the system, drive every
/// transaction to commit under a fresh CC instance, accumulate timing.
fn run_batch(
    sys: &TransactionSystem,
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    cfg: &SimConfig,
    batch: usize,
) -> BatchOut {
    let mut rng = batch_rng(cfg.seed, batch);
    let n = sys.num_txns();
    let init = sys
        .space
        .initial_states
        .first()
        .cloned()
        .unwrap_or_else(|| {
            ccopt_model::state::GlobalState::from_ints(&vec![0; sys.syntax.num_vars()])
        });
    let mut db = Database::new(sys.clone(), make_cc(), init);

    let mut out = BatchOut {
        clock: 0.0,
        response: Vec::with_capacity(n),
        waiting: Vec::with_capacity(n),
        scheduling: Vec::with_capacity(n),
        aborts: 0,
        mv_write_aborts: 0,
        waits: 0,
        commits: 0,
    };
    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut started = vec![0.0f64; n];
    let mut waited = vec![0.0f64; n];
    let mut sched = vec![0.0f64; n];
    for (terminal, start) in started.iter_mut().enumerate() {
        let at = exp_sample(&mut rng, cfg.think_time);
        *start = at;
        queue.push(Reverse(Event { time: at, terminal }));
    }

    let mut events = 0usize;
    while let Some(Reverse(ev)) = queue.pop() {
        events += 1;
        if events > cfg.max_events {
            break;
        }
        out.clock = ev.time;
        let t = TxnId(ev.terminal as u32);
        if db.committed(t) {
            continue;
        }
        sched[ev.terminal] += cfg.scheduling_time;
        match db.step(t) {
            StepOutcome::Executed { committed } => {
                if committed {
                    out.response
                        .push(out.clock + cfg.exec_time - started[ev.terminal]);
                    out.waiting.push(waited[ev.terminal]);
                    out.scheduling.push(sched[ev.terminal]);
                } else {
                    let think = exp_sample(&mut rng, cfg.think_time);
                    queue.push(Reverse(Event {
                        time: out.clock + cfg.exec_time + think,
                        terminal: ev.terminal,
                    }));
                }
            }
            StepOutcome::Waited => {
                waited[ev.terminal] += cfg.retry_interval;
                queue.push(Reverse(Event {
                    time: out.clock + cfg.retry_interval,
                    terminal: ev.terminal,
                }));
            }
            StepOutcome::Aborted => {
                queue.push(Reverse(Event {
                    time: out.clock + cfg.restart_penalty,
                    terminal: ev.terminal,
                }));
            }
            StepOutcome::AlreadyCommitted => {}
        }
    }
    out.aborts = db.metrics.aborts;
    out.mv_write_aborts = db.metrics.mv_write_aborts;
    out.waits = db.metrics.waits;
    out.commits = db.metrics.commits;
    out
}

/// Run the simulation: each batch instantiates the system once, runs every
/// transaction to commit under `make_cc`, and accumulates timing. Batches
/// run on all cores when `cfg.parallel` is set; the reduction is in batch
/// order, so the result is bit-identical to the sequential path.
pub fn simulate_engine(
    sys: &TransactionSystem,
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    cfg: &SimConfig,
) -> SimResult {
    let cc_name = make_cc().name().to_string();
    let outs: Vec<BatchOut> = if cfg.parallel {
        ccopt_par::par_map_indexed(cfg.batches, |b| run_batch(sys, make_cc, cfg, b))
    } else {
        (0..cfg.batches)
            .map(|b| run_batch(sys, make_cc, cfg, b))
            .collect()
    };

    let mut response = Vec::new();
    let mut waiting = Vec::new();
    let mut scheduling = Vec::new();
    let mut total_time = 0.0f64;
    let mut aborts = 0usize;
    let mut mv_write_aborts = 0usize;
    let mut waits = 0usize;
    let mut commits = 0usize;
    for out in outs {
        response.extend(out.response);
        waiting.extend(out.waiting);
        scheduling.extend(out.scheduling);
        total_time += out.clock.max(1e-9);
        aborts += out.aborts;
        mv_write_aborts += out.mv_write_aborts;
        waits += out.waits;
        commits += out.commits;
    }

    SimResult {
        cc_name,
        throughput: commits as f64 / total_time,
        response: Summary::of(&response),
        waiting: Summary::of(&waiting),
        scheduling: Summary::of(&scheduling),
        aborts,
        mv_write_aborts,
        waits,
        commits,
    }
}

fn exp_sample(rng: &mut SmallRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_engine::cc::{SerialCc, SgtCc, Strict2plCc};
    use ccopt_model::systems;

    fn quick_cfg() -> SimConfig {
        SimConfig {
            batches: 5,
            seed: 7,
            ..SimConfig::default()
        }
    }

    #[test]
    fn all_transactions_commit() {
        let sys = systems::fig3_pair();
        let cfg = quick_cfg();
        let r = simulate_engine(&sys, &|| Box::new(Strict2plCc::default()), &cfg);
        assert_eq!(r.commits, 2 * cfg.batches);
        assert_eq!(r.response.n, 2 * cfg.batches);
        assert!(r.throughput > 0.0);
        assert_eq!(r.cc_name, "strict-2PL");
    }

    #[test]
    fn serial_waits_more_than_sgt_on_disjoint_work() {
        // Two transactions touching disjoint variables: SGT never waits,
        // the serial strawman always serializes.
        use ccopt_model::expr::Expr;
        use ccopt_model::ic::TrueIc;
        use ccopt_model::interp::ExprInterpretation;
        use ccopt_model::syntax::SyntaxBuilder;
        use ccopt_model::system::{StateSpace, TransactionSystem};
        use std::sync::Arc;
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("x").update("x"))
            .txn("T2", |t| t.update("y").update("y").update("y"))
            .build();
        let interp = ExprInterpretation::new(
            (0..2)
                .map(|_| {
                    (0..3)
                        .map(|j| Expr::add(Expr::Local(j), Expr::Const(1)))
                        .collect()
                })
                .collect(),
        );
        let sys = TransactionSystem::new(
            "disjoint",
            syn,
            Arc::new(interp),
            Arc::new(TrueIc),
            StateSpace::from_ints(&[&[0, 0]]),
        );
        let cfg = quick_cfg();
        let serial = simulate_engine(&sys, &|| Box::new(SerialCc::default()), &cfg);
        let sgt = simulate_engine(&sys, &|| Box::new(SgtCc::default()), &cfg);
        assert!(sgt.waiting.mean <= serial.waiting.mean);
        assert_eq!(sgt.aborts, 0);
    }

    #[test]
    fn determinism_under_seed() {
        let sys = systems::fig3_pair();
        let cfg = quick_cfg();
        let a = simulate_engine(&sys, &|| Box::new(Strict2plCc::default()), &cfg);
        let b = simulate_engine(&sys, &|| Box::new(Strict2plCc::default()), &cfg);
        assert_eq!(a.response, b.response);
        assert_eq!(a.aborts, b.aborts);
    }

    #[test]
    fn parallel_is_bit_identical_to_sequential() {
        // The tentpole determinism claim: the parallel path must produce
        // exactly the sequential statistics, not merely statistically
        // similar ones, across workloads and mechanisms.
        for (label, sys) in [
            ("fig3", systems::fig3_pair()),
            ("banking", systems::banking()),
        ] {
            for seed in [7u64, 42, 99] {
                let par = SimConfig {
                    batches: 8,
                    seed,
                    parallel: true,
                    ..SimConfig::default()
                };
                let seq = SimConfig {
                    parallel: false,
                    ..par
                };
                let a = simulate_engine(&sys, &|| Box::new(SgtCc::default()), &par);
                let b = simulate_engine(&sys, &|| Box::new(SgtCc::default()), &seq);
                assert_eq!(a.response, b.response, "{label} seed {seed}");
                assert_eq!(a.waiting, b.waiting, "{label} seed {seed}");
                assert_eq!(a.scheduling, b.scheduling, "{label} seed {seed}");
                assert_eq!(a.aborts, b.aborts, "{label} seed {seed}");
                assert_eq!(a.commits, b.commits, "{label} seed {seed}");
                assert!(
                    (a.throughput - b.throughput).abs() == 0.0,
                    "{label} seed {seed}: throughput must match bit-for-bit"
                );
            }
        }
    }

    #[test]
    fn multiversion_mechanisms_run_through_the_simulator() {
        use ccopt_engine::cc::{MvtoCc, SiCc};
        for (label, sys) in [
            ("fig3", systems::fig3_pair()),
            ("banking", systems::banking()),
        ] {
            let cfg = quick_cfg();
            let mvto = simulate_engine(&sys, &|| Box::new(MvtoCc::default()), &cfg);
            assert_eq!(mvto.commits, sys.num_txns() * cfg.batches, "{label}");
            assert_eq!(mvto.cc_name, "MVTO");
            let si = simulate_engine(&sys, &|| Box::new(SiCc::default()), &cfg);
            assert_eq!(si.commits, sys.num_txns() * cfg.batches, "{label}");
            assert_eq!(si.cc_name, "SI");
            // The parallel path stays bit-identical for the MV family too.
            let seq = SimConfig {
                parallel: false,
                ..cfg
            };
            let mvto_seq = simulate_engine(&sys, &|| Box::new(MvtoCc::default()), &seq);
            assert_eq!(mvto.response, mvto_seq.response, "{label}");
            assert_eq!(mvto.aborts, mvto_seq.aborts, "{label}");
        }
    }

    #[test]
    fn batch_streams_are_independent_of_order() {
        // Swapping which batch runs "first" cannot matter because streams
        // derive from the batch index, not from a shared generator.
        let a = batch_rng(5, 0).gen::<u64>();
        let b = batch_rng(5, 1).gen::<u64>();
        assert_ne!(a, b);
        assert_eq!(batch_rng(5, 1).gen::<u64>(), b);
    }

    #[test]
    fn banking_simulates_consistently() {
        let sys = systems::banking();
        let cfg = SimConfig {
            batches: 3,
            ..quick_cfg()
        };
        let r = simulate_engine(&sys, &|| Box::new(SgtCc::default()), &cfg);
        assert_eq!(r.commits, 3 * 3);
    }
}
