//! # `ccopt-sim` — the Section 6 environment, simulated
//!
//! "There are multiple users at various terminals executing transactions
//! which mainly involve local computations but occasionally have to access
//! or update data shared by many users. [...] From a user's viewpoint the
//! time for carrying out a transaction step is divided into the following
//! three parts: scheduling time, waiting time, execution time."
//!
//! Two complementary simulations:
//!
//! * [`order_sim`] — drives the *online schedulers* of `ccopt-schedulers`
//!   with uniformly random request histories, measuring exactly the
//!   quantities the paper ties to the fixpoint set `P`: the probability of
//!   a delay-free pass (`|P|/|H|`) and the discrete waiting totals.
//! * [`engine_sim`] — a discrete-event simulation over the real
//!   [`ccopt_engine::Database`]: terminals with exponential think times,
//!   per-step execution times, polling retries on waits, restart penalties
//!   on aborts; reports throughput, response, and the three-way time
//!   decomposition.
//! * [`open_sim`] — the open-world counterpart over the session API
//!   ([`ccopt_engine::SessionDb`]): arrival-driven terminals run an
//!   unbounded stream of dynamic transactions over recycled dense slots,
//!   reporting throughput, the latency distribution, abort rate and the
//!   boundedness gauges (peak slots, peak live versions), with an optional
//!   serializability spot-check over the committed history.
//! * [`shard_sim`] — the same open-world machine over a sharded database
//!   ([`ccopt_engine::ShardedDb`]): a cross-shard-ratio workload axis,
//!   two-phase cross-shard commits, a wait-bound restart valve for
//!   cross-shard deadlocks, and histories the ordinary serializability
//!   oracle checks unchanged. With one shard it reproduces [`open_sim`]
//!   bit for bit.
//!
//! Plus [`workload`] (parameterized system families), [`stats`]
//! (summaries) and [`report`] (aligned text tables for the experiment
//! harness).

pub mod engine_sim;
pub mod open_sim;
pub mod order_sim;
pub mod report;
pub mod shard_sim;
pub mod stats;
pub mod workload;

pub use engine_sim::{simulate_engine, SimConfig, SimResult};
pub use open_sim::{
    check_serializable, check_strict, simulate_open, simulate_open_durable, DurableConfig,
    OpenSimConfig, OpenSimResult,
};
pub use order_sim::{delay_profile, DelayProfile};
pub use report::Table;
pub use shard_sim::{
    simulate_sharded, simulate_sharded_durable, ShardDurableConfig, ShardSimConfig,
};
pub use stats::Summary;
