//! Open-world simulation: arrival-driven sessions over an unbounded
//! transaction stream.
//!
//! Where [`crate::engine_sim`] replays the paper's closed world — a fixed
//! transaction system run to completion — this simulator models the
//! arrival-driven shape of a serving system: `K` terminals each keep one
//! dynamic session open at a time against a
//! [`SessionDb`], drawing a fresh random
//! transaction program on every arrival, driving it operation by operation
//! (waits poll, concurrency-control aborts restart the attempt in place),
//! and retiring the session after commit so its dense slot recycles into
//! the next arrival. The stream ends after
//! [`total_txns`](OpenSimConfig::total_txns) commits — many times the
//! dense-table capacity, which is exactly the point: slots, CC tables and
//! (on the multi-version path) version chains must stay bounded by the
//! *concurrency level*, never the stream length.
//!
//! Everything is deterministic in the seed: one event queue ordered by
//! `(time, terminal)`, one RNG drawn in event order.
//!
//! With [`check`](OpenSimConfig::check) set, the simulator records the
//! committed history and [`check_serializable`] replays it against a
//! serial order — the conflict-graph topological order for single-version
//! mechanisms (writes of deferred-write mechanisms placed at commit time),
//! the begin-timestamp order for MVTO. Snapshot isolation is exempt by
//! design (it admits write skew); callers skip the check for SI.
//! [`check_strict`] asserts the property durability rests on: every
//! committed history is strict, so redo-only logging suffices.
//!
//! [`simulate_open_durable`] runs the same stream against a
//! [`SessionDb::open`]ed database: commits append to the write-ahead log,
//! fsyncs charge [`sync_time`](OpenSimConfig::sync_time) to the
//! committing terminal (one per commit under `Strict`; one per *batch*
//! under group commit — the group-commit throughput claim), and an
//! optional crash point kills the log at a configurable append/fsync
//! boundary so tests can recover and diff against the in-memory committed
//! prefix ([`OpenSimResult::journal`]).

use crate::stats::Summary;
use ccopt_engine::cc::ConcurrencyControl;
use ccopt_engine::session::{Op, SessionDb, Txn};
use ccopt_engine::{ConflictRule, DurabilityMode, TraceConfig, TraceHub};
use ccopt_model::ids::VarId;
use ccopt_model::state::GlobalState;
use ccopt_model::syntax::StepKind;
use ccopt_model::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::PathBuf;

/// Values live in `Z_MOD` so affine update chains stay bounded over
/// arbitrarily long streams (no overflow, exact replay).
const MOD: i64 = 1_000_003;

/// Open-world simulation parameters (times in abstract milliseconds).
#[derive(Clone, Copy, Debug)]
pub struct OpenSimConfig {
    /// Concurrent sessions kept alive (terminals).
    pub terminals: usize,
    /// Stream length: the simulation ends after this many commits.
    pub total_txns: usize,
    /// Number of variables in the store.
    pub vars: usize,
    /// Inclusive range of operations per transaction.
    pub steps: (usize, usize),
    /// Fraction of operations that are pure reads.
    pub read_fraction: f64,
    /// Probability that an operation hits the hot variable 0.
    pub hot_fraction: f64,
    /// Cost of one scheduler decision (charged per attempt).
    pub scheduling_time: f64,
    /// Cost of executing one operation.
    pub exec_time: f64,
    /// Mean think time between a terminal's operations (exponential).
    pub think_time: f64,
    /// Poll interval while an operation is blocked.
    pub retry_interval: f64,
    /// Extra delay before a restarted attempt resubmits.
    pub restart_penalty: f64,
    /// Cost of one log fsync, charged to the committing terminal when its
    /// commit flushed the write-ahead log (durable runs only; group
    /// commit amortizes it over the batch).
    pub sync_time: f64,
    /// RNG seed.
    pub seed: u64,
    /// Safety valve: maximum events processed.
    pub max_events: usize,
    /// Record the committed history for [`check_serializable`].
    pub check: bool,
}

impl Default for OpenSimConfig {
    fn default() -> Self {
        OpenSimConfig {
            terminals: 8,
            total_txns: 256,
            vars: 16,
            steps: (2, 5),
            read_fraction: 0.5,
            hot_fraction: 0.2,
            scheduling_time: 0.1,
            exec_time: 1.0,
            think_time: 2.0,
            retry_interval: 0.5,
            restart_penalty: 1.0,
            sync_time: 8.0,
            seed: 42,
            max_events: 4_000_000,
            check: false,
        }
    }
}

/// One operation of a generated transaction program: an access of `var`
/// with an affine step function over the variable's own value.
#[derive(Clone, Copy, Debug)]
pub struct OpSpec {
    /// Variable accessed.
    pub var: VarId,
    /// Declared access kind.
    pub kind: StepKind,
    /// Multiplier of the affine update `v <- (a*v + c) mod M`.
    pub a: i64,
    /// Offset; a blind `Write` stores `c` alone.
    pub c: i64,
}

impl OpSpec {
    /// The step function: the value written given the observed one
    /// (writing kinds; a `Read` leaves the variable unchanged).
    pub fn eval(&self, observed: i64) -> i64 {
        match self.kind {
            StepKind::Read => observed,
            StepKind::Write => self.c.rem_euclid(MOD),
            StepKind::Update => (self.a * observed + self.c).rem_euclid(MOD),
        }
    }
}

/// The committed execution record of one transaction: its operations with
/// the global sequence number each executed at, plus the ordering keys the
/// serializability replay needs.
#[derive(Clone, Debug)]
pub struct CommittedTxn {
    /// Executed operations of the committed attempt, in program order,
    /// each with the global sequence number of its execution.
    pub ops: Vec<(u64, OpSpec)>,
    /// Snapshot timestamp at commit (the MVTO serialization key; 0 for
    /// single-version mechanisms).
    pub view: u64,
    /// Global sequence number of the commit itself (deferred writes take
    /// effect here).
    pub commit_seq: u64,
}

/// Aggregated open-world simulation output.
#[derive(Clone, Debug)]
pub struct OpenSimResult {
    /// Concurrency control name.
    pub cc_name: String,
    /// Transactions committed (== the configured stream length unless the
    /// event budget ran out).
    pub committed: usize,
    /// Restarts (CC aborts) over the whole stream.
    pub aborts: usize,
    /// Wait outcomes over the whole stream.
    pub waits: usize,
    /// Sessions retired (slots recycled).
    pub retires: usize,
    /// Multi-version write-validation aborts (subset of `aborts`).
    pub mv_write_aborts: usize,
    /// Simulated clock at the end of the stream.
    pub clock: f64,
    /// Commits per unit of simulated time.
    pub throughput: f64,
    /// Per-transaction response times (arrival to commit).
    pub latency: Summary,
    /// Restarts per commit.
    pub abort_rate: f64,
    /// Dense-table capacity high-water mark: slots ever allocated. The
    /// recycling claim is `peak_slots << committed`.
    pub peak_slots: usize,
    /// Most sessions simultaneously open (running or commit-pending).
    pub peak_open_sessions: usize,
    /// Most live versions observed in the multi-version store (0 for
    /// single-version mechanisms); boundedness is the GC claim.
    pub peak_live_versions: usize,
    /// Versions reclaimed by the GC watermark over the stream.
    pub versions_reclaimed: usize,
    /// Committed state of the store after the wind-down (in-flight
    /// sessions aborted).
    pub final_state: GlobalState,
    /// Committed history, recorded when [`OpenSimConfig::check`] was set.
    pub history: Vec<CommittedTxn>,
    /// Whether the store is multi-version (routes the checker).
    pub multiversion: bool,
    /// Whether writes were deferred to commit (places write conflicts).
    pub defers_writes: bool,
    /// Write-ahead-log records appended (durable runs only).
    pub wal_records: usize,
    /// Write-ahead-log fsyncs issued (durable runs only; under group
    /// commit, far fewer than commits).
    pub wal_syncs: usize,
    /// Committed-prefix journal, recorded on durable runs with
    /// [`check`](OpenSimConfig::check): `journal[k]` is the committed
    /// state after exactly `k` commits — what a crash recovered at the
    /// `k`-commit boundary must rebuild.
    pub journal: Vec<GlobalState>,
    /// Crashed shard workers supervised and restarted in place (0
    /// outside sharded fault runs).
    pub shard_restarts: usize,
    /// Transactions aborted by load shedding at a full shard mailbox (0
    /// outside bounded-queue sharded runs).
    pub shed_aborts: usize,
    /// Write-ahead-log I/O attempts retried after a transient storage
    /// fault (0 unless storage faults were injected).
    pub io_retries: usize,
    /// Wall-clock seconds of the most recent supervised shard recovery —
    /// the time-to-recover of the degraded-mode benchmark (0 when no
    /// shard was restarted).
    pub recovery_secs: f64,
    /// Committed (sub-)transactions replayed by the most recent recovery
    /// — the deterministic recovery size: startup log recovery on durable
    /// open-world runs, the last supervised shard restart on sharded
    /// fault runs (0 when nothing was recovered).
    pub recovery_replayed: u64,
    /// Commit latency p50 in engine ticks, from the always-on
    /// fixed-bucket histogram — tick-based, so deterministic runs
    /// reproduce it bit-for-bit (unlike the wall-ish `latency` summary).
    pub commit_lat_ticks_p50: u64,
    /// Commit latency p99 in engine ticks.
    pub commit_lat_ticks_p99: u64,
    /// The most contended variables, `(variable id, waits, aborts)`,
    /// ranked by waits plus aborts descending (at most
    /// [`TOP_CONTENDED`] rows; empty under no contention).
    pub top_contended: Vec<(u32, usize, usize)>,
    /// Abort attribution over the stream: `(conflict rule name, count)`
    /// for every rule with a non-zero count, in rule order.
    pub aborts_by_rule: Vec<(&'static str, usize)>,
}

/// Contention-table depth reported in [`OpenSimResult::top_contended`].
pub const TOP_CONTENDED: usize = 4;

/// Name the non-zero rows of an abort-attribution table — `(rule name,
/// count)`, in rule order — for reports.
pub fn named_abort_rules(table: &[usize; ConflictRule::COUNT]) -> Vec<(&'static str, usize)> {
    ConflictRule::ALL
        .iter()
        .zip(table)
        .filter(|(_, &n)| n > 0)
        .map(|(r, &n)| (r.name(), n))
        .collect()
}

/// Durability parameters of [`simulate_open_durable`].
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// Write-ahead-log path (created or recovered by [`SessionDb::open`]).
    pub path: PathBuf,
    /// Flush policy.
    pub mode: DurabilityMode,
    /// Crash injection: kill the log at this append boundary (records).
    pub crash_after_records: Option<u64>,
    /// Crash injection: kill the log at this fsync boundary.
    pub crash_after_syncs: Option<u64>,
    /// Record the committed-prefix [`journal`](OpenSimResult::journal)
    /// (one committed-state snapshot per commit). The crash-recovery
    /// differential tests need it; benchmarks leave it off so durable
    /// cells pay no per-commit snapshot cost the `none` baseline skips.
    pub record_journal: bool,
}

impl DurableConfig {
    /// A durable run at `path` under `mode`, with no crash injected and
    /// no journal recording (the benchmark shape).
    pub fn new(path: PathBuf, mode: DurabilityMode) -> Self {
        DurableConfig {
            path,
            mode,
            crash_after_records: None,
            crash_after_syncs: None,
            record_journal: false,
        }
    }

    /// Like [`new`](Self::new) but recording the committed-prefix
    /// journal (the crash-differential test shape).
    pub fn recording(path: PathBuf, mode: DurabilityMode) -> Self {
        DurableConfig {
            record_journal: true,
            ..Self::new(path, mode)
        }
    }
}

#[derive(PartialEq)]
struct Event {
    time: f64,
    terminal: usize,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
            .then(self.terminal.cmp(&other.terminal))
    }
}

struct Terminal {
    handle: Option<Txn>,
    prog: Vec<OpSpec>,
    next_op: usize,
    started_at: f64,
    /// Ops executed by the current attempt (cleared on restart).
    ops: Vec<(u64, OpSpec)>,
}

/// Jittered poll delay: lockstep polling livelocks under contention
/// (every waiter retries on the same cadence), so each retry draws from
/// `[0.5, 1.5) * retry_interval`.
pub(crate) fn retry_delay(rng: &mut SmallRng, cfg: &OpenSimConfig) -> f64 {
    cfg.retry_interval * rng.gen_range(0.5..1.5)
}

/// Jittered, attempt-scaled restart backoff. Timestamp ordering (and OCC
/// under a hotspot) can restart-storm forever when every victim resubmits
/// after the same constant penalty: each restart stamps the hot variables
/// younger and kills the next elder, in lockstep. Exponentialish backoff
/// with seeded jitter breaks the symmetry deterministically.
pub(crate) fn restart_delay(rng: &mut SmallRng, cfg: &OpenSimConfig, attempts: u32) -> f64 {
    let scale = (attempts.min(6) as f64).max(1.0);
    cfg.restart_penalty * scale * rng.gen_range(0.5..1.5)
}

pub(crate) fn exp_sample(rng: &mut SmallRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    let u: f64 = rng.gen_range(1e-12..1.0);
    -mean * u.ln()
}

/// Draw one transaction program.
pub(crate) fn gen_program(rng: &mut SmallRng, cfg: &OpenSimConfig) -> Vec<OpSpec> {
    let n = rng.gen_range(cfg.steps.0..=cfg.steps.1.max(cfg.steps.0));
    (0..n)
        .map(|_| {
            let var = if cfg.vars > 1 && rng.gen_range(0.0..1.0) < cfg.hot_fraction {
                0
            } else {
                rng.gen_range(0..cfg.vars)
            };
            let r: f64 = rng.gen_range(0.0..1.0);
            // Non-read ops are mostly read-modify-writes; a quarter are
            // blind writes (the paper's `Write` shape).
            let kind = if r < cfg.read_fraction {
                StepKind::Read
            } else if r < cfg.read_fraction + (1.0 - cfg.read_fraction) * 0.25 {
                StepKind::Write
            } else {
                StepKind::Update
            };
            let a = [1i64, 1, 2, -1][rng.gen_range(0..4usize)];
            let c = rng.gen_range(-2i64..=2);
            OpSpec {
                var: VarId(var as u32),
                kind,
                a,
                c,
            }
        })
        .collect()
}

/// Submit one operation through the session API (also used by the
/// slot-recycling differential test, so the op semantics exist in exactly
/// one place).
pub fn submit_op(db: &mut SessionDb, h: Txn, op: OpSpec) -> Op<Value> {
    let r = match op.kind {
        StepKind::Read => db.read(h, op.var),
        StepKind::Write => db.write(h, op.var, Value::Int(op.eval(0))),
        StepKind::Update => db.update(h, op.var, |v| {
            Value::Int(op.eval(v.as_int().expect("open-world stores hold ints")))
        }),
    };
    r.expect("open-sim handles are live")
}

/// Run the open-world simulation for one mechanism (no durability).
pub fn simulate_open(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    cfg: &OpenSimConfig,
) -> OpenSimResult {
    simulate_open_impl(make_cc, cfg, None, None)
}

/// Run the open-world simulation with the trace plane on: lifecycle
/// events stream to the configured JSONL sink (flushed before returning)
/// and/or the flight-recorder ring. The traced run makes exactly the
/// same engine decisions as the untraced one — tracing observes, never
/// steers — which the tracing-off differential test pins the other way
/// around.
///
/// # Panics
/// Panics when the sink cannot be created (harness convention).
pub fn simulate_open_traced(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    cfg: &OpenSimConfig,
    dur: Option<&DurableConfig>,
    trace: &TraceConfig,
) -> OpenSimResult {
    simulate_open_impl(make_cc, cfg, dur, Some(trace))
}

/// Run the open-world simulation against a durable [`SessionDb::open`]:
/// an existing log at the path is recovered first (the stream resumes on
/// the recovered state), commits append to the log, and fsyncs charge
/// [`sync_time`](OpenSimConfig::sync_time) to the committing terminal.
/// The simulation ends like a crash — nothing is flushed on exit — so
/// under group commit the acknowledged tail inside the loss window is
/// intentionally not durable.
///
/// # Panics
/// Panics when the log cannot be opened or recovered (simulation harness
/// convention: configuration errors are bugs in the experiment).
pub fn simulate_open_durable(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    cfg: &OpenSimConfig,
    dur: &DurableConfig,
) -> OpenSimResult {
    simulate_open_impl(make_cc, cfg, Some(dur), None)
}

fn simulate_open_impl(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    cfg: &OpenSimConfig,
    dur: Option<&DurableConfig>,
    trace: Option<&TraceConfig>,
) -> OpenSimResult {
    let cc = make_cc();
    let cc_name = cc.name().to_string();
    let multiversion = cc.multiversion();
    let defers_writes = cc.defers_writes();
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x09E2_5EED);
    let init = GlobalState::from_ints(&vec![0; cfg.vars]);
    let mut db = match dur {
        None => SessionDb::with_capacity(cc, init, cfg.terminals),
        Some(d) => SessionDb::open_with_capacity(cc, init, &d.path, d.mode, cfg.terminals)
            .expect("open the durable session database"),
    };
    if let Some(d) = dur {
        if let Some(n) = d.crash_after_records {
            db.wal_crash_after_records(n);
        }
        if let Some(n) = d.crash_after_syncs {
            db.wal_crash_after_syncs(n);
        }
    }
    let hub = trace.map(|tc| TraceHub::new(tc).expect("open the trace sink"));
    if let Some(hub) = &hub {
        db.set_tracer(hub.tracer(0));
    }

    let mut terminals: Vec<Terminal> = (0..cfg.terminals)
        .map(|_| Terminal {
            handle: None,
            prog: Vec::new(),
            next_op: 0,
            started_at: 0.0,
            ops: Vec::new(),
        })
        .collect();
    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    for terminal in 0..cfg.terminals {
        queue.push(Reverse(Event {
            time: exp_sample(&mut rng, cfg.think_time),
            terminal,
        }));
    }

    let mut clock = 0.0f64;
    let mut committed = 0usize;
    let mut seq = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.total_txns);
    let mut history: Vec<CommittedTxn> = Vec::new();
    // Committed-prefix journal for the crash-recovery differential:
    // journal[k] = committed state after k commits of *this* run.
    let record_journal = dur.is_some_and(|d| d.record_journal);
    let mut journal: Vec<GlobalState> = Vec::new();
    if record_journal {
        journal.push(db.committed_globals());
    }
    let mut peak_slots = 0usize;
    let mut peak_open = 0usize;
    let mut peak_versions = 0usize;
    let mut events = 0usize;

    'sim: while let Some(Reverse(ev)) = queue.pop() {
        events += 1;
        if events > cfg.max_events {
            break;
        }
        clock = ev.time;
        let term = &mut terminals[ev.terminal];
        if term.handle.is_none() {
            // Arrival: a fresh transaction program on a recycled slot.
            term.prog = gen_program(&mut rng, cfg);
            term.handle = Some(db.begin());
            term.next_op = 0;
            term.started_at = ev.time;
            term.ops.clear();
        }
        let h = term.handle.expect("just ensured");
        if term.next_op == term.prog.len() {
            // All operations ran: request the commit.
            let view = db.read_view(h).expect("live handle");
            let syncs_before = db.metrics.wal_syncs;
            match db.commit(h).expect("live handle") {
                Op::Done(()) => {
                    db.retire(h).expect("committed handle");
                    term.handle = None;
                    committed += 1;
                    // A commit that flushed the log pays the fsync; under
                    // group commit only the batch leader does, which is
                    // the whole throughput argument.
                    let sync_cost = if db.metrics.wal_syncs > syncs_before {
                        cfg.sync_time
                    } else {
                        0.0
                    };
                    latencies.push(ev.time + cfg.exec_time + sync_cost - term.started_at);
                    seq += 1;
                    if cfg.check {
                        history.push(CommittedTxn {
                            ops: std::mem::take(&mut term.ops),
                            view,
                            commit_seq: seq,
                        });
                    }
                    if record_journal {
                        journal.push(db.committed_globals());
                    }
                    if committed >= cfg.total_txns {
                        break 'sim;
                    }
                    // Next arrival after the commit's execution + think.
                    let think = exp_sample(&mut rng, cfg.think_time);
                    queue.push(Reverse(Event {
                        time: ev.time + cfg.exec_time + sync_cost + think,
                        terminal: ev.terminal,
                    }));
                }
                Op::Restarted => {
                    term.next_op = 0;
                    term.ops.clear();
                    let attempts = db.attempts(h).expect("live handle");
                    queue.push(Reverse(Event {
                        time: ev.time + restart_delay(&mut rng, cfg, attempts),
                        terminal: ev.terminal,
                    }));
                }
                Op::Wait => {
                    queue.push(Reverse(Event {
                        time: ev.time + retry_delay(&mut rng, cfg),
                        terminal: ev.terminal,
                    }));
                }
            }
        } else {
            let op = term.prog[term.next_op];
            match submit_op(&mut db, h, op) {
                Op::Done(_) => {
                    seq += 1;
                    if cfg.check {
                        term.ops.push((seq, op));
                    }
                    term.next_op += 1;
                    // The commit rides its own event right after the last
                    // operation's execution time; earlier operations pay
                    // execution + think.
                    let pause = if term.next_op == term.prog.len() {
                        cfg.exec_time
                    } else {
                        cfg.exec_time + exp_sample(&mut rng, cfg.think_time)
                    };
                    queue.push(Reverse(Event {
                        time: ev.time + pause + cfg.scheduling_time,
                        terminal: ev.terminal,
                    }));
                }
                Op::Wait => {
                    queue.push(Reverse(Event {
                        time: ev.time + retry_delay(&mut rng, cfg),
                        terminal: ev.terminal,
                    }));
                }
                Op::Restarted => {
                    term.next_op = 0;
                    term.ops.clear();
                    let attempts = db.attempts(h).expect("live handle");
                    queue.push(Reverse(Event {
                        time: ev.time + restart_delay(&mut rng, cfg, attempts),
                        terminal: ev.terminal,
                    }));
                }
            }
        }
        peak_slots = peak_slots.max(db.num_slots());
        peak_open = peak_open.max(db.open_sessions());
        if let Some(v) = db.live_versions() {
            peak_versions = peak_versions.max(v);
        }
    }

    // Wind down: abort the in-flight sessions so the final state holds
    // committed effects only (and their slots retire cleanly). Their
    // client-aborts are bookkeeping, not contention — excluded from the
    // reported abort counts.
    let stream_aborts = db.metrics.aborts;
    // Attribution is snapshotted with the stream's abort count: the
    // wind-down client-aborts below are bookkeeping and stay out of both.
    let aborts_by_rule = named_abort_rules(&db.metrics.aborts_by_rule);
    for term in &mut terminals {
        if let Some(h) = term.handle.take() {
            db.abort(h).expect("live handle");
        }
    }
    peak_slots = peak_slots.max(db.num_slots());
    if let Some(hub) = &hub {
        hub.flush();
    }

    let clat = db.commit_latency_ticks().clone();
    let top_contended: Vec<(u32, usize, usize)> = db
        .top_contended(TOP_CONTENDED)
        .iter()
        .map(|r| (r.var.0, r.waits, r.aborts))
        .collect();
    let m = db.metrics;
    OpenSimResult {
        cc_name,
        committed,
        aborts: stream_aborts,
        waits: m.waits,
        retires: m.retires,
        mv_write_aborts: m.mv_write_aborts,
        clock,
        throughput: committed as f64 / clock.max(1e-9),
        latency: Summary::of(&latencies),
        abort_rate: if committed == 0 {
            0.0
        } else {
            stream_aborts as f64 / committed as f64
        },
        peak_slots,
        peak_open_sessions: peak_open,
        peak_live_versions: peak_versions,
        versions_reclaimed: m.versions_reclaimed,
        final_state: db.globals(),
        history,
        multiversion,
        defers_writes,
        wal_records: m.wal_records,
        wal_syncs: m.wal_syncs,
        journal,
        shard_restarts: 0,
        shed_aborts: 0,
        io_retries: m.io_retries,
        recovery_secs: 0.0,
        recovery_replayed: db.recovery_info().map_or(0, |ri| ri.committed),
        commit_lat_ticks_p50: clat.quantile(0.5),
        commit_lat_ticks_p99: clat.quantile(0.99),
        top_contended,
        aborts_by_rule,
    }
}

/// Replay the committed history against a serial order and compare final
/// states — the open-world serializability spot-check.
///
/// Single-version mechanisms: build the conflict graph over the committed
/// operations (reads conflict at their execution sequence; the writes of
/// deferred-write mechanisms take effect at the commit sequence, matching
/// when they reached storage), topologically sort it, and replay the
/// transactions serially in that order. Multi-version (MVTO): replay in
/// begin-timestamp order — MVTO's serialization theorem. A conflict cycle
/// or a final-state mismatch is reported as `Err`.
///
/// Snapshot isolation admits write skew by design; callers exempt it.
pub fn check_serializable(r: &OpenSimResult) -> Result<(), String> {
    let order: Vec<usize> = if r.multiversion {
        let mut idx: Vec<usize> = (0..r.history.len()).collect();
        idx.sort_by_key(|&i| (r.history[i].view, r.history[i].commit_seq));
        idx
    } else {
        topo_order(&r.history, r.defers_writes)?
    };
    let mut state = vec![0i64; r.final_state.len()];
    for &i in &order {
        for &(_, op) in &r.history[i].ops {
            if op.kind.writes() {
                let slot = &mut state[op.var.index()];
                *slot = op.eval(*slot);
            }
        }
    }
    let replayed = GlobalState::from_ints(&state);
    if replayed == r.final_state {
        Ok(())
    } else {
        Err(format!(
            "{}: serial replay of {} committed txns diverges: replay {replayed} vs engine {}",
            r.cc_name,
            r.history.len(),
            r.final_state
        ))
    }
}

/// Assert the committed history is **strict** — the property redo-only
/// logging rests on: no transaction observes another's uncommitted write,
/// and writes are installed only under their writer's control, undone
/// before anyone else can see them on abort. Strict committed histories
/// are reproducible from committed write-sets in commit order, so a redo
/// log needs nothing else.
///
/// * Deferred-write mechanisms (OCC, MVTO, SI) are strict by
///   construction: buffered writes reach the store only in the commit
///   write phase, so the store never holds uncommitted data at all — the
///   checker verifies the structural invariant that every operation
///   executed before its transaction's commit point and trusts deferral
///   for the rest.
/// * Immediate-write mechanisms (serial, 2PL, SGT, T/O) install writes
///   mid-transaction; the checker sweeps each variable's committed
///   accesses in global execution order and rejects any access that lands
///   inside another transaction's write-to-commit window.
pub fn check_strict(r: &OpenSimResult) -> Result<(), String> {
    for (i, t) in r.history.iter().enumerate() {
        for &(s, _) in &t.ops {
            if s >= t.commit_seq {
                return Err(format!(
                    "{}: txn {i} executed an op at seq {s} at/after its commit {}",
                    r.cc_name, t.commit_seq
                ));
            }
        }
    }
    if r.defers_writes {
        return Ok(()); // buffered writes: the store holds committed data only
    }
    // Per variable: every access in (write_seq, writer_commit_seq) of a
    // different transaction is a strictness violation.
    let mut by_var: std::collections::BTreeMap<u32, Vec<(u64, usize, bool, u64)>> =
        std::collections::BTreeMap::new();
    for (i, t) in r.history.iter().enumerate() {
        for &(s, op) in &t.ops {
            by_var
                .entry(op.var.0)
                .or_default()
                .push((s, i, op.kind.writes(), t.commit_seq));
        }
    }
    for (var, accs) in &mut by_var {
        accs.sort_unstable();
        // The open dirty window: (owner, commit_seq of the owner).
        let mut dirty: Option<(usize, u64)> = None;
        for &(s, i, writes, commit_seq) in accs.iter() {
            if let Some((owner, until)) = dirty {
                if s >= until {
                    dirty = None;
                } else if i != owner {
                    return Err(format!(
                        "{}: txn {i} touched v{var} at seq {s}, inside txn {owner}'s \
                         uncommitted write window (ends at {until})",
                        r.cc_name
                    ));
                }
            }
            if writes {
                dirty = Some((i, commit_seq));
            }
        }
    }
    Ok(())
}

/// Conflict-graph topological order of a single-version committed history
/// (`Err` when the conflict graph has a cycle — a serializability
/// violation on its own).
fn topo_order(history: &[CommittedTxn], defers_writes: bool) -> Result<Vec<usize>, String> {
    let n = history.len();
    // Flatten to (effect sequence, txn, var, kind): the point each access
    // became visible to others. Reads observe at execution; the writes of
    // a deferred-write mechanism reach storage only in the commit-time
    // write phase, so their effect sequence is the commit's.
    let mut accesses: Vec<(u64, usize, u32, StepKind)> = Vec::new();
    for (i, t) in history.iter().enumerate() {
        for &(s, op) in &t.ops {
            let eff = if defers_writes && op.kind.writes() {
                t.commit_seq
            } else {
                s
            };
            accesses.push((eff, i, op.var.0, op.kind));
        }
    }
    accesses.sort_unstable_by_key(|&(s, i, _, _)| (s, i));
    let mut out: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut in_deg: Vec<usize> = vec![0; n];
    // Per variable, every conflicting ordered pair adds an edge.
    let mut by_var: std::collections::BTreeMap<u32, Vec<(u64, usize, StepKind)>> =
        std::collections::BTreeMap::new();
    for &(s, i, v, k) in &accesses {
        by_var.entry(v).or_default().push((s, i, k));
    }
    for accs in by_var.values() {
        for (x, &(_, i, ki)) in accs.iter().enumerate() {
            for &(_, j, kj) in &accs[x + 1..] {
                if i != j && ki.conflicts_with(kj) && !out[i].contains(&j) {
                    out[i].push(j);
                    in_deg[j] += 1;
                }
            }
        }
    }
    // Kahn, smallest index first for determinism.
    let mut ready: std::collections::BinaryHeap<Reverse<usize>> =
        (0..n).filter(|&i| in_deg[i] == 0).map(Reverse).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(Reverse(i)) = ready.pop() {
        order.push(i);
        for &j in &out[i] {
            in_deg[j] -= 1;
            if in_deg[j] == 0 {
                ready.push(Reverse(j));
            }
        }
    }
    if order.len() == n {
        Ok(order)
    } else {
        Err(format!(
            "conflict cycle among {} committed transactions",
            n - order.len()
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_engine::cc::{MvtoCc, OccCc, SgtCc, SiCc, Strict2plCc};

    fn quick(seed: u64) -> OpenSimConfig {
        OpenSimConfig {
            terminals: 4,
            total_txns: 60,
            vars: 6,
            seed,
            check: true,
            ..OpenSimConfig::default()
        }
    }

    #[test]
    fn stream_commits_exactly_and_slots_stay_bounded() {
        let cfg = quick(7);
        let r = simulate_open(&|| Box::new(Strict2plCc::default()), &cfg);
        assert_eq!(r.committed, 60);
        assert_eq!(r.history.len(), 60);
        assert!(r.peak_slots <= cfg.terminals);
        assert!(r.retires >= r.committed);
        assert!(r.throughput > 0.0);
        assert_eq!(r.latency.n, 60);
    }

    #[test]
    fn deterministic_in_the_seed() {
        let cfg = quick(11);
        let a = simulate_open(&|| Box::new(OccCc::default()), &cfg);
        let b = simulate_open(&|| Box::new(OccCc::default()), &cfg);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.aborts, b.aborts);
        assert_eq!(a.waits, b.waits);
        assert_eq!(a.latency, b.latency);
        assert_eq!(a.final_state, b.final_state);
        assert!((a.throughput - b.throughput).abs() == 0.0);
    }

    #[test]
    fn committed_histories_replay_serializably() {
        for seed in [1u64, 2, 3] {
            let cfg = quick(seed);
            for (mk, name) in [
                (
                    (|| Box::new(Strict2plCc::default()) as Box<dyn ConcurrencyControl>)
                        as fn() -> Box<dyn ConcurrencyControl>,
                    "2PL",
                ),
                (|| Box::new(SgtCc::default()) as _, "SGT"),
                (|| Box::new(OccCc::default()) as _, "OCC"),
                (|| Box::new(MvtoCc::default()) as _, "MVTO"),
            ] {
                let r = simulate_open(&mk, &cfg);
                assert_eq!(r.committed, 60, "{name} seed {seed}");
                check_serializable(&r).unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            }
        }
    }

    #[test]
    fn si_runs_the_stream_but_is_exempt_from_the_oracle() {
        let cfg = quick(5);
        let r = simulate_open(&|| Box::new(SiCc::default()), &cfg);
        assert_eq!(r.committed, 60);
        assert!(r.multiversion);
        assert!(r.versions_reclaimed > 0, "SI GC must reclaim versions");
    }

    #[test]
    fn op_spec_eval_is_bounded() {
        let op = OpSpec {
            var: VarId(0),
            kind: StepKind::Update,
            a: 2,
            c: -2,
        };
        let mut v = 0i64;
        for _ in 0..1000 {
            v = op.eval(v);
            assert!((0..MOD).contains(&v));
        }
    }
}
