//! Order-level simulation: random request histories through online
//! schedulers.
//!
//! This measures exactly what Section 6 derives from the fixpoint set:
//! "the probability that none of the transaction steps have to wait is
//! |P|/|H|" and "the richer P is the easier (and hence less waiting
//! required) to rearrange a history originally not in P into one in P".

use ccopt_core::scheduler::{run_scheduler, OnlineScheduler};
use ccopt_schedule::enumerate::sample_schedule;
use rand::Rng;

/// Aggregate delay behaviour of a scheduler under uniform random histories.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayProfile {
    /// Histories sampled.
    pub samples: usize,
    /// Fraction passed without any delay (estimates `|P|/|H|`).
    pub fixpoint_rate: f64,
    /// Mean number of delayed requests per history.
    pub avg_delayed_requests: f64,
    /// Mean total wait (grant-position minus arrival-position, summed).
    pub avg_total_wait: f64,
}

/// Sample `samples` uniform histories of `format` and run them through the
/// scheduler.
pub fn delay_profile<R: Rng + ?Sized>(
    s: &mut dyn OnlineScheduler,
    format: &[u32],
    samples: usize,
    rng: &mut R,
) -> DelayProfile {
    let mut fix = 0usize;
    let mut delayed = 0usize;
    let mut wait = 0usize;
    for _ in 0..samples {
        let h = sample_schedule(format, rng);
        let run = run_scheduler(s, &h);
        if run.no_delays {
            fix += 1;
        }
        delayed += run.delayed_requests;
        wait += run.total_wait;
    }
    DelayProfile {
        samples,
        fixpoint_rate: fix as f64 / samples as f64,
        avg_delayed_requests: delayed as f64 / samples as f64,
        avg_total_wait: wait as f64 / samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccopt_model::systems;
    use ccopt_schedulers::suite::scheduler_suite;
    use ccopt_schedulers::SerialScheduler;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn serial_profile_matches_exact_ratio() {
        let format = [2, 2];
        let mut s = SerialScheduler::new(&format);
        let mut rng = SmallRng::seed_from_u64(1);
        let p = delay_profile(&mut s, &format, 4000, &mut rng);
        // Exact |P|/|H| = 2/6.
        assert!((p.fixpoint_rate - 1.0 / 3.0).abs() < 0.03, "{p:?}");
        assert!(p.avg_total_wait > 0.0);
    }

    #[test]
    fn richer_schedulers_wait_less() {
        let sys = systems::rw_pair(2);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut rates = Vec::new();
        for mut s in scheduler_suite(&sys) {
            let p = delay_profile(s.as_mut(), &sys.format(), 1500, &mut rng);
            rates.push((s.name().to_string(), p.fixpoint_rate, p.avg_total_wait));
        }
        let serial = &rates[0];
        let sgt = &rates[4];
        assert!(serial.1 < sgt.1, "serial {serial:?} vs SGT {sgt:?}");
        assert!(serial.2 > sgt.2, "waiting should shrink with information");
    }

    #[test]
    fn deterministic_under_seed() {
        let format = [2, 1];
        let mut s1 = SerialScheduler::new(&format);
        let mut s2 = SerialScheduler::new(&format);
        let mut r1 = SmallRng::seed_from_u64(9);
        let mut r2 = SmallRng::seed_from_u64(9);
        assert_eq!(
            delay_profile(&mut s1, &format, 500, &mut r1),
            delay_profile(&mut s2, &format, 500, &mut r2)
        );
    }
}
