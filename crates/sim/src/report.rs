//! Aligned text tables for experiment output.

use std::fmt;

/// A simple aligned text table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Convenience for building rows from display values.
    pub fn row_display(&mut self, cells: &[&dyn fmt::Display]) -> &mut Self {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "== {} ==", self.title)?;
        let fmt_row = |row: &[String]| -> String {
            row.iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        writeln!(f, "{}", fmt_row(&self.headers))?;
        writeln!(
            f,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        )?;
        for row in &self.rows {
            writeln!(f, "{}", fmt_row(row))?;
        }
        Ok(())
    }
}

/// Format a float with three decimal places (experiment convention).
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Format a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["serial".into(), "0.333".into()]);
        t.row(&["SGT".into(), "1".into()]);
        let s = t.to_string();
        assert!(s.contains("== demo =="));
        assert!(s.contains("name"));
        assert!(s.contains("serial"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // All data lines have equal width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(f3(1.23456), "1.235");
        assert_eq!(pct(0.5), "50.0%");
    }
}
