//! Sharded open-world simulation: arrival-driven session streams over a
//! [`ShardedDb`], with a cross-shard-ratio workload axis.
//!
//! The event loop is the same discrete-event machine as
//! [`crate::open_sim`] — `K` terminals, jittered wait polling,
//! attempt-scaled restart backoff, deterministic in the seed — driving a
//! hash-partitioned, worker-thread-per-shard database instead of a single
//! [`SessionDb`](ccopt_engine::SessionDb). Each arrival draws either a
//! **single-shard** program (all operations inside one home shard — the
//! fast path a good partitioning maximizes) or, with probability
//! [`cross_ratio`](ShardSimConfig::cross_ratio), a **cross-shard** program
//! alternating between two shards, whose commit runs the two-phase
//! protocol.
//!
//! With one shard and `cross_ratio = 0`, the generator, the RNG draw
//! order and the engine decisions are *identical* to [`crate::open_sim`]:
//! the `S = 1` cells of the sharded benchmark grid reproduce the
//! open-world grid bit for bit — the sharding layer adds no distortion
//! (pinned by `tests/sharded.rs` and asserted by the throughput harness).
//!
//! Sharding introduces one liveness hazard no shard-local mechanism can
//! see: wait cycles *across* shards (2PL lock cycles spanning shards, the
//! serial token, SGT's commit-order gate). The driver therefore carries a
//! **wait-bound restart valve**: a transaction that answers `Wait` more
//! than [`wait_restart_after`](ShardSimConfig::wait_restart_after) times
//! in a row is force-restarted ([`ShardedDb::restart`]) — the standard
//! timeout resolution for distributed deadlock, always safe, and off on
//! `S = 1` (where shard-local detectors are complete).
//!
//! The committed history is recorded in global sequence order with global
//! commit points and global begin timestamps, so the ordinary
//! [`check_serializable`](crate::open_sim::check_serializable) oracle
//! applies unchanged to cross-shard histories: conflict-graph replay over
//! the union of all shards' conflicts for single-version mechanisms,
//! begin-timestamp replay for MVTO, SI exempt (`docs/SHARDING.md` gives
//! the argument for why all seven mechanisms pass it).
//!
//! A [`FaultPlan`] scripts faults into a run
//! ([`simulate_sharded_faulty`]): shard-worker panics and transient
//! storage faults fire at configured commit counts, and shard mailboxes
//! can be bounded so overload sheds. The driver treats a failed global
//! transaction ([`ShardDown`](ccopt_engine::SessionError::ShardDown))
//! like any other loss: abort, back off on the existing jittered restart
//! delay, and redrive — so the stream still serves fully once the faults
//! stop (the liveness claim of `tests/faults.rs`). On durable runs with
//! the journal on, the simulation asserts after every supervised
//! recovery that the committed global state still equals the journal
//! head: a shard crash never loses or invents a committed transaction
//! (`docs/FAULTS.md`).

use crate::open_sim::{
    exp_sample, gen_program, named_abort_rules, restart_delay, retry_delay, CommittedTxn, OpSpec,
    OpenSimConfig, OpenSimResult, TOP_CONTENDED,
};
use crate::stats::Summary;
use ccopt_engine::cc::ConcurrencyControl;
use ccopt_engine::durability::{Fault, StorageFaults};
use ccopt_engine::session::{Op, SessionError};
use ccopt_engine::shard::{GlobalTxn, ShardedDb};
use ccopt_engine::{DurabilityMode, TraceConfig};
use ccopt_model::ids::VarId;
use ccopt_model::state::GlobalState;
use ccopt_model::syntax::StepKind;
use ccopt_model::value::Value;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::path::PathBuf;

/// Sharded simulation parameters: the open-world base plus the sharding
/// axes.
#[derive(Clone, Debug)]
pub struct ShardSimConfig {
    /// The open-world parameters (terminals, stream length, variable
    /// count, operation mix, timing costs, seed).
    pub base: OpenSimConfig,
    /// Number of shards the variable universe is hash-partitioned over.
    pub shards: usize,
    /// Probability that an arriving transaction spans two shards (its
    /// commit then runs the two-phase protocol). Ignored on `shards = 1`.
    pub cross_ratio: f64,
    /// Consecutive `Wait` answers before the driver force-restarts the
    /// transaction (the distributed-deadlock valve). Only active on
    /// `shards > 1`.
    pub wait_restart_after: u32,
}

impl ShardSimConfig {
    /// A sharded configuration over `base` with `shards` shards and the
    /// given cross-shard ratio (valve at its default of 24).
    pub fn new(base: OpenSimConfig, shards: usize, cross_ratio: f64) -> ShardSimConfig {
        ShardSimConfig {
            base,
            shards,
            cross_ratio,
            wait_restart_after: 24,
        }
    }
}

/// Durability parameters of [`simulate_sharded_durable`].
#[derive(Clone, Debug)]
pub struct ShardDurableConfig {
    /// Directory holding one write-ahead log per shard.
    pub dir: PathBuf,
    /// Flush policy (cross-shard prepares and coordinator resolves force
    /// their own fsyncs in every mode).
    pub mode: DurabilityMode,
    /// Crash injection: kill every shard log after this many durable 2PC
    /// actions (see [`ShardedDb::crash_after_2pc_actions`]).
    pub crash_after_2pc_actions: Option<u64>,
    /// Record the committed-prefix journal (`journal[k]` = global
    /// committed state after `k` commits) for the crash differentials.
    pub record_journal: bool,
}

impl ShardDurableConfig {
    /// A durable run under `dir`/`mode`, no crash, no journal.
    pub fn new(dir: PathBuf, mode: DurabilityMode) -> ShardDurableConfig {
        ShardDurableConfig {
            dir,
            mode,
            crash_after_2pc_actions: None,
            record_journal: false,
        }
    }
}

/// Scripted faults for [`simulate_sharded_faulty`]: each entry fires once,
/// when the global committed count first reaches its threshold, so a plan
/// is deterministic in the seed like everything else in the simulator.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    /// `(after_commits, shard)`: panic the shard's worker thread — the
    /// supervisor restarts it in place (recovering its log on durable
    /// runs) and fails the global transactions that had state there.
    pub shard_panics: Vec<(usize, usize)>,
    /// `(after_commits, shard, times)`: script `times` transient fsync
    /// failures on the shard's write-ahead log (durable runs only; the
    /// log retries on bounded backoff and the run proceeds).
    pub transient_sync_faults: Vec<(usize, usize, u32)>,
    /// Bound every shard mailbox at this many jobs (`None` = unbounded):
    /// operations arriving at a full shard are shed — the transaction
    /// restarts instead of queueing behind the backlog.
    pub queue_capacity: Option<usize>,
}

impl FaultPlan {
    /// A plan panicking `shard` after `after_commits` commits.
    pub fn panic_at(after_commits: usize, shard: usize) -> FaultPlan {
        FaultPlan {
            shard_panics: vec![(after_commits, shard)],
            ..FaultPlan::default()
        }
    }
}

#[derive(PartialEq)]
struct Event {
    time: f64,
    terminal: usize,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .partial_cmp(&other.time)
            .expect("event times are finite")
            .then(self.terminal.cmp(&other.terminal))
    }
}

struct Terminal {
    handle: Option<GlobalTxn>,
    prog: Vec<OpSpec>,
    next_op: usize,
    started_at: f64,
    ops: Vec<(u64, OpSpec)>,
    /// Consecutive `Wait` answers of the current attempt (valve input).
    consec_waits: u32,
}

/// Draw one sharded transaction program: single-shard (all operations in
/// one home shard) or, with probability `cross_ratio`, alternating
/// between a home and an away shard so at least two shards are touched.
fn gen_sharded_program(
    rng: &mut SmallRng,
    scfg: &ShardSimConfig,
    shard_vars: &[Vec<VarId>],
    nonempty: &[usize],
) -> Vec<OpSpec> {
    let cfg = &scfg.base;
    let n = rng.gen_range(cfg.steps.0..=cfg.steps.1.max(cfg.steps.0));
    let cross = nonempty.len() >= 2 && rng.gen_range(0.0..1.0) < scfg.cross_ratio;
    let home = nonempty[rng.gen_range(0..nonempty.len())];
    let away = if cross {
        let mut s = nonempty[rng.gen_range(0..nonempty.len())];
        while s == home {
            s = nonempty[rng.gen_range(0..nonempty.len())];
        }
        s
    } else {
        home
    };
    (0..n)
        .map(|i| {
            // Odd operations of a cross transaction go to the away shard:
            // any program of two or more operations really spans both.
            let vars = &shard_vars[if cross && i % 2 == 1 { away } else { home }];
            let var = if vars.len() > 1 && rng.gen_range(0.0..1.0) < cfg.hot_fraction {
                vars[0]
            } else {
                vars[rng.gen_range(0..vars.len())]
            };
            let r: f64 = rng.gen_range(0.0..1.0);
            let kind = if r < cfg.read_fraction {
                StepKind::Read
            } else if r < cfg.read_fraction + (1.0 - cfg.read_fraction) * 0.25 {
                StepKind::Write
            } else {
                StepKind::Update
            };
            let a = [1i64, 1, 2, -1][rng.gen_range(0..4usize)];
            let c = rng.gen_range(-2i64..=2);
            OpSpec { var, kind, a, c }
        })
        .collect()
}

/// Submit one operation through the sharded API. `Err` is a failed
/// global transaction (its shard crashed or is down) for the driver's
/// abort-and-redrive path.
fn submit_op(db: &mut ShardedDb, h: GlobalTxn, op: OpSpec) -> Result<Op<Value>, SessionError> {
    match op.kind {
        StepKind::Read => db.read(h, op.var),
        StepKind::Write => db.write(h, op.var, Value::Int(op.eval(0))),
        StepKind::Update => db.update(h, op.var, move |v| {
            Value::Int(op.eval(v.as_int().expect("sharded stores hold ints")))
        }),
    }
}

/// Run the sharded open-world simulation for one mechanism (no
/// durability).
pub fn simulate_sharded(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    scfg: &ShardSimConfig,
) -> OpenSimResult {
    simulate_sharded_impl(make_cc, scfg, None, None, None)
}

/// Run the sharded simulation with the trace plane on
/// ([`ShardedDb::set_trace`]): every shard streams lifecycle events to
/// the shared JSONL sink (flushed before returning), keeps a
/// flight-recorder ring the supervisor dumps on a worker crash (under
/// [`dump_dir`](ccopt_engine::TraceConfig::dump_dir)), and the merged
/// trace is totally ordered by the hub's global stamp. Composes with a
/// [`FaultPlan`] and durability — the traced faulty run is exactly the
/// flight-recorder acceptance scenario.
///
/// # Panics
/// Panics when the logs or the trace sink cannot be created (harness
/// convention).
pub fn simulate_sharded_traced(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    scfg: &ShardSimConfig,
    dur: Option<&ShardDurableConfig>,
    plan: Option<&FaultPlan>,
    trace: &TraceConfig,
) -> OpenSimResult {
    simulate_sharded_impl(make_cc, scfg, dur, plan, Some(trace))
}

/// Run the sharded open-world simulation against a durable
/// [`ShardedDb::open`] (one write-ahead log per shard under
/// [`dir`](ShardDurableConfig::dir); existing logs are recovered first,
/// in-doubt 2PC transactions settled against their coordinator shard).
/// The simulation ends like a crash — nothing is flushed on exit.
///
/// # Panics
/// Panics when the logs cannot be opened or recovered (harness
/// convention: configuration errors are bugs in the experiment).
pub fn simulate_sharded_durable(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    scfg: &ShardSimConfig,
    dur: &ShardDurableConfig,
) -> OpenSimResult {
    simulate_sharded_impl(make_cc, scfg, Some(dur), None, None)
}

/// Run the sharded open-world simulation under a scripted [`FaultPlan`]
/// (optionally durable). Shard panics are supervised in place; failed
/// global transactions are aborted and redriven by the terminals on the
/// ordinary jittered restart backoff, so the stream serves fully once
/// the plan's faults have fired.
///
/// # Panics
/// Panics when the logs cannot be opened, or — on durable journal runs —
/// when a supervised recovery loses committed state (the committed-prefix
/// consistency assertion).
pub fn simulate_sharded_faulty(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    scfg: &ShardSimConfig,
    dur: Option<&ShardDurableConfig>,
    plan: &FaultPlan,
) -> OpenSimResult {
    simulate_sharded_impl(make_cc, scfg, dur, Some(plan), None)
}

fn simulate_sharded_impl(
    make_cc: &(dyn Fn() -> Box<dyn ConcurrencyControl> + Sync),
    scfg: &ShardSimConfig,
    dur: Option<&ShardDurableConfig>,
    plan: Option<&FaultPlan>,
    trace: Option<&TraceConfig>,
) -> OpenSimResult {
    let cfg = &scfg.base;
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ 0x09E2_5EED);
    let init = GlobalState::from_ints(&vec![0; cfg.vars]);
    let mut db = match dur {
        None => ShardedDb::with_capacity(&make_cc, init, scfg.shards, cfg.terminals),
        Some(d) => ShardedDb::open(&make_cc, init, &d.dir, d.mode, scfg.shards, cfg.terminals)
            .expect("open the durable sharded database"),
    };
    if let Some(d) = dur {
        if let Some(n) = d.crash_after_2pc_actions {
            db.crash_after_2pc_actions(n);
        }
    }
    // Pending scripted faults, drained as their commit thresholds pass.
    let mut due_panics = plan.map(|p| p.shard_panics.clone()).unwrap_or_default();
    let mut due_io = plan
        .map(|p| p.transient_sync_faults.clone())
        .unwrap_or_default();
    if let Some(cap) = plan.and_then(|p| p.queue_capacity) {
        db.set_queue_capacity(cap);
    }
    if let Some(tc) = trace {
        db.set_trace(tc).expect("open the trace sink");
    }
    let cc_name = db.cc_name().to_string();
    let multiversion = db.multiversion();
    let defers_writes = db.defers_writes();
    // Shard-local variable lists for the program generator, read from
    // the database's own partition (shards that own no variables are
    // never a home or away shard).
    let shard_vars: Vec<Vec<VarId>> = (0..scfg.shards)
        .map(|s| db.shard_vars(s).to_vec())
        .collect();
    let nonempty: Vec<usize> = (0..scfg.shards)
        .filter(|&s| !shard_vars[s].is_empty())
        .collect();
    let single = scfg.shards == 1;

    let mut terminals: Vec<Terminal> = (0..cfg.terminals)
        .map(|_| Terminal {
            handle: None,
            prog: Vec::new(),
            next_op: 0,
            started_at: 0.0,
            ops: Vec::new(),
            consec_waits: 0,
        })
        .collect();
    let mut queue: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    for terminal in 0..cfg.terminals {
        queue.push(Reverse(Event {
            time: exp_sample(&mut rng, cfg.think_time),
            terminal,
        }));
    }

    let mut clock = 0.0f64;
    let mut committed = 0usize;
    let mut seq = 0u64;
    let mut latencies: Vec<f64> = Vec::with_capacity(cfg.total_txns);
    let mut history: Vec<CommittedTxn> = Vec::new();
    let record_journal = dur.is_some_and(|d| d.record_journal);
    let mut journal: Vec<GlobalState> = Vec::new();
    if record_journal {
        journal.push(db.committed_globals());
    }
    let mut peak_open = 0usize;
    let mut peak_versions = 0usize;
    let mut events = 0usize;

    // A failed global transaction (its shard crashed mid-flight or is
    // down): abort it, back off on the ordinary jittered restart delay,
    // and let the terminal redrive a fresh transaction — fault recovery
    // is just another restart to the open-world driver.
    macro_rules! shard_down {
        ($term:expr, $h:expr, $ev:expr) => {{
            let _ = db.abort($h);
            $term.handle = None;
            $term.ops.clear();
            $term.consec_waits = 0;
            queue.push(Reverse(Event {
                time: $ev.time + restart_delay(&mut rng, cfg, 2),
                terminal: $ev.terminal,
            }));
        }};
    }

    'sim: while let Some(Reverse(ev)) = queue.pop() {
        events += 1;
        if events > cfg.max_events {
            break;
        }
        clock = ev.time;
        let term = &mut terminals[ev.terminal];
        if term.handle.is_none() {
            term.prog = if single {
                gen_program(&mut rng, cfg)
            } else {
                gen_sharded_program(&mut rng, scfg, &shard_vars, &nonempty)
            };
            term.handle = Some(db.begin());
            term.next_op = 0;
            term.started_at = ev.time;
            term.ops.clear();
            term.consec_waits = 0;
        }
        let h = term.handle.expect("just ensured");
        // The distributed-deadlock valve: shard-local detectors cannot
        // see cross-shard wait cycles, so persistent waiting falls back
        // to a forced restart (safe for every mechanism).
        let valve = !single && term.consec_waits >= scfg.wait_restart_after;
        if valve {
            if db.restart(h).is_err() {
                shard_down!(term, h, ev);
                continue 'sim;
            }
            term.next_op = 0;
            term.ops.clear();
            term.consec_waits = 0;
            let attempts = db.attempts(h).expect("live handle");
            queue.push(Reverse(Event {
                time: ev.time + restart_delay(&mut rng, cfg, attempts),
                terminal: ev.terminal,
            }));
            peak_open = peak_open.max(db.open_sessions());
            continue;
        }
        if term.next_op == term.prog.len() {
            let Ok(view) = db.read_view(h) else {
                shard_down!(term, h, ev);
                continue 'sim;
            };
            let outcome = match db.commit(h) {
                Ok(o) => o,
                Err(SessionError::ShardDown) => {
                    shard_down!(term, h, ev);
                    continue 'sim;
                }
                Err(e) => panic!("sharded-sim commit: {e}"),
            };
            match outcome {
                Op::Done(()) => {
                    db.retire(h).expect("committed handle");
                    term.handle = None;
                    term.consec_waits = 0;
                    committed += 1;
                    latencies.push(ev.time + cfg.exec_time - term.started_at);
                    seq += 1;
                    if cfg.check {
                        history.push(CommittedTxn {
                            ops: std::mem::take(&mut term.ops),
                            view,
                            commit_seq: seq,
                        });
                    }
                    if record_journal {
                        journal.push(db.committed_globals());
                    }
                    if let Some(vs) = db.live_versions() {
                        peak_versions = peak_versions.max(vs);
                    }
                    // Fire the scripted faults whose commit thresholds
                    // just passed; supervise crashes right away so the
                    // committed-prefix assertion sees the recovered
                    // state (terminals discover their failed
                    // transactions on their next operation).
                    let mut panicked = false;
                    due_panics.retain(|&(at, s)| {
                        if committed >= at {
                            if !db.shard_is_down(s) {
                                db.panic_shard(s);
                            }
                            panicked = true;
                            false
                        } else {
                            true
                        }
                    });
                    due_io.retain(|&(at, s, times)| {
                        if committed >= at {
                            db.set_shard_faults(
                                s,
                                StorageFaults::new().fail_sync(0, Fault::Transient { times }),
                            );
                            false
                        } else {
                            true
                        }
                    });
                    if panicked {
                        db.check_shards();
                        if record_journal {
                            // Committed-prefix consistency after every
                            // recovery: a supervised restart must
                            // rebuild exactly the committed state — no
                            // committed transaction lost, none invented.
                            assert_eq!(
                                &db.committed_globals(),
                                journal.last().expect("journal holds the initial state"),
                                "sharded fault sim: supervised recovery lost committed state"
                            );
                        }
                    }
                    if committed >= cfg.total_txns {
                        break 'sim;
                    }
                    let think = exp_sample(&mut rng, cfg.think_time);
                    queue.push(Reverse(Event {
                        time: ev.time + cfg.exec_time + think,
                        terminal: ev.terminal,
                    }));
                }
                Op::Restarted => {
                    term.next_op = 0;
                    term.ops.clear();
                    term.consec_waits = 0;
                    let attempts = db.attempts(h).expect("live handle");
                    queue.push(Reverse(Event {
                        time: ev.time + restart_delay(&mut rng, cfg, attempts),
                        terminal: ev.terminal,
                    }));
                }
                Op::Wait => {
                    term.consec_waits += 1;
                    queue.push(Reverse(Event {
                        time: ev.time + retry_delay(&mut rng, cfg),
                        terminal: ev.terminal,
                    }));
                }
            }
        } else {
            let op = term.prog[term.next_op];
            let outcome = match submit_op(&mut db, h, op) {
                Ok(o) => o,
                Err(SessionError::ShardDown) => {
                    shard_down!(term, h, ev);
                    continue 'sim;
                }
                Err(e) => panic!("sharded-sim operation: {e}"),
            };
            match outcome {
                Op::Done(_) => {
                    seq += 1;
                    if cfg.check {
                        term.ops.push((seq, op));
                    }
                    term.next_op += 1;
                    term.consec_waits = 0;
                    let pause = if term.next_op == term.prog.len() {
                        cfg.exec_time
                    } else {
                        cfg.exec_time + exp_sample(&mut rng, cfg.think_time)
                    };
                    queue.push(Reverse(Event {
                        time: ev.time + pause + cfg.scheduling_time,
                        terminal: ev.terminal,
                    }));
                }
                Op::Wait => {
                    term.consec_waits += 1;
                    queue.push(Reverse(Event {
                        time: ev.time + retry_delay(&mut rng, cfg),
                        terminal: ev.terminal,
                    }));
                }
                Op::Restarted => {
                    term.next_op = 0;
                    term.ops.clear();
                    term.consec_waits = 0;
                    let attempts = db.attempts(h).expect("live handle");
                    queue.push(Reverse(Event {
                        time: ev.time + restart_delay(&mut rng, cfg, attempts),
                        terminal: ev.terminal,
                    }));
                }
            }
        }
        peak_open = peak_open.max(db.open_sessions());
    }

    // Wind down: abort in-flight global transactions (bookkeeping, not
    // contention — excluded from the reported abort counts).
    // Attribution is snapshotted with the stream's abort count: the
    // wind-down client-aborts below are bookkeeping and stay out of both.
    let pre = db.metrics();
    let stream_aborts = pre.aborts;
    let aborts_by_rule = named_abort_rules(&pre.aborts_by_rule);
    for term in &mut terminals {
        if let Some(h) = term.handle.take() {
            db.abort(h).expect("live handle");
        }
    }
    db.flush_trace();

    let clat = db.commit_latency_ticks();
    let top_contended: Vec<(u32, usize, usize)> = db
        .top_contended(TOP_CONTENDED)
        .iter()
        .map(|r| (r.var.0, r.waits, r.aborts))
        .collect();
    let m = db.metrics();
    OpenSimResult {
        cc_name,
        committed,
        aborts: stream_aborts,
        waits: m.waits,
        retires: m.retires,
        mv_write_aborts: m.mv_write_aborts,
        clock,
        throughput: committed as f64 / clock.max(1e-9),
        latency: Summary::of(&latencies),
        abort_rate: if committed == 0 {
            0.0
        } else {
            stream_aborts as f64 / committed as f64
        },
        // Monotone across every shard: the final sum is the peak.
        peak_slots: db.num_slots(),
        peak_open_sessions: peak_open,
        peak_live_versions: peak_versions,
        versions_reclaimed: m.versions_reclaimed,
        final_state: db.globals(),
        history,
        multiversion,
        defers_writes,
        wal_records: m.wal_records,
        wal_syncs: m.wal_syncs,
        journal,
        shard_restarts: m.shard_restarts,
        shed_aborts: m.shed_aborts,
        io_retries: m.io_retries,
        recovery_secs: db
            .last_recovery_time()
            .map(|d| d.as_secs_f64())
            .unwrap_or(0.0),
        recovery_replayed: db.last_recovery_replayed().unwrap_or(0),
        commit_lat_ticks_p50: clat.quantile(0.5),
        commit_lat_ticks_p99: clat.quantile(0.99),
        top_contended,
        aborts_by_rule,
    }
}
