//! Summary statistics for simulation outputs.

/// Five-number-ish summary of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean (0 for empty samples).
    pub mean: f64,
    /// Population standard deviation.
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl Summary {
    /// Summarize a sample (empty samples give all-zero summaries).
    pub fn of(xs: &[f64]) -> Summary {
        if xs.is_empty() {
            return Summary {
                n: 0,
                mean: 0.0,
                std: 0.0,
                min: 0.0,
                max: 0.0,
                p50: 0.0,
                p95: 0.0,
            };
        }
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        let mut sorted = xs.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        Summary {
            n,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            max: sorted[n - 1],
            p50: percentile(&sorted, 0.50),
            p95: percentile(&sorted, 0.95),
        }
    }

    /// Half-width of a ~95% normal-approximation confidence interval for
    /// the mean.
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }
}

/// Nearest-rank percentile on a pre-sorted sample.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = (q * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample_is_all_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn simple_statistics() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.n, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!(s.std > 1.0 && s.std < 1.2);
        assert!(s.ci95() > 0.0);
    }

    #[test]
    fn percentiles_are_order_statistics() {
        let xs: Vec<f64> = (1..=100).map(f64::from).collect();
        let s = Summary::of(&xs);
        assert!((s.p50 - 50.0).abs() <= 1.0);
        assert!((s.p95 - 95.0).abs() <= 1.0);
    }

    #[test]
    fn constant_sample_has_zero_std() {
        let s = Summary::of(&[7.0; 10]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.p50, 7.0);
        assert_eq!(s.p95, 7.0);
    }
}
