//! Parameterized workload families for the experiments.

use ccopt_model::random::{random_system, RandomConfig};
use ccopt_model::system::TransactionSystem;
use ccopt_model::systems;

/// A named workload family generating systems per seed.
#[derive(Clone, Debug)]
pub enum Workload {
    /// `n` transactions, `steps` steps each, over `vars` uniformly chosen
    /// variables.
    Uniform {
        /// Number of transactions (the multiprogramming level).
        n: usize,
        /// Steps per transaction.
        steps: usize,
        /// Number of variables.
        vars: usize,
    },
    /// Like `Uniform` but a fraction of accesses hit variable 0.
    Hotspot {
        /// Number of transactions.
        n: usize,
        /// Steps per transaction.
        steps: usize,
        /// Number of variables.
        vars: usize,
        /// Probability that a step accesses the hot variable.
        hot: f64,
    },
    /// Read-mostly: a fraction of steps are pure reads.
    ReadMostly {
        /// Number of transactions.
        n: usize,
        /// Steps per transaction.
        steps: usize,
        /// Number of variables.
        vars: usize,
        /// Fraction of read steps.
        reads: f64,
    },
    /// The Section 2 banking example (fixed, seed-independent).
    Banking,
}

impl Workload {
    /// Instantiate the workload for a seed.
    pub fn instantiate(&self, seed: u64) -> TransactionSystem {
        match *self {
            Workload::Uniform { n, steps, vars } => random_system(
                &RandomConfig {
                    num_txns: n,
                    steps_per_txn: (steps, steps),
                    num_vars: vars,
                    read_fraction: 0.0,
                    hot_fraction: 0.0,
                    num_check_states: 2,
                    value_range: (-3, 3),
                },
                seed,
            ),
            Workload::Hotspot {
                n,
                steps,
                vars,
                hot,
            } => random_system(
                &RandomConfig {
                    num_txns: n,
                    steps_per_txn: (steps, steps),
                    num_vars: vars,
                    read_fraction: 0.0,
                    hot_fraction: hot,
                    num_check_states: 2,
                    value_range: (-3, 3),
                },
                seed,
            ),
            Workload::ReadMostly {
                n,
                steps,
                vars,
                reads,
            } => random_system(
                &RandomConfig {
                    num_txns: n,
                    steps_per_txn: (steps, steps),
                    num_vars: vars,
                    read_fraction: reads,
                    hot_fraction: 0.0,
                    num_check_states: 2,
                    value_range: (-3, 3),
                },
                seed,
            ),
            Workload::Banking => systems::banking(),
        }
    }

    /// Short name for tables.
    pub fn name(&self) -> String {
        match *self {
            Workload::Uniform { n, steps, vars } => format!("uniform(n={n},s={steps},v={vars})"),
            Workload::Hotspot {
                n,
                steps,
                vars,
                hot,
            } => {
                format!("hotspot(n={n},s={steps},v={vars},h={hot})")
            }
            Workload::ReadMostly {
                n,
                steps,
                vars,
                reads,
            } => {
                format!("readmostly(n={n},s={steps},v={vars},r={reads})")
            }
            Workload::Banking => "banking".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_instantiate_deterministically() {
        let w = Workload::Uniform {
            n: 3,
            steps: 2,
            vars: 2,
        };
        let a = w.instantiate(5);
        let b = w.instantiate(5);
        assert_eq!(a.syntax, b.syntax);
        assert_eq!(a.format(), vec![2, 2, 2]);
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let w = Workload::Hotspot {
            n: 4,
            steps: 3,
            vars: 8,
            hot: 1.0,
        };
        let sys = w.instantiate(1);
        for t in &sys.syntax.transactions {
            for s in &t.steps {
                assert_eq!(s.var.0, 0);
            }
        }
    }

    #[test]
    fn read_mostly_has_reads() {
        let w = Workload::ReadMostly {
            n: 3,
            steps: 4,
            vars: 3,
            reads: 0.9,
        };
        let sys = w.instantiate(3);
        let reads = sys
            .syntax
            .transactions
            .iter()
            .flat_map(|t| &t.steps)
            .filter(|s| s.kind == ccopt_model::syntax::StepKind::Read)
            .count();
        assert!(reads > 0);
    }

    #[test]
    fn names_are_informative() {
        assert!(Workload::Banking.name().contains("banking"));
        assert!(Workload::Uniform {
            n: 2,
            steps: 2,
            vars: 2
        }
        .name()
        .contains("n=2"));
    }
}
