//! Parameterized workload families for the experiments.

use ccopt_model::expr::Expr;
use ccopt_model::ic::TrueIc;
use ccopt_model::interp::ExprInterpretation;
use ccopt_model::random::{random_system, RandomConfig};
use ccopt_model::syntax::SyntaxBuilder;
use ccopt_model::system::{StateSpace, TransactionSystem};
use ccopt_model::systems;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A named workload family generating systems per seed.
#[derive(Clone, Debug)]
pub enum Workload {
    /// `n` transactions, `steps` steps each, over `vars` uniformly chosen
    /// variables.
    Uniform {
        /// Number of transactions (the multiprogramming level).
        n: usize,
        /// Steps per transaction.
        steps: usize,
        /// Number of variables.
        vars: usize,
    },
    /// Like `Uniform` but a fraction of accesses hit variable 0.
    Hotspot {
        /// Number of transactions.
        n: usize,
        /// Steps per transaction.
        steps: usize,
        /// Number of variables.
        vars: usize,
        /// Probability that a step accesses the hot variable.
        hot: f64,
    },
    /// Read-mostly: a fraction of steps are pure reads.
    ReadMostly {
        /// Number of transactions.
        n: usize,
        /// Steps per transaction.
        steps: usize,
        /// Number of variables.
        vars: usize,
        /// Fraction of read steps.
        reads: f64,
    },
    /// A few many-step read-only transactions scanning the variables over a
    /// write-heavy background of short updaters. The readers come first
    /// (transaction ids `0..readers`), so multi-version mechanisms give
    /// them the oldest snapshots: this is the workload where the
    /// multi-version vs. single-version gap is widest — MVTO readers finish
    /// with zero waits and zero aborts while 2PL blocks them behind writer
    /// locks and T/O aborts them on late conflicts.
    LongReaders {
        /// Number of read-only transactions (ids `0..readers`).
        readers: usize,
        /// Read steps per reader (its scan length).
        read_steps: usize,
        /// Number of background updater transactions.
        writers: usize,
        /// Update steps per writer.
        write_steps: usize,
        /// Number of variables. Each reader strides across the set (full
        /// coverage when `read_steps >= vars`); each writer draws a random
        /// `write_steps`-sized footprint from it.
        vars: usize,
    },
    /// The Section 2 banking example (fixed, seed-independent).
    Banking,
}

/// Build the `LongReaders` system: deterministic reader scans over the
/// variable set, seeded random updater footprints with affine step
/// functions.
fn long_readers_system(
    readers: usize,
    read_steps: usize,
    writers: usize,
    write_steps: usize,
    vars: usize,
    seed: u64,
) -> TransactionSystem {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = SyntaxBuilder::new().vars((0..vars).map(|i| format!("v{i}")));
    let mut exprs: Vec<Vec<Expr>> = Vec::with_capacity(readers + writers);
    for r in 0..readers {
        b = b.txn(&format!("R{}", r + 1), |mut t| {
            for j in 0..read_steps {
                // Stride the scan so every reader covers the whole set.
                t = t.read(&format!("v{}", (r + j) % vars));
            }
            t
        });
        exprs.push((0..read_steps).map(Expr::Local).collect());
    }
    for w in 0..writers {
        let footprint: Vec<usize> = (0..write_steps).map(|_| rng.gen_range(0..vars)).collect();
        b = b.txn(&format!("W{}", w + 1), |mut t| {
            for &v in &footprint {
                t = t.update(&format!("v{v}"));
            }
            t
        });
        exprs.push(
            (0..write_steps)
                .map(|j| {
                    let a = [1i64, 1, 2, -1][rng.gen_range(0..4usize)];
                    let c = rng.gen_range(-2..=2);
                    Expr::add(Expr::mul(Expr::Const(a), Expr::Local(j)), Expr::Const(c))
                })
                .collect(),
        );
    }
    let syntax = b.build();
    let interp = ExprInterpretation::new(exprs);
    debug_assert!(interp.validate(&syntax).is_ok());
    let init: Vec<i64> = vec![0; vars];
    TransactionSystem::new(
        &format!("long-readers-{seed}"),
        syntax,
        Arc::new(interp),
        Arc::new(TrueIc),
        StateSpace::from_ints(&[&init]),
    )
}

impl Workload {
    /// Instantiate the workload for a seed.
    pub fn instantiate(&self, seed: u64) -> TransactionSystem {
        match *self {
            Workload::Uniform { n, steps, vars } => random_system(
                &RandomConfig {
                    num_txns: n,
                    steps_per_txn: (steps, steps),
                    num_vars: vars,
                    read_fraction: 0.0,
                    hot_fraction: 0.0,
                    num_check_states: 2,
                    value_range: (-3, 3),
                },
                seed,
            ),
            Workload::Hotspot {
                n,
                steps,
                vars,
                hot,
            } => random_system(
                &RandomConfig {
                    num_txns: n,
                    steps_per_txn: (steps, steps),
                    num_vars: vars,
                    read_fraction: 0.0,
                    hot_fraction: hot,
                    num_check_states: 2,
                    value_range: (-3, 3),
                },
                seed,
            ),
            Workload::ReadMostly {
                n,
                steps,
                vars,
                reads,
            } => random_system(
                &RandomConfig {
                    num_txns: n,
                    steps_per_txn: (steps, steps),
                    num_vars: vars,
                    read_fraction: reads,
                    hot_fraction: 0.0,
                    num_check_states: 2,
                    value_range: (-3, 3),
                },
                seed,
            ),
            Workload::LongReaders {
                readers,
                read_steps,
                writers,
                write_steps,
                vars,
            } => long_readers_system(readers, read_steps, writers, write_steps, vars, seed),
            Workload::Banking => systems::banking(),
        }
    }

    /// Short name for tables.
    pub fn name(&self) -> String {
        match *self {
            Workload::Uniform { n, steps, vars } => format!("uniform(n={n},s={steps},v={vars})"),
            Workload::Hotspot {
                n,
                steps,
                vars,
                hot,
            } => {
                format!("hotspot(n={n},s={steps},v={vars},h={hot})")
            }
            Workload::ReadMostly {
                n,
                steps,
                vars,
                reads,
            } => {
                format!("readmostly(n={n},s={steps},v={vars},r={reads})")
            }
            Workload::LongReaders {
                readers,
                read_steps,
                writers,
                write_steps,
                vars,
            } => {
                format!("long_readers(r={readers}x{read_steps},w={writers}x{write_steps},v={vars})")
            }
            Workload::Banking => "banking".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_instantiate_deterministically() {
        let w = Workload::Uniform {
            n: 3,
            steps: 2,
            vars: 2,
        };
        let a = w.instantiate(5);
        let b = w.instantiate(5);
        assert_eq!(a.syntax, b.syntax);
        assert_eq!(a.format(), vec![2, 2, 2]);
    }

    #[test]
    fn hotspot_concentrates_accesses() {
        let w = Workload::Hotspot {
            n: 4,
            steps: 3,
            vars: 8,
            hot: 1.0,
        };
        let sys = w.instantiate(1);
        for t in &sys.syntax.transactions {
            for s in &t.steps {
                assert_eq!(s.var.0, 0);
            }
        }
    }

    #[test]
    fn read_mostly_has_reads() {
        let w = Workload::ReadMostly {
            n: 3,
            steps: 4,
            vars: 3,
            reads: 0.9,
        };
        let sys = w.instantiate(3);
        let reads = sys
            .syntax
            .transactions
            .iter()
            .flat_map(|t| &t.steps)
            .filter(|s| s.kind == ccopt_model::syntax::StepKind::Read)
            .count();
        assert!(reads > 0);
    }

    #[test]
    fn long_readers_shape_is_readers_then_writers() {
        let w = Workload::LongReaders {
            readers: 2,
            read_steps: 6,
            writers: 3,
            write_steps: 2,
            vars: 4,
        };
        let sys = w.instantiate(9);
        assert_eq!(sys.num_txns(), 5);
        // Readers first: ids 0..2 are pure reads covering the variable set.
        for t in &sys.syntax.transactions[..2] {
            assert!(t
                .steps
                .iter()
                .all(|s| s.kind == ccopt_model::syntax::StepKind::Read));
            assert_eq!(t.accessed_vars().len(), 4);
        }
        // Writers after: pure updates.
        for t in &sys.syntax.transactions[2..] {
            assert!(t
                .steps
                .iter()
                .all(|s| s.kind == ccopt_model::syntax::StepKind::Update));
        }
        // Deterministic in the seed.
        assert_eq!(w.instantiate(9).syntax, sys.syntax);
        // Executable.
        ccopt_model::exec::Executor::new(&sys)
            .verify_basic_assumption()
            .unwrap();
    }

    #[test]
    fn names_are_informative() {
        assert!(Workload::Banking.name().contains("banking"));
        assert!(Workload::Uniform {
            n: 2,
            steps: 2,
            vars: 2
        }
        .name()
        .contains("n=2"));
    }
}
