//! Crash-recovery acceptance: for all 7 mechanisms (covering both store
//! kinds), killing the write-ahead log at **any** record boundary and
//! recovering yields exactly the committed prefix — globals, version
//! chains and watermark floor — and a corrupted record is detected and
//! truncated, never replayed.
//!
//! The differential works because [`simulate_open_durable`] journals the
//! committed state after every commit: recovery at a boundary where `k`
//! commit records survived must rebuild `journal[k]`, byte for byte.

use ccopt_engine::cc::{
    ConcurrencyControl, MvtoCc, OccCc, SerialCc, SgtCc, SiCc, Strict2plCc, TimestampCc,
};
use ccopt_engine::durability::encoding::{frame_boundaries, HEADER_LEN};
use ccopt_engine::durability::{recover, scratch_path, StoreImage};
use ccopt_engine::{DurabilityMode, SessionDb};
use ccopt_sim::open_sim::{simulate_open_durable, DurableConfig, OpenSimConfig, OpenSimResult};
use std::path::Path;

type Factory = (&'static str, fn() -> Box<dyn ConcurrencyControl>);

fn factories() -> Vec<Factory> {
    vec![
        ("serial", || Box::new(SerialCc::default())),
        ("strict-2PL", || Box::new(Strict2plCc::default())),
        ("SGT", || Box::new(SgtCc::default())),
        ("T/O", || Box::new(TimestampCc::default())),
        ("OCC", || Box::new(OccCc::default())),
        ("MVTO", || Box::new(MvtoCc::default())),
        ("SI", || Box::new(SiCc::default())),
    ]
}

fn cfg(total_txns: usize, seed: u64) -> OpenSimConfig {
    OpenSimConfig {
        terminals: 4,
        total_txns,
        vars: 6,
        steps: (2, 4),
        read_fraction: 0.4,
        hot_fraction: 0.3,
        seed,
        check: true,
        ..OpenSimConfig::default()
    }
}

/// Run one durable stream under `Strict` (every commit on disk) and hand
/// back the result plus the raw log bytes.
fn durable_run(
    name: &str,
    mk: fn() -> Box<dyn ConcurrencyControl>,
    seed: u64,
) -> (OpenSimResult, Vec<u8>, std::path::PathBuf) {
    let path = scratch_path(&format!("sim-dur-{}", name.replace('/', "_")));
    let r = simulate_open_durable(
        &mk,
        &cfg(30, seed),
        &DurableConfig::recording(path.clone(), DurabilityMode::Strict),
    );
    assert_eq!(r.committed, 30, "{name} must serve the whole stream");
    assert_eq!(r.journal.len(), 31, "{name}: journal indexes 0..=commits");
    let bytes = std::fs::read(&path).expect("the log exists");
    (r, bytes, path)
}

/// Recover a byte-prefix of a log and assert it equals the committed
/// prefix recorded in the journal. Returns the recovered commit count.
fn assert_prefix(name: &str, scratch: &Path, bytes: &[u8], r: &OpenSimResult) -> u64 {
    std::fs::write(scratch, bytes).unwrap();
    let rec = recover(scratch)
        .unwrap_or_else(|e| panic!("{name}: recovery must not fail: {e}"))
        .unwrap_or_else(|| panic!("{name}: the initial checkpoint was synced at open"));
    let k = rec.committed as usize;
    assert!(k <= 30, "{name}: recovered more commits than were made");
    assert_eq!(
        rec.image.latest(),
        r.journal[k],
        "{name}: recovery at this boundary is not the {k}-commit prefix"
    );
    if let StoreImage::Multi(chains) = &rec.image {
        // The chains were rebuilt by installing each committed write-set
        // at its logged commit timestamp: per chain strictly ascending,
        // never above the recovered floor, and one version per (commit,
        // distinct written variable) on top of the checkpoint base.
        let expected_installs: usize = r.history[..k]
            .iter()
            .map(|t| {
                let mut vars: Vec<u32> = t
                    .ops
                    .iter()
                    .filter(|(_, op)| op.kind.writes())
                    .map(|(_, op)| op.var.0)
                    .collect();
                vars.sort_unstable();
                vars.dedup();
                vars.len()
            })
            .sum();
        let live: usize = chains.iter().map(Vec::len).sum();
        assert_eq!(
            live,
            chains.len() + expected_installs,
            "{name}: replay must install exactly the committed prefix's versions"
        );
        for chain in chains {
            assert!(chain.windows(2).all(|w| w[0].0 < w[1].0));
            assert!(
                chain.last().unwrap().0 <= rec.floor,
                "{name}: floor below a version"
            );
        }
    }
    rec.committed
}

#[test]
fn crash_at_every_record_boundary_recovers_the_committed_prefix() {
    for (name, mk) in factories() {
        let (r, bytes, path) = durable_run(name, mk, 42);
        let scratch = scratch_path(&format!("sim-cut-{}", name.replace('/', "_")));
        let mut last_k = 0;
        let boundaries = frame_boundaries(&bytes[HEADER_LEN..]);
        assert!(
            boundaries.len() > 60,
            "{name}: the stream must produce a real log"
        );
        for &b in &boundaries {
            let k = assert_prefix(name, &scratch, &bytes[..HEADER_LEN + b], &r);
            assert!(
                k >= last_k,
                "{name}: commit count must grow with the prefix"
            );
            last_k = k;
        }
        assert_eq!(last_k, 30, "{name}: the full log recovers every commit");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&scratch);
    }
}

#[test]
fn torn_tails_mid_record_truncate_cleanly() {
    for (name, mk) in [factories()[1], factories()[5]] {
        let (r, bytes, path) = durable_run(name, mk, 7);
        let scratch = scratch_path(&format!("sim-torn-{}", name.replace('/', "_")));
        let boundaries = frame_boundaries(&bytes[HEADER_LEN..]);
        // Cut mid-record: a few bytes past each of a sample of boundaries.
        for &b in boundaries.iter().step_by(7) {
            let cut = (HEADER_LEN + b + 3).min(bytes.len());
            assert_prefix(name, &scratch, &bytes[..cut], &r);
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&scratch);
    }
}

/// The negative control of the acceptance criteria: a corrupted record is
/// detected and truncated — never replayed, never a panic.
#[test]
fn corrupted_records_are_detected_and_never_replayed() {
    for (name, mk) in [factories()[1], factories()[5], factories()[6]] {
        let (r, bytes, path) = durable_run(name, mk, 99);
        let scratch = scratch_path(&format!("sim-flip-{}", name.replace('/', "_")));
        let boundaries = frame_boundaries(&bytes[HEADER_LEN..]);
        // Flip one byte inside each of a sample of records (its first
        // payload byte sits 8 bytes past the previous boundary).
        for w in boundaries.windows(2).step_by(5) {
            let (start, end) = (HEADER_LEN + w[0], HEADER_LEN + w[1]);
            let mut bad = bytes.clone();
            bad[(start + 8).min(end - 1)] ^= 0x20;
            let k = assert_prefix(name, &scratch, &bad, &r) as usize;
            // Recovery stopped at (or before) the flipped record: no
            // commit record at or past it was replayed.
            let commits_before: usize = r
                .journal
                .len()
                .saturating_sub(1)
                .min(count_commits(&bytes[HEADER_LEN..HEADER_LEN + w[0]]));
            assert!(
                k <= commits_before,
                "{name}: a commit at/after the corrupt record was replayed ({k} > {commits_before})"
            );
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&scratch);
    }
}

/// Count intact commit records in a record stream (test oracle).
fn count_commits(mut records: &[u8]) -> usize {
    use ccopt_engine::durability::encoding::split_frame;
    use ccopt_engine::durability::recovery::decode_record;
    use ccopt_engine::durability::WalRecord;
    let mut n = 0;
    while let Some((payload, frame)) = split_frame(records) {
        if matches!(decode_record(payload), Some(WalRecord::Commit { .. })) {
            n += 1;
        }
        records = &records[frame..];
    }
    n
}

/// Kill the log at an append boundary *during* the stream (the
/// crash-injection mode of the simulator), then reopen and resume the
/// open-world stream on the recovered state.
#[test]
fn in_sim_crash_injection_recovers_and_resumes() {
    for (name, mk) in [factories()[1], factories()[3], factories()[5]] {
        for crash_at in [10u64, 40, 90] {
            let path = scratch_path(&format!("sim-kill-{}", name.replace('/', "_")));
            let r = simulate_open_durable(
                &mk,
                &cfg(30, 5),
                &DurableConfig {
                    crash_after_records: Some(crash_at),
                    ..DurableConfig::recording(path.clone(), DurabilityMode::Strict)
                },
            );
            assert_eq!(
                r.committed, 30,
                "{name}: the in-memory stream still completes"
            );
            // Reopen: the recovered state is the committed prefix at the
            // kill boundary.
            let db = SessionDb::open(
                mk(),
                ccopt_model::state::GlobalState::from_ints(&[0; 6]),
                &path,
                DurabilityMode::Strict,
            )
            .unwrap_or_else(|e| panic!("{name}: reopen failed: {e}"));
            let info = db.recovery_info().expect("a log was recovered");
            let k = info.committed as usize;
            assert!(
                k < 30,
                "{name}: the kill at record {crash_at} must lose the tail"
            );
            assert_eq!(
                db.globals(),
                r.journal[k],
                "{name}: recovered state is not the committed prefix at the kill point"
            );
            drop(db);
            // Resume the stream on the recovered state: the second run
            // recovers, serves a fresh stream, and its journal starts
            // exactly where recovery left off.
            let r2 = simulate_open_durable(
                &mk,
                &cfg(20, 6),
                &DurableConfig::recording(path.clone(), DurabilityMode::Strict),
            );
            assert_eq!(r2.committed, 20, "{name}: the resumed stream must complete");
            assert_eq!(
                r2.journal[0], r.journal[k],
                "{name}: the resumed stream must start from the recovered prefix"
            );
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Group commit: the crash loss window is bounded by one batch, and the
/// recovered state is still exactly a committed prefix.
#[test]
fn group_commit_crash_loses_at_most_one_batch() {
    for (name, mk) in [factories()[1], factories()[5]] {
        let path = scratch_path(&format!("sim-group-{}", name.replace('/', "_")));
        let mode = DurabilityMode::Group {
            max_batch: 4,
            max_delay_ticks: u64::MAX,
        };
        // The run ends like a crash: acknowledged commits inside the open
        // batch are intentionally lost.
        let r = simulate_open_durable(
            &mk,
            &cfg(30, 11),
            &DurableConfig::recording(path.clone(), mode),
        );
        assert_eq!(r.committed, 30);
        assert!(
            r.wal_syncs < 30 / 2,
            "{name}: group commit must issue far fewer fsyncs than commits ({})",
            r.wal_syncs
        );
        let rec = recover(&path).unwrap().expect("recovers");
        let k = rec.committed as usize;
        assert!(
            (30 - 4..=30).contains(&k),
            "{name}: loss window must be bounded by the batch (recovered {k}/30)"
        );
        assert_eq!(rec.image.latest(), r.journal[k], "{name}: prefix mismatch");
        let _ = std::fs::remove_file(&path);
    }
}

/// Recovered multi-version streams resume: version GC picks up at the
/// recovered watermark floor and collapses the replayed history.
#[test]
fn recovered_mv_streams_gc_the_replayed_history() {
    for (name, mk) in [factories()[5], factories()[6]] {
        let path = scratch_path(&format!("sim-mvgc-{}", name.replace('/', "_")));
        let r = simulate_open_durable(
            &mk,
            &cfg(30, 23),
            &DurableConfig::recording(path.clone(), DurabilityMode::Strict),
        );
        let r2 = simulate_open_durable(
            &mk,
            &cfg(30, 24),
            &DurableConfig::recording(path.clone(), DurabilityMode::Strict),
        );
        assert_eq!(
            r2.journal[0], r.journal[30],
            "{name}: resumes from the prefix"
        );
        assert_eq!(r2.committed, 30, "{name}: the resumed stream completes");
        assert!(
            r2.versions_reclaimed > 0,
            "{name}: GC must reclaim the replayed history once the stream resumes"
        );
        assert!(
            r2.peak_live_versions <= 6 + 30 * 4 + 8,
            "{name}: chains stay bounded after recovery"
        );
        let _ = std::fs::remove_file(&path);
    }
}
