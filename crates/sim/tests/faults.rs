//! Fault-plan acceptance: scripted shard panics and storage faults
//! injected into live sharded streams. The claims, for every mechanism:
//! the stream still serves fully once the faults stop (liveness), the
//! merged history stays serializable, supervised recoveries preserve the
//! exact committed prefix (asserted inside the simulator after every
//! recovery), and the fault counters surface in the result.

use ccopt_engine::cc::ConcurrencyControl;
use ccopt_engine::DurabilityMode;
use ccopt_sim::open_sim::{check_serializable, OpenSimConfig};
use ccopt_sim::shard_sim::{
    simulate_sharded_faulty, FaultPlan, ShardDurableConfig, ShardSimConfig,
};

type Factory = (&'static str, fn() -> Box<dyn ConcurrencyControl>);

fn factories() -> Vec<Factory> {
    use ccopt_engine::cc::*;
    vec![
        ("serial", || Box::new(SerialCc::default())),
        ("strict-2PL", || Box::new(Strict2plCc::default())),
        ("SGT", || Box::new(SgtCc::default())),
        ("T/O", || Box::new(TimestampCc::default())),
        ("OCC", || Box::new(OccCc::default())),
        ("MVTO", || Box::new(MvtoCc::default())),
        ("SI", || Box::new(SiCc::default())),
    ]
}

fn base(seed: u64, total: usize) -> OpenSimConfig {
    OpenSimConfig {
        terminals: 4,
        total_txns: total,
        vars: 8,
        seed,
        check: true,
        ..OpenSimConfig::default()
    }
}

#[test]
fn shard_panics_mid_stream_recover_and_the_stream_serves_fully() {
    // Two scripted shard panics against durable logs: the supervisor
    // restarts each crashed shard in place from its write-ahead log
    // (committed-prefix equality asserted inside the simulator after
    // every recovery), the terminals redrive their failed transactions,
    // and the full stream commits and serializes.
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        let dir = ccopt_engine::durability::scratch_path(&format!(
            "sim-fault-panic-{}",
            name.replace('/', "_")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let scfg = ShardSimConfig::new(base(11, 60), 2, 0.4);
        let dur = ShardDurableConfig {
            record_journal: true,
            ..ShardDurableConfig::new(dir.clone(), DurabilityMode::Strict)
        };
        let plan = FaultPlan {
            shard_panics: vec![(15, 0), (35, 1)],
            ..FaultPlan::default()
        };
        let r = simulate_sharded_faulty(&mk_cc, &scfg, Some(&dur), &plan);
        assert_eq!(
            r.committed, 60,
            "{name}: the stream must serve fully once the faults stop"
        );
        assert!(
            r.shard_restarts >= 2,
            "{name}: both scripted panics must be supervised (saw {})",
            r.shard_restarts
        );
        if name != "SI" {
            check_serializable(&r).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn volatile_shard_panic_still_leaves_a_live_stream() {
    // Without logs a panic loses the shard's committed data (the
    // documented volatile degradation) so state checks don't apply —
    // but liveness must hold: the supervisor restarts the shard over
    // its initial projection and the stream keeps serving.
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        let scfg = ShardSimConfig::new(
            OpenSimConfig {
                check: false,
                ..base(7, 50)
            },
            2,
            0.3,
        );
        let r = simulate_sharded_faulty(&mk_cc, &scfg, None, &FaultPlan::panic_at(20, 1));
        assert_eq!(r.committed, 50, "{name}: liveness after a volatile panic");
        assert!(r.shard_restarts >= 1, "{name}");
    }
}

#[test]
fn transient_storage_faults_are_retried_through_and_counted() {
    // Scripted transient fsync failures on one shard's log: the bounded
    // retry loop absorbs them (no transaction lost, the run completes)
    // and the retries surface in the result.
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        let dir = ccopt_engine::durability::scratch_path(&format!(
            "sim-fault-io-{}",
            name.replace('/', "_")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let scfg = ShardSimConfig::new(base(3, 40), 2, 0.4);
        let dur = ShardDurableConfig::new(dir.clone(), DurabilityMode::Strict);
        let plan = FaultPlan {
            transient_sync_faults: vec![(10, 0, 2), (20, 1, 1)],
            ..FaultPlan::default()
        };
        let r = simulate_sharded_faulty(&mk_cc, &scfg, Some(&dur), &plan);
        assert_eq!(r.committed, 40, "{name}: transient faults must not stall");
        assert!(
            r.io_retries >= 3,
            "{name}: scripted transient faults must surface as retries (saw {})",
            r.io_retries
        );
        assert_eq!(r.shard_restarts, 0, "{name}: retries are not crashes");
        if name != "SI" {
            check_serializable(&r).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn bounded_mailboxes_shed_under_pressure_without_losing_the_stream() {
    // A tiny mailbox bound makes shedding possible under burst arrival;
    // whether or not a shed happens at this scale, the bound must never
    // cost correctness: full service and a serializable history.
    let mk = || Box::new(ccopt_engine::cc::Strict2plCc::default()) as Box<dyn ConcurrencyControl>;
    let scfg = ShardSimConfig::new(base(5, 60), 3, 0.5);
    let plan = FaultPlan {
        queue_capacity: Some(2),
        ..FaultPlan::default()
    };
    let r = simulate_sharded_faulty(&mk, &scfg, None, &plan);
    assert_eq!(
        r.committed, 60,
        "bounded mailboxes must not wedge the stream"
    );
    check_serializable(&r).unwrap_or_else(|e| panic!("{e}"));
}

#[test]
fn panics_and_io_faults_composed_still_serve_and_serialize() {
    // The composed plan: a shard panic, transient storage faults on the
    // surviving shard, and bounded mailboxes — graceful degradation
    // end to end on one run.
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        let dir = ccopt_engine::durability::scratch_path(&format!(
            "sim-fault-mixed-{}",
            name.replace('/', "_")
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let scfg = ShardSimConfig::new(base(17, 50), 2, 0.35);
        let dur = ShardDurableConfig {
            record_journal: true,
            ..ShardDurableConfig::new(dir.clone(), DurabilityMode::Strict)
        };
        let plan = FaultPlan {
            shard_panics: vec![(25, 0)],
            transient_sync_faults: vec![(10, 1, 2)],
            queue_capacity: Some(32),
        };
        let r = simulate_sharded_faulty(&mk_cc, &scfg, Some(&dur), &plan);
        assert_eq!(r.committed, 50, "{name}: composed faults must not stall");
        assert!(r.shard_restarts >= 1, "{name}");
        if name != "SI" {
            check_serializable(&r).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
