//! The multi-version acceptance gap, pinned as a test: under the
//! `long_readers` workload (a few many-step read-only scans over a
//! write-heavy background), MVTO's snapshot reads complete every reader
//! with **zero** waits and **zero** aborts, while the single-version
//! mechanisms make the same readers on the same seeds either block behind
//! writer locks (2PL) or restart on late conflicts (T/O). Also pins the
//! version-store GC invariant: once the run quiesces, the watermark has
//! collapsed every chain back to one version.

use ccopt_engine::cc::{ConcurrencyControl, MvtoCc, Strict2plCc, TimestampCc};
use ccopt_engine::db::Database;
use ccopt_model::ids::TxnId;
use ccopt_sim::workload::Workload;

const READERS: usize = 2;
const VARS: usize = 8;

fn workload() -> Workload {
    Workload::LongReaders {
        readers: READERS,
        read_steps: 10,
        writers: 6,
        write_steps: 4,
        vars: VARS,
    }
}

/// Drive one instantiation for up to `max_rounds` sweeps; return the
/// database, whether it fully committed, and per-reader (attempts, waits).
/// 2PL and T/O may legitimately *fail to finish* here — long scans under
/// restart-immediately round-robin can thrash indefinitely — which is
/// itself part of the gap this file documents.
fn run(
    cc: Box<dyn ConcurrencyControl>,
    seed: u64,
    max_rounds: usize,
) -> (Database, bool, Vec<(u32, u32)>) {
    let sys = workload().instantiate(seed);
    let init = sys.space.initial_states[0].clone();
    let ids: Vec<TxnId> = (0..sys.num_txns() as u32).map(TxnId).collect();
    let mut db = Database::new(sys, cc, init);
    let done = db.run_round_robin(&ids, max_rounds).is_some();
    let readers = (0..READERS as u32)
        .map(|r| (db.attempts(TxnId(r)), db.waits(TxnId(r))))
        .collect();
    (db, done, readers)
}

#[test]
fn mvto_readers_never_wait_or_abort_while_single_version_readers_do() {
    for seed in [1u64, 2, 3] {
        let (_, done, mvto) = run(Box::new(MvtoCc::default()), seed, 10_000);
        assert!(done, "MVTO must finish the whole workload (seed {seed})");
        for (r, &(attempts, waits)) in mvto.iter().enumerate() {
            assert_eq!(attempts, 1, "MVTO reader {r} restarted (seed {seed})");
            assert_eq!(waits, 0, "MVTO reader {r} waited (seed {seed})");
        }

        let (_, _, tpl) = run(Box::new(Strict2plCc::default()), seed, 1_000);
        let tpl_disturbed: u32 = tpl.iter().map(|&(a, w)| (a - 1) + w).sum();
        assert!(
            tpl_disturbed > 0,
            "2PL readers ran undisturbed on seed {seed}: {tpl:?}"
        );

        let (_, _, to) = run(Box::new(TimestampCc::default()), seed, 1_000);
        let to_disturbed: u32 = to.iter().map(|&(a, w)| (a - 1) + w).sum();
        assert!(
            to_disturbed > 0,
            "T/O readers ran undisturbed on seed {seed}: {to:?}"
        );
    }
}

#[test]
fn gc_keeps_the_version_store_bounded() {
    for seed in [1u64, 2, 3] {
        let (db, done, _) = run(Box::new(MvtoCc::default()), seed, 10_000);
        assert!(done, "seed {seed}");
        // Writers installed versions throughout the run ...
        assert!(db.metrics.versions_installed > 0, "seed {seed}");
        assert!(db.metrics.max_chain_len >= 2, "seed {seed}");
        // ... and quiescence collapsed every chain to a single version.
        assert_eq!(db.live_versions(), Some(VARS), "seed {seed}");
        assert_eq!(
            db.metrics.versions_reclaimed, db.metrics.versions_installed,
            "seed {seed}: all superseded history must be reclaimed"
        );
    }
}
