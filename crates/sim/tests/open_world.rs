//! Open-world acceptance: the session API serves a transaction stream many
//! times larger than the dense-table capacity without unbounded growth —
//! slots verifiably recycle, the multi-version store GC keeps chains
//! bounded — and sampled committed histories replay serializably (SI
//! exempt, by design).

use ccopt_engine::cc::{
    ConcurrencyControl, MvtoCc, OccCc, SerialCc, SgtCc, SiCc, Strict2plCc, TimestampCc,
};
use ccopt_sim::open_sim::{
    check_serializable, check_strict, simulate_open, CommittedTxn, OpenSimConfig,
};

type Factory = (&'static str, fn() -> Box<dyn ConcurrencyControl>);

fn factories() -> Vec<Factory> {
    vec![
        ("serial", || Box::new(SerialCc::default())),
        ("strict-2PL", || Box::new(Strict2plCc::default())),
        ("SGT", || Box::new(SgtCc::default())),
        ("T/O", || Box::new(TimestampCc::default())),
        ("OCC", || Box::new(OccCc::default())),
        ("MVTO", || Box::new(MvtoCc::default())),
        ("SI", || Box::new(SiCc::default())),
    ]
}

fn cfg(total_txns: usize, seed: u64) -> OpenSimConfig {
    OpenSimConfig {
        terminals: 6,
        total_txns,
        vars: 8,
        steps: (2, 5),
        read_fraction: 0.4,
        hot_fraction: 0.3,
        seed,
        check: true,
        ..OpenSimConfig::default()
    }
}

/// The acceptance bound: every mechanism serves a stream at least 10x the
/// dense-table capacity it ever allocates, recycling slots throughout.
#[test]
fn stream_runs_10x_past_table_capacity_for_all_mechanisms() {
    let c = cfg(240, 42);
    for (name, mk) in factories() {
        let r = simulate_open(&mk, &c);
        assert_eq!(r.committed, 240, "{name} must serve the whole stream");
        // SGT may transiently pin a few extra committed slots (deferred
        // retirement while a live predecessor runs); the table still stays
        // a small multiple of the concurrency level.
        assert!(
            r.peak_slots <= 3 * c.terminals,
            "{name}: dense table grew to {} slots for {} terminals",
            r.peak_slots,
            c.terminals
        );
        assert!(
            r.committed >= 10 * r.peak_slots,
            "{name}: stream ({}) must be >= 10x capacity ({})",
            r.committed,
            r.peak_slots
        );
        assert!(
            r.retires >= r.committed,
            "{name}: every committed session must retire"
        );
    }
}

/// Capacity and version-store footprint are functions of the concurrency
/// level, never the stream length: tripling the stream changes neither
/// high-water mark.
#[test]
fn memory_high_water_marks_are_stream_length_independent() {
    for (name, mk) in factories() {
        let short = simulate_open(&mk, &cfg(240, 9));
        let long = simulate_open(&mk, &cfg(720, 9));
        // The high-water mark is a running maximum, so it can take a few
        // hundred transactions to reach its plateau — but past that,
        // tripling the stream must not move it (SGT's deferred-retirement
        // transients included): it is pinned to the concurrency level.
        assert!(
            long.peak_slots <= short.peak_slots + 2,
            "{name}: slot high-water mark grew with the stream ({} -> {})",
            short.peak_slots,
            long.peak_slots
        );
        assert!(
            long.peak_live_versions <= short.peak_live_versions.max(1) * 3,
            "{name}: version chains must stay GC-bounded ({} -> {})",
            short.peak_live_versions,
            long.peak_live_versions
        );
        if long.multiversion {
            assert!(
                long.versions_reclaimed > short.versions_reclaimed,
                "{name}: a longer stream must reclaim more versions"
            );
            // Every installed version beyond the live tail was reclaimed.
            assert!(
                long.peak_live_versions < long.versions_reclaimed,
                "{name}: GC must dominate the install rate"
            );
        }
    }
}

/// Serializability oracle over sampled open-world histories: committed
/// histories of every mechanism except SI replay to the engine's final
/// state under a serial order (conflict-graph topological order, or MVTO's
/// timestamp order).
#[test]
fn sampled_histories_replay_serializably_si_exempt() {
    for seed in [3u64, 17, 99] {
        let c = cfg(120, seed);
        for (name, mk) in factories() {
            if name == "SI" {
                continue; // admits write skew by design; pinned in tests/mv_anomalies.rs
            }
            let r = simulate_open(&mk, &c);
            assert_eq!(r.committed, 120, "{name} seed {seed}");
            check_serializable(&r).unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}

/// Every mechanism produces **strict** committed histories — no access
/// inside another transaction's uncommitted-write window — the property
/// that justifies the durability subsystem's redo-only logging. Checked
/// on sampled histories of all 7 mechanisms (SI included: strictness is
/// weaker than serializability and SI has it by deferral).
#[test]
fn sampled_histories_are_strict_for_all_mechanisms() {
    for seed in [3u64, 17, 99] {
        let c = cfg(120, seed);
        for (name, mk) in factories() {
            let r = simulate_open(&mk, &c);
            assert_eq!(r.committed, 120, "{name} seed {seed}");
            check_strict(&r).unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
        }
    }
}

/// The strictness checker is not vacuous: histories doctored to put an
/// access inside a foreign write window, or an operation past its own
/// commit point, are rejected.
#[test]
fn the_strictness_checker_rejects_dirty_histories() {
    let c = cfg(120, 5);
    let (_, mk) = factories()[1]; // strict-2PL: immediate writes
    let r = simulate_open(&mk, &c);
    check_strict(&r).expect("the genuine history is strict");

    // Stretch one writer's commit far into the future: its write window
    // now covers other transactions' accesses to the same variable.
    let mut dirty = r;
    let (i, var) = dirty
        .history
        .iter()
        .enumerate()
        .find_map(|(i, t)| {
            t.ops
                .iter()
                .find(|(_, op)| op.kind.writes())
                .map(|&(_, op)| (i, op.var))
        })
        .expect("the stream wrote something");
    let w_seq = dirty.history[i]
        .ops
        .iter()
        .find(|(_, op)| op.kind.writes() && op.var == var)
        .unwrap()
        .0;
    assert!(
        dirty
            .history
            .iter()
            .enumerate()
            .any(|(j, t)| j != i && t.ops.iter().any(|&(s, op)| op.var == var && s > w_seq)),
        "the hot stream must access the variable again"
    );
    dirty.history[i].commit_seq = u64::MAX;
    assert!(
        check_strict(&dirty).is_err(),
        "an access inside a foreign write window must be rejected"
    );

    // An operation at/after its own commit point is structurally broken.
    let mut late = simulate_open(&mk, &c);
    late.history[0].commit_seq = 0;
    assert!(check_strict(&late).is_err());
}

/// The oracle is not vacuous: a history whose conflict graph cycles, or
/// whose replay diverges from the engine state, is rejected.
#[test]
fn the_oracle_rejects_corrupted_histories() {
    let c = cfg(60, 5);
    let (_, mk) = factories()[1]; // strict-2PL
    let mut r = simulate_open(&mk, &c);
    check_serializable(&r).expect("the genuine history passes");
    // Corrupt the stream's *last* write to some variable — no later write
    // can mask it, so the serial replay must diverge from the engine's
    // final state.
    let mut last_write: std::collections::BTreeMap<u32, (usize, usize)> =
        std::collections::BTreeMap::new();
    for (i, t) in r.history.iter().enumerate() {
        for (x, &(_, op)) in t.ops.iter().enumerate() {
            if op.kind.writes() {
                last_write.insert(op.var.0, (i, x));
            }
        }
    }
    let &(i, x) = last_write
        .values()
        .next()
        .expect("the stream wrote something");
    let t: &mut CommittedTxn = &mut r.history[i];
    t.ops[x].1.c += 7;
    assert!(
        check_serializable(&r).is_err(),
        "a corrupted final write must fail the replay"
    );
}

/// The abort/restart path is exercised by the stream (contended hotspot)
/// and the mechanisms that restart still serve every transaction.
#[test]
fn contended_streams_restart_but_complete() {
    let hot = OpenSimConfig {
        terminals: 8,
        total_txns: 120,
        vars: 2,
        hot_fraction: 0.8,
        read_fraction: 0.1,
        seed: 13,
        ..OpenSimConfig::default()
    };
    let mut any_aborts = false;
    for (name, mk) in factories() {
        let r = simulate_open(&mk, &hot);
        assert_eq!(r.committed, 120, "{name} under contention");
        any_aborts |= r.aborts > 0;
    }
    assert!(any_aborts, "a hotspot stream must force some restarts");
}
