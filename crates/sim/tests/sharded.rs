//! Sharded open-world acceptance: cross-shard streams serve fully and
//! serialize for every mechanism, `S = 1` reproduces the unsharded
//! simulator exactly, and coordinator crashes at every two-phase-commit
//! boundary recover a consistent committed prefix with no in-doubt
//! transaction left unresolved.

use ccopt_engine::cc::ConcurrencyControl;
use ccopt_engine::shard::ShardedDb;
use ccopt_engine::DurabilityMode;
use ccopt_model::state::GlobalState;
use ccopt_sim::open_sim::{check_serializable, simulate_open, OpenSimConfig};
use ccopt_sim::shard_sim::{
    simulate_sharded, simulate_sharded_durable, ShardDurableConfig, ShardSimConfig,
};

type Factory = (&'static str, fn() -> Box<dyn ConcurrencyControl>);

fn factories() -> Vec<Factory> {
    use ccopt_engine::cc::*;
    vec![
        ("serial", || Box::new(SerialCc::default())),
        ("strict-2PL", || Box::new(Strict2plCc::default())),
        ("SGT", || Box::new(SgtCc::default())),
        ("T/O", || Box::new(TimestampCc::default())),
        ("OCC", || Box::new(OccCc::default())),
        ("MVTO", || Box::new(MvtoCc::default())),
        ("SI", || Box::new(SiCc::default())),
    ]
}

fn base(seed: u64, total: usize) -> OpenSimConfig {
    OpenSimConfig {
        terminals: 6,
        total_txns: total,
        vars: 12,
        seed,
        check: true,
        ..OpenSimConfig::default()
    }
}

#[test]
fn cross_shard_streams_serve_fully_and_serialize() {
    for seed in [1u64, 7] {
        for (name, mk) in factories() {
            let scfg = ShardSimConfig::new(base(seed, 90), 3, 0.35);
            let r = simulate_sharded(&move || mk(), &scfg);
            assert_eq!(
                r.committed, 90,
                "{name} seed {seed}: the sharded stream must serve fully \
                 (waits/deadlocks must resolve via the valve)"
            );
            assert_eq!(r.history.len(), 90, "{name} seed {seed}");
            // The serializability oracle applies unchanged to the merged
            // cross-shard history (SI admits write skew by design).
            if name != "SI" {
                check_serializable(&r).unwrap_or_else(|e| panic!("{name} seed {seed}: {e}"));
            }
            // Boundedness: shard tables stay sized to the concurrency
            // level, not the stream length.
            assert!(
                r.peak_slots <= 4 * scfg.base.terminals * scfg.shards,
                "{name} seed {seed}: peak shard slots {} not bounded",
                r.peak_slots
            );
            assert!(r.retires >= r.committed, "{name} seed {seed}");
        }
    }
}

#[test]
fn one_shard_reproduces_the_open_world_simulator_exactly() {
    for (name, mk) in factories() {
        let cfg = base(13, 80);
        let open = simulate_open(&move || mk(), &cfg);
        let sharded = simulate_sharded(&move || mk(), &ShardSimConfig::new(cfg, 1, 0.0));
        assert_eq!(sharded.committed, open.committed, "{name}");
        assert_eq!(sharded.aborts, open.aborts, "{name}");
        assert_eq!(sharded.waits, open.waits, "{name}");
        assert_eq!(sharded.retires, open.retires, "{name}");
        assert_eq!(sharded.mv_write_aborts, open.mv_write_aborts, "{name}");
        assert_eq!(sharded.final_state, open.final_state, "{name}");
        assert_eq!(sharded.latency, open.latency, "{name}");
        assert_eq!(sharded.peak_slots, open.peak_slots, "{name}");
        assert_eq!(
            sharded.peak_open_sessions, open.peak_open_sessions,
            "{name}"
        );
        assert_eq!(
            sharded.peak_live_versions, open.peak_live_versions,
            "{name}"
        );
        assert_eq!(
            sharded.versions_reclaimed, open.versions_reclaimed,
            "{name}"
        );
        assert!(
            (sharded.throughput - open.throughput).abs() == 0.0,
            "{name}: S=1 sharded throughput {} != open-world {}",
            sharded.throughput,
            open.throughput
        );
    }
}

#[test]
fn corrupted_cross_shard_history_fails_the_oracle() {
    // Negative control: the oracle has teeth on sharded histories too.
    let scfg = ShardSimConfig::new(base(3, 60), 3, 0.4);
    let mut r = simulate_sharded(
        &|| Box::new(ccopt_engine::cc::Strict2plCc::default()),
        &scfg,
    );
    // Doctor the final state: replay can no longer reproduce it.
    let mut s = r.final_state.0.clone();
    s[0] = ccopt_model::value::Value::Int(123_456);
    r.final_state = GlobalState(s);
    assert!(check_serializable(&r).is_err());
}

#[test]
fn coordinator_crash_at_every_boundary_recovers_a_consistent_prefix() {
    // Strict mode + journal: every committed global state is durable at
    // its commit point except the cross-shard transaction in flight at
    // the crash, which must be all-or-nothing. Sweeping the 2PC action
    // budget kills the coordinator before/after each prepare and around
    // the decision point; the recovered state must equal some journal
    // prefix (no shard-mixed state), and a second recovery must find
    // nothing in doubt.
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        for budget in [0u64, 1, 2, 3, 4, 7, 10] {
            let dir = ccopt_engine::durability::scratch_path(&format!(
                "shard-sim-crash-{budget}-{}",
                name.replace('/', "_")
            ));
            let scfg = ShardSimConfig::new(
                OpenSimConfig {
                    terminals: 4,
                    total_txns: 40,
                    vars: 8,
                    seed: 5,
                    check: false,
                    ..OpenSimConfig::default()
                },
                2,
                0.5,
            );
            let dur = ShardDurableConfig {
                dir: dir.clone(),
                mode: DurabilityMode::Strict,
                crash_after_2pc_actions: Some(budget),
                record_journal: true,
            };
            let r = simulate_sharded_durable(&mk_cc, &scfg, &dur);
            assert_eq!(r.committed, 40, "{name} budget {budget}: sim serves fully");
            // Recover and diff against the committed-prefix journal.
            let mut db = ShardedDb::open(
                &mk_cc,
                GlobalState::from_ints(&[0; 8]),
                &dir,
                DurabilityMode::Strict,
                2,
                0,
            )
            .unwrap_or_else(|e| panic!("{name} budget {budget}: recovery failed: {e}"));
            let recovered = db.globals();
            let k = r
                .journal
                .iter()
                .position(|s| *s == recovered)
                .unwrap_or_else(|| {
                    panic!(
                        "{name} budget {budget}: recovered state matches no committed prefix \
                         (cross-shard atomicity violated): {recovered}"
                    )
                });
            assert!(k <= r.committed, "{name} budget {budget}");
            drop(db);
            // Nothing stays in doubt: the settlement was written back.
            let db = ShardedDb::open(
                &mk_cc,
                GlobalState::from_ints(&[0; 8]),
                &dir,
                DurabilityMode::Strict,
                2,
                0,
            )
            .unwrap();
            let info = db.recovery_info().expect("recovered");
            assert_eq!(
                (info.in_doubt_committed, info.in_doubt_aborted),
                (0, 0),
                "{name} budget {budget}: an in-doubt transaction was left unresolved"
            );
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn durable_sharded_stream_resumes_across_restarts() {
    // Two back-to-back durable runs against the same logs: the second
    // recovers the first's committed state and continues on top.
    let dir = ccopt_engine::durability::scratch_path("shard-sim-resume");
    let mk = || Box::new(ccopt_engine::cc::MvtoCc::default()) as Box<dyn ConcurrencyControl>;
    let scfg = ShardSimConfig::new(
        OpenSimConfig {
            terminals: 4,
            total_txns: 30,
            vars: 10,
            seed: 11,
            ..OpenSimConfig::default()
        },
        2,
        0.3,
    );
    let dur = ShardDurableConfig::new(dir.clone(), DurabilityMode::Strict);
    let first = simulate_sharded_durable(&mk, &scfg, &dur);
    assert_eq!(first.committed, 30);
    let second = simulate_sharded_durable(&mk, &scfg, &dur);
    assert_eq!(second.committed, 30, "the resumed stream serves fully");
    let _ = std::fs::remove_dir_all(&dir);
}
