//! Trace-plane acceptance: the differential claim (a traced run changes
//! nothing the engine decides — same commits, same conflicts, same final
//! state, bit-for-bit) and the flight-recorder claim (a shard panic
//! mid-stream leaves a schema-valid JSONL dump whose merged events are
//! totally ordered and attribute every abort).

use ccopt_engine::cc::ConcurrencyControl;
use ccopt_engine::trace::validate_jsonl_line;
use ccopt_engine::{DurabilityMode, TraceConfig};
use ccopt_sim::open_sim::{
    named_abort_rules, simulate_open, simulate_open_traced, OpenSimConfig, OpenSimResult,
    TOP_CONTENDED,
};
use ccopt_sim::shard_sim::{
    simulate_sharded, simulate_sharded_traced, FaultPlan, ShardDurableConfig, ShardSimConfig,
};

type Factory = (&'static str, fn() -> Box<dyn ConcurrencyControl>);

fn factories() -> Vec<Factory> {
    use ccopt_engine::cc::*;
    vec![
        ("serial", || Box::new(SerialCc::default())),
        ("strict-2PL", || Box::new(Strict2plCc::default())),
        ("SGT", || Box::new(SgtCc::default())),
        ("T/O", || Box::new(TimestampCc::default())),
        ("OCC", || Box::new(OccCc::default())),
        ("MVTO", || Box::new(MvtoCc::default())),
        ("SI", || Box::new(SiCc::default())),
    ]
}

/// Every deterministic field of two runs must agree bit-for-bit (floats
/// compared by bit pattern: "close" is not "identical").
fn assert_identical(name: &str, a: &OpenSimResult, b: &OpenSimResult) {
    assert_eq!(a.committed, b.committed, "{name}: committed");
    assert_eq!(a.aborts, b.aborts, "{name}: aborts");
    assert_eq!(a.waits, b.waits, "{name}: waits");
    assert_eq!(a.retires, b.retires, "{name}: retires");
    assert_eq!(a.mv_write_aborts, b.mv_write_aborts, "{name}: mv aborts");
    assert_eq!(a.clock.to_bits(), b.clock.to_bits(), "{name}: clock");
    assert_eq!(
        a.throughput.to_bits(),
        b.throughput.to_bits(),
        "{name}: throughput"
    );
    assert_eq!(a.latency, b.latency, "{name}: latency summary");
    assert_eq!(a.peak_slots, b.peak_slots, "{name}: peak slots");
    assert_eq!(
        a.peak_open_sessions, b.peak_open_sessions,
        "{name}: peak sessions"
    );
    assert_eq!(
        a.peak_live_versions, b.peak_live_versions,
        "{name}: peak versions"
    );
    assert_eq!(
        a.versions_reclaimed, b.versions_reclaimed,
        "{name}: reclaimed"
    );
    assert_eq!(a.final_state, b.final_state, "{name}: final state");
    assert_eq!(a.shard_restarts, b.shard_restarts, "{name}: restarts");
    assert_eq!(a.shed_aborts, b.shed_aborts, "{name}: shed");
    assert_eq!(a.io_retries, b.io_retries, "{name}: io retries");
    assert_eq!(
        a.recovery_replayed, b.recovery_replayed,
        "{name}: recovery replayed"
    );
    assert_eq!(
        a.commit_lat_ticks_p50, b.commit_lat_ticks_p50,
        "{name}: commit latency p50"
    );
    assert_eq!(
        a.commit_lat_ticks_p99, b.commit_lat_ticks_p99,
        "{name}: commit latency p99"
    );
    assert_eq!(a.top_contended, b.top_contended, "{name}: top contended");
    assert_eq!(a.aborts_by_rule, b.aborts_by_rule, "{name}: aborts by rule");
}

fn contended(seed: u64, total: usize) -> OpenSimConfig {
    OpenSimConfig {
        terminals: 6,
        total_txns: total,
        vars: 8,
        hot_fraction: 0.5,
        read_fraction: 0.3,
        seed,
        ..OpenSimConfig::default()
    }
}

#[test]
fn traced_open_runs_are_bit_identical_to_untraced() {
    // Tracing must be an observer: a traced run (ring + sink on) decides
    // exactly what the untraced run decides, mechanism by mechanism.
    let dir = ccopt_engine::durability::scratch_path("sim-trace-diff");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        let cfg = contended(17, 80);
        let base = simulate_open(&mk_cc, &cfg);
        let sink = dir.join(format!("open-{}.jsonl", name.replace('/', "_")));
        let traced = simulate_open_traced(&mk_cc, &cfg, None, &TraceConfig::to_sink(&sink));
        assert_identical(name, &base, &traced);
        // And the sink it produced is schema-valid, line by line.
        let body = std::fs::read_to_string(&sink).unwrap();
        assert!(!body.is_empty(), "{name}: the sink captured no events");
        for line in body.lines() {
            validate_jsonl_line(line).unwrap_or_else(|e| panic!("{name}: {e}"));
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn traced_sharded_runs_are_bit_identical_to_untraced() {
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        let scfg = ShardSimConfig::new(contended(23, 60), 2, 0.4);
        let base = simulate_sharded(&mk_cc, &scfg);
        let traced = simulate_sharded_traced(&mk_cc, &scfg, None, None, &TraceConfig::ring(1024));
        assert_identical(name, &base, &traced);
    }
}

#[test]
fn contended_runs_attribute_their_aborts_and_rank_hot_variables() {
    // The attribution surfaces in the result: rule rows account for every
    // abort, and under a hot-variable workload the contention table names
    // the hot variable first.
    for (name, mk) in factories() {
        let mk_cc = move || mk();
        let r = simulate_open(&mk_cc, &contended(31, 80));
        let attributed: usize = r.aborts_by_rule.iter().map(|&(_, n)| n).sum();
        assert_eq!(
            attributed, r.aborts,
            "{name}: every abort must carry a rule"
        );
        assert!(r.top_contended.len() <= TOP_CONTENDED, "{name}");
        if let Some(&(var, waits, aborts)) = r.top_contended.first() {
            assert_eq!(var, 0, "{name}: the scripted hot variable leads");
            assert!(waits + aborts > 0, "{name}");
        }
    }
}

#[test]
fn named_abort_rules_lists_non_zero_rows_in_rule_order() {
    use ccopt_engine::ConflictRule;
    let mut table = [0usize; ConflictRule::COUNT];
    table[ConflictRule::Deadlock.index()] = 2;
    table[ConflictRule::OccValidation.index()] = 5;
    assert_eq!(
        named_abort_rules(&table),
        vec![("deadlock", 2), ("occ_validation", 5)]
    );
    assert!(named_abort_rules(&[0; ConflictRule::COUNT]).is_empty());
}

#[test]
fn shard_panic_mid_2pc_dumps_a_valid_flight_recorder() {
    // The acceptance scenario: a durable sharded stream with cross-shard
    // traffic, shard 0 panicked mid-stream, tracing on with a sink and a
    // dump directory. The supervisor must dump shard 0's ring before
    // respawning it; the dump and the live sink must both be schema-valid
    // JSONL; the merged stream must be totally ordered and reconstruct
    // the committed prefix; and every abort must carry its attribution.
    let (name, mk) = ("strict-2PL", factories()[1].1);
    let mk_cc = move || mk();
    let root = ccopt_engine::durability::scratch_path("sim-trace-flight");
    let _ = std::fs::remove_dir_all(&root);
    let wal_dir = root.join("wal");
    let dump_dir = root.join("dumps");
    let sink = root.join("trace.jsonl");
    let scfg = ShardSimConfig::new(
        OpenSimConfig {
            terminals: 4,
            total_txns: 60,
            vars: 8,
            seed: 11,
            check: true,
            ..OpenSimConfig::default()
        },
        2,
        0.5,
    );
    let dur = ShardDurableConfig {
        record_journal: true,
        ..ShardDurableConfig::new(wal_dir, DurabilityMode::Strict)
    };
    let plan = FaultPlan::panic_at(20, 0);
    let trace = TraceConfig::to_sink(&sink).with_dump_dir(&dump_dir);
    let r = simulate_sharded_traced(&mk_cc, &scfg, Some(&dur), Some(&plan), &trace);
    assert_eq!(r.committed, 60, "{name}: the stream serves fully");
    assert!(r.shard_restarts >= 1, "{name}: the panic was supervised");

    // The flight-recorder dump of the dead shard exists and validates.
    let dump = dump_dir.join("flight-shard0.jsonl");
    let dump_body = std::fs::read_to_string(&dump).expect("the supervisor dumped shard 0's ring");
    assert!(!dump_body.is_empty());
    let mut dump_gseq = Vec::new();
    for line in dump_body.lines() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("dump: {e}"));
        dump_gseq.push(field(line, "gseq"));
    }
    // A ring dump is the shard's stream in emission order: its global
    // stamps are strictly increasing.
    assert!(
        dump_gseq.windows(2).all(|w| w[0] < w[1]),
        "the dump preserves emission order"
    );

    // The live sink validates line by line and merges into a total order.
    let body = std::fs::read_to_string(&sink).unwrap();
    let mut events: Vec<(u64, String)> = Vec::new();
    for line in body.lines() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("sink: {e}"));
        events.push((field(line, "gseq"), line.to_string()));
    }
    events.sort_by_key(|&(g, _)| g);
    // Global stamps are unique (a strict total order, not just a sort).
    assert!(
        events.windows(2).all(|w| w[0].0 < w[1].0),
        "gseq stamps are unique across shards"
    );
    // Per-shard streams stay internally ordered inside the merge, and
    // their sequence numbers are gap-free per tracer incarnation (the
    // respawned shard starts a fresh tracer at seq 1).
    for shard in 0..=2u64 {
        let seqs: Vec<u64> = events
            .iter()
            .filter(|(_, l)| field(l, "shard") == shard)
            .map(|(_, l)| field(l, "seq"))
            .collect();
        for w in seqs.windows(2) {
            assert!(
                w[1] == w[0] + 1 || w[1] == 1,
                "shard {shard}: seq jumps from {} to {}",
                w[0],
                w[1]
            );
        }
    }
    // The crash is visible in the stream: shard 0 went down and came
    // back, in that order.
    let down = events
        .iter()
        .position(|(_, l)| l.contains("\"event\":\"shard_down\""))
        .expect("the supervisor traced the crash");
    let up = events
        .iter()
        .position(|(_, l)| l.contains("\"event\":\"shard_up\""))
        .expect("the supervisor traced the recovery");
    assert!(down < up, "down precedes up in the merged order");
    // The committed prefix is reconstructible: the merged stream carries
    // at least one local commit event per committed transaction (cross-
    // shard transactions commit on several shards), and — post-crash —
    // the coordinator's resolve decisions are all present.
    let commits = events
        .iter()
        .filter(|(_, l)| l.contains("\"event\":\"commit\""))
        .count();
    assert!(
        commits >= r.committed,
        "{commits} commit events cannot cover {} commits",
        r.committed
    );
    // Every abort in the stream carries a rule (the validator enforced
    // the field); none may be unattributed.
    for (_, l) in events
        .iter()
        .filter(|(_, l)| l.contains("\"event\":\"abort\""))
    {
        assert!(
            !l.contains("\"rule\":\"unattributed\""),
            "unattributed abort in the trace: {l}"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

/// Extract a numeric field from one flat JSONL line.
fn field(line: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat).unwrap_or_else(|| panic!("{key} in {line}")) + pat.len();
    line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .expect("numeric field")
}
