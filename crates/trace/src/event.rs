//! Lifecycle events, conflict attribution, and the JSONL wire form.
//!
//! Identities are engine-level: `txn` fields carry the attempt's **global
//! sequence number** (never recycled, so a trace is unambiguous across
//! slot reuse), `var` fields carry the dense variable index, `gtid` the
//! cross-shard transaction id. A [`TraceEvent`] wraps an [`EventKind`]
//! with its ordering coordinates: `(shard, seq)` positions it in its
//! shard's stream (gap detection), `gseq` positions it in the merged
//! cross-shard stream (sort by `gseq` and the result is totally ordered).

/// Which concurrency-control rule fired on a rejection (wait or abort).
///
/// The vocabulary spans all seven mechanisms plus the sharded layer's
/// non-CC aborts, so per-reason counters can live in one fixed array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictRule {
    /// 2PL: the requested lock conflicts with a holder; the requester
    /// queues.
    LockWait,
    /// 2PL: granting the wait would close a waits-for cycle; the
    /// requester is the victim.
    Deadlock,
    /// SGT: admitting the step would close a serialization-graph cycle.
    SgtCycle,
    /// Strictness: the step touches an uncommitted write and waits for
    /// the writer's outcome (SGT reads/overwrites, T/O dirty access).
    DirtyWait,
    /// SGT commit-order mode: a transaction may not commit before its
    /// graph predecessors (the sharded 2PC gate).
    CommitOrderWait,
    /// T/O: the read arrived below a committed writer's timestamp.
    ReadTooLate,
    /// T/O: the write arrived below a committed reader's or writer's
    /// timestamp.
    WriteTooLate,
    /// OCC: backward validation found the read set intersecting a
    /// committed transaction's write set.
    OccValidation,
    /// MVTO: the write can no longer be installed at the transaction's
    /// timestamp (a newer version exists or a younger snapshot read the
    /// superseded one).
    MvWriteTooLate,
    /// MVTO: the access waits on an older transaction's pending write.
    MvPendingWait,
    /// SI: the step would overwrite a version committed since the
    /// transaction's snapshot (first-updater-wins).
    SiFirstUpdater,
    /// SI: commit-time validation lost first-committer-wins.
    SiFirstCommitter,
    /// Sharded backpressure: an operation arrived while the shard's
    /// bounded mailbox was full; the transaction was shed.
    Shed,
    /// The transaction was failed by shard-crash supervision (its shard
    /// died mid-flight and the slot could not be resumed).
    ShardFailover,
    /// An explicit client abort (no conflict; kept so every abort has a
    /// reason).
    Client,
    /// The mechanism did not attribute the rejection (a third-party
    /// `ConcurrencyControl` without `last_conflict` support; never
    /// produced by the in-tree mechanisms).
    Unattributed,
}

impl ConflictRule {
    /// Number of rules (the length of per-reason counter arrays).
    pub const COUNT: usize = 16;

    /// All rules, in `index` order.
    pub const ALL: [ConflictRule; ConflictRule::COUNT] = [
        ConflictRule::LockWait,
        ConflictRule::Deadlock,
        ConflictRule::SgtCycle,
        ConflictRule::DirtyWait,
        ConflictRule::CommitOrderWait,
        ConflictRule::ReadTooLate,
        ConflictRule::WriteTooLate,
        ConflictRule::OccValidation,
        ConflictRule::MvWriteTooLate,
        ConflictRule::MvPendingWait,
        ConflictRule::SiFirstUpdater,
        ConflictRule::SiFirstCommitter,
        ConflictRule::Shed,
        ConflictRule::ShardFailover,
        ConflictRule::Client,
        ConflictRule::Unattributed,
    ];

    /// Dense index for counter arrays.
    pub fn index(self) -> usize {
        ConflictRule::ALL
            .iter()
            .position(|&r| r == self)
            .expect("every rule is listed")
    }

    /// Stable wire name (snake_case, used in JSONL).
    pub fn name(self) -> &'static str {
        match self {
            ConflictRule::LockWait => "lock_wait",
            ConflictRule::Deadlock => "deadlock",
            ConflictRule::SgtCycle => "sgt_cycle",
            ConflictRule::DirtyWait => "dirty_wait",
            ConflictRule::CommitOrderWait => "commit_order_wait",
            ConflictRule::ReadTooLate => "read_too_late",
            ConflictRule::WriteTooLate => "write_too_late",
            ConflictRule::OccValidation => "occ_validation",
            ConflictRule::MvWriteTooLate => "mv_write_too_late",
            ConflictRule::MvPendingWait => "mv_pending_wait",
            ConflictRule::SiFirstUpdater => "si_first_updater",
            ConflictRule::SiFirstCommitter => "si_first_committer",
            ConflictRule::Shed => "shed",
            ConflictRule::ShardFailover => "shard_failover",
            ConflictRule::Client => "client",
            ConflictRule::Unattributed => "unattributed",
        }
    }
}

impl std::fmt::Display for ConflictRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The summary of a CC decision (the verdict dimension of
/// [`EventKind::CcDecision`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The step (or commit) was admitted.
    Proceed,
    /// The requester must wait.
    Wait,
    /// The requester must abort and restart.
    Abort,
}

impl Verdict {
    /// Stable wire name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Proceed => "proceed",
            Verdict::Wait => "wait",
            Verdict::Abort => "abort",
        }
    }
}

/// What happened (the payload of a [`TraceEvent`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A transaction attempt started (`txn` is its fresh gsn).
    TxnBegin {
        /// The attempt.
        txn: u64,
    },
    /// A read step executed.
    StepRead {
        /// The reading attempt.
        txn: u64,
        /// The variable read.
        var: u32,
    },
    /// A write (or update) step executed.
    StepWrite {
        /// The writing attempt.
        txn: u64,
        /// The variable written.
        var: u32,
    },
    /// The concurrency control ruled on a step or commit request.
    CcDecision {
        /// The requesting attempt.
        txn: u64,
        /// The ruling.
        verdict: Verdict,
    },
    /// The attempt blocked (attribution of a `Wait` verdict).
    Wait {
        /// The blocked attempt.
        txn: u64,
        /// The rule that forced the wait.
        rule: ConflictRule,
        /// The contended variable, when the rule names one (commit-order
        /// waits do not).
        var: Option<u32>,
        /// The opponent attempt holding it (gsn), when known.
        opponent: Option<u64>,
    },
    /// The attempt aborted (attribution of an `Abort` verdict).
    Abort {
        /// The aborted attempt.
        txn: u64,
        /// The rule that fired.
        rule: ConflictRule,
        /// The contended variable, when the rule names one.
        var: Option<u32>,
        /// The opponent attempt (gsn), when known.
        opponent: Option<u64>,
    },
    /// 2PC phase 1: this shard voted on a cross-shard transaction.
    Prepare {
        /// The local attempt.
        txn: u64,
        /// The global transaction.
        gtid: u64,
        /// `true` = yes-vote (write-set durable), `false` = no.
        vote: bool,
    },
    /// 2PC phase 2: the decision for a prepared global transaction.
    Resolve {
        /// The decided global transaction.
        gtid: u64,
        /// `true` commits the parked prepare, `false` discards it.
        commit: bool,
    },
    /// The attempt committed.
    Commit {
        /// The committed attempt.
        txn: u64,
    },
    /// The session retired (its dense slot was handed back).
    Retire {
        /// The retired attempt.
        txn: u64,
    },
    /// A shard worker died (panic or unrecoverable storage).
    ShardDown {
        /// The dead shard.
        shard: u32,
    },
    /// A shard worker was recovered and respawned in place.
    ShardUp {
        /// The recovered shard.
        shard: u32,
    },
    /// The server accepted a client connection (network plane).
    ConnAccept {
        /// The server-assigned connection id.
        conn: u64,
    },
    /// A client connection closed (EOF, I/O error, or drain).
    ConnClose {
        /// The closed connection.
        conn: u64,
    },
    /// Admission control refused a request on a connection (the request
    /// was answered with a load-shed response, not queued).
    RequestShed {
        /// The shed connection.
        conn: u64,
    },
    /// Graceful drain began: no new transactions are admitted.
    DrainStart,
    /// Graceful drain finished: in-flight work settled, logs synced.
    DrainDone,
    /// A connection attached a live trace subscription (ops plane).
    SubscribeStart {
        /// The subscribing connection.
        conn: u64,
    },
    /// A live trace subscription detached (connection closed or drain).
    SubscribeEnd {
        /// The unsubscribing connection.
        conn: u64,
    },
}

impl EventKind {
    /// Stable wire name of the event type.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::TxnBegin { .. } => "txn_begin",
            EventKind::StepRead { .. } => "step_read",
            EventKind::StepWrite { .. } => "step_write",
            EventKind::CcDecision { .. } => "cc_decision",
            EventKind::Wait { .. } => "wait",
            EventKind::Abort { .. } => "abort",
            EventKind::Prepare { .. } => "prepare",
            EventKind::Resolve { .. } => "resolve",
            EventKind::Commit { .. } => "commit",
            EventKind::Retire { .. } => "retire",
            EventKind::ShardDown { .. } => "shard_down",
            EventKind::ShardUp { .. } => "shard_up",
            EventKind::ConnAccept { .. } => "conn_accept",
            EventKind::ConnClose { .. } => "conn_close",
            EventKind::RequestShed { .. } => "request_shed",
            EventKind::DrainStart => "drain_start",
            EventKind::DrainDone => "drain_done",
            EventKind::SubscribeStart { .. } => "subscribe_start",
            EventKind::SubscribeEnd { .. } => "subscribe_end",
        }
    }
}

/// One traced occurrence: an [`EventKind`] plus its ordering coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global order stamp: sorting a merged multi-shard trace by `gseq`
    /// yields a total order consistent with every per-shard stream.
    pub gseq: u64,
    /// The emitting shard (0 on unsharded databases).
    pub shard: u32,
    /// Position in the emitting shard's stream (1-based, gap-free while
    /// the shard lives — a jump marks events lost to a crash).
    pub seq: u64,
    /// Engine tick at emission (simulated time; deterministic).
    pub tick: u64,
    /// What happened.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Encode as one JSONL line (no trailing newline). All values are
    /// numbers or fixed enum names, so no string escaping is needed.
    pub fn to_jsonl(&self) -> String {
        let mut s = format!(
            "{{\"gseq\":{},\"shard\":{},\"seq\":{},\"tick\":{},\"event\":\"{}\"",
            self.gseq,
            self.shard,
            self.seq,
            self.tick,
            self.kind.name()
        );
        match self.kind {
            EventKind::TxnBegin { txn } | EventKind::Commit { txn } | EventKind::Retire { txn } => {
                s.push_str(&format!(",\"txn\":{txn}"));
            }
            EventKind::StepRead { txn, var } | EventKind::StepWrite { txn, var } => {
                s.push_str(&format!(",\"txn\":{txn},\"var\":{var}"));
            }
            EventKind::CcDecision { txn, verdict } => {
                s.push_str(&format!(
                    ",\"txn\":{txn},\"verdict\":\"{}\"",
                    verdict.name()
                ));
            }
            EventKind::Wait {
                txn,
                rule,
                var,
                opponent,
            }
            | EventKind::Abort {
                txn,
                rule,
                var,
                opponent,
            } => {
                s.push_str(&format!(",\"txn\":{txn},\"rule\":\"{rule}\""));
                if let Some(v) = var {
                    s.push_str(&format!(",\"var\":{v}"));
                }
                if let Some(o) = opponent {
                    s.push_str(&format!(",\"opponent\":{o}"));
                }
            }
            EventKind::Prepare { txn, gtid, vote } => {
                s.push_str(&format!(",\"txn\":{txn},\"gtid\":{gtid},\"vote\":{vote}"));
            }
            EventKind::Resolve { gtid, commit } => {
                s.push_str(&format!(",\"gtid\":{gtid},\"commit\":{commit}"));
            }
            EventKind::ShardDown { shard } | EventKind::ShardUp { shard } => {
                s.push_str(&format!(",\"down_shard\":{shard}"));
            }
            EventKind::ConnAccept { conn }
            | EventKind::ConnClose { conn }
            | EventKind::RequestShed { conn }
            | EventKind::SubscribeStart { conn }
            | EventKind::SubscribeEnd { conn } => {
                s.push_str(&format!(",\"conn\":{conn}"));
            }
            EventKind::DrainStart | EventKind::DrainDone => {}
        }
        s.push('}');
        s
    }
}

/// Validate one JSONL line against the event schema: well-formed flat
/// object, the ordering coordinates present and numeric, a known event
/// name, and the event's required fields present with the right shape.
/// Returns the event name on success.
pub fn validate_jsonl_line(line: &str) -> Result<&'static str, String> {
    let line = line.trim();
    let inner = line
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .ok_or_else(|| format!("not a JSON object: {line:?}"))?;
    // Flat object, values are numbers / booleans / escape-free strings:
    // splitting on ',' is exact.
    let mut fields: Vec<(String, String)> = Vec::new();
    for pair in inner.split(',') {
        let (k, v) = pair
            .split_once(':')
            .ok_or_else(|| format!("field without ':': {pair:?}"))?;
        let k = k
            .trim()
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key: {k:?}"))?;
        fields.push((k.to_string(), v.trim().to_string()));
    }
    let get = |k: &str| fields.iter().find(|(f, _)| f == k).map(|(_, v)| v.as_str());
    let num = |k: &str| -> Result<u64, String> {
        get(k)
            .ok_or_else(|| format!("missing field {k:?}"))?
            .parse::<u64>()
            .map_err(|_| format!("field {k:?} is not a u64"))
    };
    let boolean = |k: &str| -> Result<bool, String> {
        match get(k) {
            Some("true") => Ok(true),
            Some("false") => Ok(false),
            Some(v) => Err(format!("field {k:?} is not a bool: {v:?}")),
            None => Err(format!("missing field {k:?}")),
        }
    };
    let string = |k: &str| -> Result<&str, String> {
        get(k)
            .ok_or_else(|| format!("missing field {k:?}"))?
            .strip_prefix('"')
            .and_then(|s| s.strip_suffix('"'))
            .ok_or_else(|| format!("field {k:?} is not a string"))
    };
    num("gseq")?;
    num("shard")?;
    num("seq")?;
    num("tick")?;
    let event = string("event")?;
    let known = [
        "txn_begin",
        "step_read",
        "step_write",
        "cc_decision",
        "wait",
        "abort",
        "prepare",
        "resolve",
        "commit",
        "retire",
        "shard_down",
        "shard_up",
        "conn_accept",
        "conn_close",
        "request_shed",
        "drain_start",
        "drain_done",
        "subscribe_start",
        "subscribe_end",
    ];
    let event: &'static str = known
        .iter()
        .find(|&&e| e == event)
        .copied()
        .ok_or_else(|| format!("unknown event {event:?}"))?;
    match event {
        "txn_begin" | "commit" | "retire" => {
            num("txn")?;
        }
        "step_read" | "step_write" => {
            num("txn")?;
            num("var")?;
        }
        "cc_decision" => {
            num("txn")?;
            let v = string("verdict")?;
            if !["proceed", "wait", "abort"].contains(&v) {
                return Err(format!("unknown verdict {v:?}"));
            }
        }
        "wait" | "abort" => {
            num("txn")?;
            let rule = string("rule")?;
            if !ConflictRule::ALL.iter().any(|r| r.name() == rule) {
                return Err(format!("unknown rule {rule:?}"));
            }
            if get("var").is_some() {
                num("var")?;
            }
            if get("opponent").is_some() {
                num("opponent")?;
            }
        }
        "prepare" => {
            num("txn")?;
            num("gtid")?;
            boolean("vote")?;
        }
        "resolve" => {
            num("gtid")?;
            boolean("commit")?;
        }
        "shard_down" | "shard_up" => {
            num("down_shard")?;
        }
        "conn_accept" | "conn_close" | "request_shed" | "subscribe_start" | "subscribe_end" => {
            num("conn")?;
        }
        "drain_start" | "drain_done" => {}
        _ => unreachable!(),
    }
    Ok(event)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: EventKind) -> TraceEvent {
        TraceEvent {
            gseq: 7,
            shard: 1,
            seq: 3,
            tick: 42,
            kind,
        }
    }

    #[test]
    fn every_kind_round_trips_through_the_validator() {
        let kinds = [
            EventKind::TxnBegin { txn: 1 },
            EventKind::StepRead { txn: 1, var: 2 },
            EventKind::StepWrite { txn: 1, var: 2 },
            EventKind::CcDecision {
                txn: 1,
                verdict: Verdict::Wait,
            },
            EventKind::Wait {
                txn: 1,
                rule: ConflictRule::LockWait,
                var: Some(2),
                opponent: Some(9),
            },
            EventKind::Wait {
                txn: 1,
                rule: ConflictRule::CommitOrderWait,
                var: None,
                opponent: None,
            },
            EventKind::Abort {
                txn: 1,
                rule: ConflictRule::Deadlock,
                var: Some(2),
                opponent: Some(9),
            },
            EventKind::Abort {
                txn: 1,
                rule: ConflictRule::Client,
                var: None,
                opponent: None,
            },
            EventKind::Prepare {
                txn: 1,
                gtid: 5,
                vote: true,
            },
            EventKind::Resolve {
                gtid: 5,
                commit: false,
            },
            EventKind::Commit { txn: 1 },
            EventKind::Retire { txn: 1 },
            EventKind::ShardDown { shard: 3 },
            EventKind::ShardUp { shard: 3 },
            EventKind::ConnAccept { conn: 11 },
            EventKind::ConnClose { conn: 11 },
            EventKind::RequestShed { conn: 11 },
            EventKind::DrainStart,
            EventKind::DrainDone,
            EventKind::SubscribeStart { conn: 11 },
            EventKind::SubscribeEnd { conn: 11 },
        ];
        for kind in kinds {
            let line = ev(kind).to_jsonl();
            let name = validate_jsonl_line(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(name, kind.name());
        }
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_jsonl_line("not json").is_err());
        assert!(validate_jsonl_line("{\"gseq\":1}").is_err());
        assert!(validate_jsonl_line(
            "{\"gseq\":1,\"shard\":0,\"seq\":1,\"tick\":0,\"event\":\"nope\"}"
        )
        .is_err());
        // An abort without a rule is missing its attribution.
        assert!(validate_jsonl_line(
            "{\"gseq\":1,\"shard\":0,\"seq\":1,\"tick\":0,\"event\":\"abort\",\"txn\":1}"
        )
        .is_err());
    }

    #[test]
    fn rule_indices_are_dense_and_stable() {
        for (i, r) in ConflictRule::ALL.iter().enumerate() {
            assert_eq!(r.index(), i);
        }
        assert_eq!(ConflictRule::ALL.len(), ConflictRule::COUNT);
    }
}
