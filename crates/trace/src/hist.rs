//! Fixed-bucket latency histograms.
//!
//! Power-of-two buckets: value `v` lands in bucket `bit_length(v)` (zero
//! in bucket 0), so the 64 buckets cover the whole `u64` range with no
//! configuration and recording is a handful of instructions — cheap
//! enough to stay on even when event tracing is off. Percentiles are
//! bucket upper bounds (clamped to the observed max), which makes them
//! deterministic functions of the recorded values: tick-based histograms
//! reproduce bit-for-bit across runs.

/// A fixed-bucket histogram of `u64` samples (latencies, sizes, ticks).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 64],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 64],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(63)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    #[inline]
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Fold another histogram into this one (shard aggregation).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The histogram of samples recorded since `earlier` was snapshotted
    /// (per-bucket saturating subtraction), for interval percentiles in
    /// a sampler: `now.diff(&prev).quantile(0.99)` is the p99 of the
    /// window. `min`/`max` are gauges over the whole run, not the
    /// window, so the interval quantile stays clamped conservatively.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut d = Histogram {
            buckets: [0; 64],
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            min: self.min,
            max: self.max,
        };
        for (i, b) in d.buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        d
    }

    /// The `q`-quantile (`0.0..=1.0`) as the upper bound of the bucket
    /// where the cumulative count crosses it, clamped to the observed
    /// max — a deterministic, conservative estimate. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = match i {
                    0 => 0,
                    63 => self.max,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 100, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - 1106.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds_clamped_to_max() {
        let mut h = Histogram::new();
        for _ in 0..99 {
            h.record(10);
        }
        h.record(1000);
        // 10 lands in bucket 4 (upper bound 15); the p50 must report it.
        assert_eq!(h.quantile(0.5), 15);
        // The tail sample caps at the observed max, not the bucket bound.
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn merge_is_the_sum_of_parts() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut whole = Histogram::new();
        for v in [1u64, 5, 9] {
            a.record(v);
            whole.record(v);
        }
        for v in [2u64, 1_000_000] {
            b.record(v);
            whole.record(v);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn diff_isolates_the_window() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.record(10);
        }
        let snap = h.clone();
        for _ in 0..5 {
            h.record(1000);
        }
        let window = h.diff(&snap);
        assert_eq!(window.count(), 5);
        assert_eq!(window.sum(), 5000);
        // Every windowed sample is 1000 → bucket 10, upper bound 1023,
        // clamped to the observed max.
        assert_eq!(window.quantile(0.5), 1000);
        // Diffing against itself is empty.
        assert_eq!(h.diff(&h).count(), 0);
        assert_eq!(h.diff(&h).quantile(0.99), 0);
    }

    #[test]
    fn extreme_values_stay_in_range() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }
}
