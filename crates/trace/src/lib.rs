//! # `ccopt-trace` — the zero-cost-when-off trace plane
//!
//! Kung & Papadimitriou's optimality theory is about what *information* a
//! scheduler exploits; this crate makes the engine's use of that
//! information observable. It carries no engine dependency — the engine,
//! durability, and simulation layers depend on it, not the other way
//! around — and four pieces cover the workspace:
//!
//! * [`event`] — structured lifecycle events
//!   ([`TraceEvent`]/[`EventKind`]) with per-shard sequence numbers and a
//!   global order stamp so merged cross-shard traces are totally ordered,
//!   plus the conflict-attribution vocabulary ([`ConflictRule`]): every
//!   CC rejection names the rule that fired, the contended variable, and
//!   the opponent transaction. Events encode to JSONL (hand-rolled — the
//!   build environment has no serde) and [`validate_jsonl_line`] checks a
//!   line against the event schema.
//! * [`hist`] — [`Histogram`]: fixed power-of-two buckets for latencies
//!   and phase timings. Recording is a few instructions and never
//!   allocates, so histograms stay on even when event tracing is off.
//! * [`recorder`] — [`FlightRecorder`]: a bounded ring buffer of the
//!   last-N events per shard, dumped (JSONL) by the fault supervisor on
//!   worker panic or unrecoverable storage, so every injected-fault test
//!   failure comes with its tail of history.
//! * [`tracer`] — [`Tracer`]: the per-shard emission handle threaded
//!   through the engine. Disabled it is a single `Option` check — no
//!   allocation, no locks, no syscalls — which is what keeps traced-off
//!   runs bit-identical to untraced ones. [`TraceHub`] (built from a
//!   [`TraceConfig`]) owns the shared pieces: the global sequence, the
//!   JSONL sink, and the per-shard rings.

pub mod event;
pub mod hist;
pub mod recorder;
pub mod tracer;

pub use event::{validate_jsonl_line, ConflictRule, EventKind, TraceEvent, Verdict};
pub use hist::Histogram;
pub use recorder::FlightRecorder;
pub use tracer::{TraceConfig, TraceHub, TraceSubscription, Tracer};
