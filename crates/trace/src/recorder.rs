//! The flight recorder: a bounded ring of the last-N events.
//!
//! One ring lives beside each shard's tracer, shared (`Arc<Mutex<_>>`)
//! with the coordinating layer, so when a shard worker panics — dropping
//! its database and tracer mid-flight — the supervisor still holds the
//! ring and can dump the tail of history that led to the crash.

use crate::event::TraceEvent;
use std::collections::VecDeque;

/// A bounded ring buffer of [`TraceEvent`]s. Pushing beyond capacity
/// evicts the oldest event and counts it as dropped.
#[derive(Clone, Debug, Default)]
pub struct FlightRecorder {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder keeping the last `cap` events (`cap == 0` keeps none).
    pub fn new(cap: usize) -> FlightRecorder {
        FlightRecorder {
            cap,
            buf: VecDeque::with_capacity(cap.min(4096)),
            dropped: 0,
        }
    }

    /// Append an event, evicting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring holds nothing.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted (or refused at `cap == 0`) since creation.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drain the held events, oldest first (the ring ends empty).
    pub fn drain(&mut self) -> Vec<TraceEvent> {
        self.buf.drain(..).collect()
    }

    /// Encode the held events as JSONL, one line per event, oldest first.
    pub fn dump_jsonl(&self) -> String {
        let mut s = String::new();
        for ev in &self.buf {
            s.push_str(&ev.to_jsonl());
            s.push('\n');
        }
        s
    }
}

/// Merge per-shard event streams into one totally ordered trace: sort by
/// the global stamp `gseq` (unique across shards by construction).
pub fn merge_ordered(mut events: Vec<TraceEvent>) -> Vec<TraceEvent> {
    events.sort_by_key(|e| e.gseq);
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    fn ev(gseq: u64, shard: u32) -> TraceEvent {
        TraceEvent {
            gseq,
            shard,
            seq: gseq,
            tick: 0,
            kind: EventKind::TxnBegin { txn: gseq },
        }
    }

    #[test]
    fn ring_keeps_the_last_n_and_counts_drops() {
        let mut r = FlightRecorder::new(3);
        for i in 0..5 {
            r.push(ev(i, 0));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let kept: Vec<u64> = r.events().map(|e| e.gseq).collect();
        assert_eq!(kept, vec![2, 3, 4]);
        assert_eq!(r.dump_jsonl().lines().count(), 3);
    }

    #[test]
    fn zero_capacity_keeps_nothing() {
        let mut r = FlightRecorder::new(0);
        r.push(ev(1, 0));
        assert!(r.is_empty());
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn merge_orders_across_shards() {
        let events = vec![ev(5, 1), ev(2, 0), ev(9, 1), ev(1, 0)];
        let merged = merge_ordered(events);
        let order: Vec<u64> = merged.iter().map(|e| e.gseq).collect();
        assert_eq!(order, vec![1, 2, 5, 9]);
    }
}
