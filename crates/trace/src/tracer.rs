//! The emission handle and its shared plumbing.
//!
//! [`TraceHub`] is built once per run from a [`TraceConfig`] and owns the
//! pieces every shard shares: the global order stamp, the (optional)
//! JSONL sink, and the per-shard flight-recorder rings. It mints one
//! [`Tracer`] per shard; the engine threads the tracer through its hot
//! paths and calls [`Tracer::emit`] at each lifecycle point.
//!
//! A disabled tracer ([`Tracer::off`], the default) is a single `None`
//! check per emission site — no allocation, no locks, no syscalls — so
//! traced-off runs are bit-identical to builds that never heard of
//! tracing, which the differential tests pin down.

use crate::event::{EventKind, TraceEvent};
use crate::recorder::FlightRecorder;
use std::collections::VecDeque;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a trace mutex, recovering from poison: a shard worker that
/// panicked mid-emit leaves its ring poisoned, and the whole point of the
/// flight recorder is to be readable *after* such a crash. Ring and sink
/// state stay well-formed under any interleaving of their short critical
/// sections, so the poison flag carries no information here.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What to trace and where it goes.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    /// Per-shard flight-recorder capacity in events (0 = no ring).
    pub ring_capacity: usize,
    /// Live JSONL stream: every event from every shard, appended as it
    /// happens (merged order is by `gseq`, not file order).
    pub sink: Option<PathBuf>,
    /// Directory where the fault supervisor writes flight-recorder dumps
    /// (`flight-shard<K>.jsonl`) on worker panic or unrecoverable
    /// storage.
    pub dump_dir: Option<PathBuf>,
}

impl TraceConfig {
    /// Events to a JSONL sink with a default 4096-event ring per shard.
    pub fn to_sink(path: impl Into<PathBuf>) -> TraceConfig {
        TraceConfig {
            ring_capacity: 4096,
            sink: Some(path.into()),
            dump_dir: None,
        }
    }

    /// Ring-only tracing (flight recorder without a live stream).
    pub fn ring(capacity: usize) -> TraceConfig {
        TraceConfig {
            ring_capacity: capacity,
            sink: None,
            dump_dir: None,
        }
    }

    /// Set the flight-recorder dump directory.
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> TraceConfig {
        self.dump_dir = Some(dir.into());
        self
    }
}

type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

/// A bounded buffer of rendered JSONL lines feeding one live subscriber.
/// The emitting thread pushes under a short lock; a pump thread drains.
/// When the buffer is full the **incoming** event is dropped and counted
/// — emission never blocks, so a stalled consumer costs the engine one
/// failed length check, nothing more.
#[derive(Debug)]
pub struct SubscriberRing {
    cap: usize,
    buf: VecDeque<String>,
    dropped: u64,
}

impl SubscriberRing {
    fn new(cap: usize) -> SubscriberRing {
        SubscriberRing {
            cap: cap.max(1),
            buf: VecDeque::new(),
            dropped: 0,
        }
    }

    fn push(&mut self, line: String) {
        if self.buf.len() >= self.cap {
            self.dropped += 1;
        } else {
            self.buf.push_back(line);
        }
    }

    /// Whether the next [`push`](SubscriberRing::push) would drop.
    /// Emitters check this *before* rendering the line, so a full ring
    /// costs them a length check instead of a JSON serialization.
    fn is_full(&self) -> bool {
        self.buf.len() >= self.cap
    }

    /// Count one event dropped without offering a line (the emitter
    /// skipped rendering because the ring was already full).
    fn note_drop(&mut self) {
        self.dropped += 1;
    }
}

/// The registry of live subscribers, shared between the hub and every
/// tracer it mints. The `count` atomic keeps the no-subscriber emit path
/// at one relaxed load — no lock, no rendering.
#[derive(Default)]
struct Subscribers {
    count: AtomicUsize,
    next_id: AtomicU64,
    list: Mutex<Vec<(u64, Arc<Mutex<SubscriberRing>>)>>,
}

/// One live trace subscription minted by [`TraceHub::subscribe`]. Drain
/// it from a pump thread; drop semantics are per-subscriber (a slow
/// subscriber loses *its own* events, never anyone else's).
pub struct TraceSubscription {
    id: u64,
    ring: Arc<Mutex<SubscriberRing>>,
}

impl TraceSubscription {
    /// The hub-assigned subscription id (pass to
    /// [`TraceHub::unsubscribe`]).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Take every buffered JSONL line, plus the cumulative count of
    /// events dropped on this subscription so far (monotonic).
    pub fn drain(&self) -> (Vec<String>, u64) {
        let mut ring = lock_unpoisoned(&self.ring);
        (ring.buf.drain(..).collect(), ring.dropped)
    }

    /// Take at most `n` buffered lines (oldest first), leaving the rest
    /// in the ring — for flow-controlled pumps that only forward what
    /// their consumer has credit for. Also returns the cumulative
    /// dropped count.
    pub fn drain_up_to(&self, n: usize) -> (Vec<String>, u64) {
        let mut ring = lock_unpoisoned(&self.ring);
        let take = ring.buf.len().min(n);
        (ring.buf.drain(..take).collect(), ring.dropped)
    }

    /// Cumulative events dropped on this subscription (monotonic).
    pub fn dropped(&self) -> u64 {
        lock_unpoisoned(&self.ring).dropped
    }
}

/// The shared half of a tracing run: global stamp, sink, rings.
pub struct TraceHub {
    gseq: Arc<AtomicU64>,
    sink: Option<Sink>,
    ring_capacity: usize,
    dump_dir: Option<PathBuf>,
    rings: Mutex<Vec<(u32, Arc<Mutex<FlightRecorder>>)>>,
    subs: Arc<Subscribers>,
}

impl TraceHub {
    /// Build the hub (opening the sink file when configured).
    pub fn new(cfg: &TraceConfig) -> std::io::Result<TraceHub> {
        let sink: Option<Sink> = match &cfg.sink {
            Some(path) => {
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent)?;
                }
                let file = std::fs::File::create(path)?;
                Some(Arc::new(Mutex::new(Box::new(std::io::BufWriter::new(
                    file,
                )))))
            }
            None => None,
        };
        Ok(TraceHub {
            gseq: Arc::new(AtomicU64::new(0)),
            sink,
            ring_capacity: cfg.ring_capacity,
            dump_dir: cfg.dump_dir.clone(),
            rings: Mutex::new(Vec::new()),
            subs: Arc::new(Subscribers::default()),
        })
    }

    /// Attach a live subscriber with a bounded buffer of `capacity`
    /// rendered events. Every tracer minted by this hub (before or
    /// after) fans its events into the subscription until
    /// [`unsubscribe`](TraceHub::unsubscribe).
    pub fn subscribe(&self, capacity: usize) -> TraceSubscription {
        let ring = Arc::new(Mutex::new(SubscriberRing::new(capacity)));
        let id = self.subs.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        lock_unpoisoned(&self.subs.list).push((id, ring.clone()));
        self.subs.count.fetch_add(1, Ordering::Release);
        TraceSubscription { id, ring }
    }

    /// Detach a subscriber; its buffered events are discarded.
    pub fn unsubscribe(&self, id: u64) {
        let mut list = lock_unpoisoned(&self.subs.list);
        if let Some(pos) = list.iter().position(|(s, _)| *s == id) {
            list.remove(pos);
            self.subs.count.fetch_sub(1, Ordering::Release);
        }
    }

    /// Live subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.subs.count.load(Ordering::Acquire)
    }

    /// Total events dropped across all live subscriptions.
    pub fn subscribers_dropped(&self) -> u64 {
        lock_unpoisoned(&self.subs.list)
            .iter()
            .map(|(_, r)| lock_unpoisoned(r).dropped)
            .sum()
    }

    /// Mint the tracer for `shard`, registering its flight-recorder ring
    /// with the hub (so a supervisor can dump it after the shard dies).
    pub fn tracer(&self, shard: u32) -> Tracer {
        let ring = if self.ring_capacity > 0 {
            let ring = Arc::new(Mutex::new(FlightRecorder::new(self.ring_capacity)));
            lock_unpoisoned(&self.rings).push((shard, ring.clone()));
            Some(ring)
        } else {
            None
        };
        Tracer(Some(Box::new(TracerInner {
            shard,
            seq: 0,
            gseq: self.gseq.clone(),
            ring,
            sink: self.sink.clone(),
            subs: self.subs.clone(),
        })))
    }

    /// The flight-recorder ring of `shard` (the most recently minted
    /// tracer for it), if rings are on.
    pub fn ring(&self, shard: u32) -> Option<Arc<Mutex<FlightRecorder>>> {
        lock_unpoisoned(&self.rings)
            .iter()
            .rev()
            .find(|(s, _)| *s == shard)
            .map(|(_, r)| r.clone())
    }

    /// Snapshot every ring's events, merged into one totally ordered
    /// trace (sorted by `gseq`).
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        let rings = lock_unpoisoned(&self.rings);
        let mut events = Vec::new();
        for (_, ring) in rings.iter() {
            events.extend(lock_unpoisoned(ring).events().copied());
        }
        crate::recorder::merge_ordered(events)
    }

    /// Where flight-recorder dumps go (from the config).
    pub fn dump_dir(&self) -> Option<&PathBuf> {
        self.dump_dir.as_ref()
    }

    /// Dump shard `shard`'s flight-recorder ring to
    /// `<dump_dir>/flight-shard<shard>.jsonl`, returning the path written.
    /// `None` when no dump dir is configured, the shard has no ring, or
    /// the ring is empty. The ring outlives the shard worker (the hub
    /// holds it), so this works *after* the worker panicked — its whole
    /// purpose.
    pub fn dump_ring(&self, shard: u32) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.dump_dir else {
            return Ok(None);
        };
        let Some(ring) = self.ring(shard) else {
            return Ok(None);
        };
        let body = lock_unpoisoned(&ring).dump_jsonl();
        if body.is_empty() {
            return Ok(None);
        }
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight-shard{shard}.jsonl"));
        std::fs::write(&path, body)?;
        Ok(Some(path))
    }

    /// Flush the JSONL sink (call before reading the file).
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            let _ = lock_unpoisoned(sink).flush();
        }
    }
}

struct TracerInner {
    shard: u32,
    seq: u64,
    gseq: Arc<AtomicU64>,
    ring: Option<Arc<Mutex<FlightRecorder>>>,
    sink: Option<Sink>,
    subs: Arc<Subscribers>,
}

/// The per-shard emission handle. Default is off: emission is a `None`
/// check and nothing else.
#[derive(Default)]
pub struct Tracer(Option<Box<TracerInner>>);

impl Tracer {
    /// A disabled tracer (the default): every emit is a no-op.
    pub fn off() -> Tracer {
        Tracer(None)
    }

    /// Whether events are being recorded.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Emit one event at `tick`. On the disabled path this is a single
    /// branch — no allocation, no stamping, no I/O.
    #[inline]
    pub fn emit(&mut self, tick: u64, kind: EventKind) {
        let Some(inner) = self.0.as_mut() else {
            return;
        };
        inner.seq += 1;
        let ev = TraceEvent {
            gseq: inner.gseq.fetch_add(1, Ordering::Relaxed) + 1,
            shard: inner.shard,
            seq: inner.seq,
            tick,
            kind,
        };
        if let Some(ring) = &inner.ring {
            lock_unpoisoned(ring).push(ev);
        }
        if let Some(sink) = &inner.sink {
            let mut w = lock_unpoisoned(sink);
            let _ = writeln!(w, "{}", ev.to_jsonl());
        }
        // Live subscribers: one relaxed load when nobody is listening.
        // Pushes are bounded drop-and-count, so a stalled subscriber
        // never back-pressures the emitting thread.
        if inner.subs.count.load(Ordering::Acquire) > 0 {
            let list = lock_unpoisoned(&inner.subs.list);
            // The common case is exactly one subscriber: move the line
            // into its ring instead of cloning per ring — and render it
            // only if some ring will actually take it, so an emitter
            // behind a saturated subscriber pays a length check, not a
            // JSON serialization.
            if let [(_, ring)] = &list[..] {
                let mut r = lock_unpoisoned(ring);
                if r.is_full() {
                    r.note_drop();
                } else {
                    r.push(ev.to_jsonl());
                }
            } else {
                let mut line: Option<String> = None;
                for (_, ring) in list.iter() {
                    let mut r = lock_unpoisoned(ring);
                    if r.is_full() {
                        r.note_drop();
                    } else {
                        let l = line.get_or_insert_with(|| ev.to_jsonl());
                        r.push(l.clone());
                    }
                }
            }
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(i) => write!(f, "Tracer(on, shard={}, seq={})", i.shard, i.seq),
            None => write!(f, "Tracer(off)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::validate_jsonl_line;

    #[test]
    fn off_tracer_is_inert() {
        let mut t = Tracer::off();
        assert!(!t.is_on());
        t.emit(0, EventKind::TxnBegin { txn: 1 }); // no-op, no panic
    }

    #[test]
    fn hub_stamps_a_total_order_across_tracers() {
        let hub = TraceHub::new(&TraceConfig::ring(16)).unwrap();
        let mut a = hub.tracer(0);
        let mut b = hub.tracer(1);
        a.emit(1, EventKind::TxnBegin { txn: 1 });
        b.emit(1, EventKind::TxnBegin { txn: 2 });
        a.emit(2, EventKind::Commit { txn: 1 });
        let merged = hub.merged_events();
        assert_eq!(merged.len(), 3);
        // Stamps are unique and sorted.
        for w in merged.windows(2) {
            assert!(w[0].gseq < w[1].gseq);
        }
        // Per-shard sequences are gap-free.
        let shard0: Vec<u64> = merged
            .iter()
            .filter(|e| e.shard == 0)
            .map(|e| e.seq)
            .collect();
        assert_eq!(shard0, vec![1, 2]);
    }

    #[test]
    fn subscribers_receive_lines_and_overflow_drops_and_counts() {
        let hub = TraceHub::new(&TraceConfig::ring(16)).unwrap();
        let mut t = hub.tracer(0);
        // Nothing subscribed yet: events vanish (and cost one load).
        t.emit(1, EventKind::TxnBegin { txn: 1 });
        let sub = hub.subscribe(3);
        assert_eq!(hub.subscriber_count(), 1);
        for i in 0..5 {
            t.emit(2 + i, EventKind::Commit { txn: i });
        }
        let (lines, dropped) = sub.drain();
        assert_eq!(lines.len(), 3, "bounded at capacity");
        assert_eq!(dropped, 2, "overflow dropped and counted");
        for line in &lines {
            validate_jsonl_line(line).unwrap();
        }
        // Drain frees capacity; dropped stays cumulative.
        t.emit(10, EventKind::Retire { txn: 9 });
        let (lines, dropped) = sub.drain();
        assert_eq!(lines.len(), 1);
        assert_eq!(dropped, 2);
        assert_eq!(hub.subscribers_dropped(), 2);
        hub.unsubscribe(sub.id());
        assert_eq!(hub.subscriber_count(), 0);
        t.emit(11, EventKind::Retire { txn: 10 }); // nobody listening
        assert_eq!(sub.drain().0.len(), 0);
    }

    #[test]
    fn subscription_sees_tracers_minted_before_and_after() {
        let hub = TraceHub::new(&TraceConfig::default()).unwrap();
        let mut before = hub.tracer(0);
        let sub = hub.subscribe(8);
        let mut after = hub.tracer(1);
        before.emit(1, EventKind::TxnBegin { txn: 1 });
        after.emit(1, EventKind::TxnBegin { txn: 2 });
        let (lines, dropped) = sub.drain();
        assert_eq!(lines.len(), 2);
        assert_eq!(dropped, 0);
    }

    #[test]
    fn sink_receives_valid_jsonl() {
        let dir = std::env::temp_dir().join("ccopt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let hub = TraceHub::new(&TraceConfig::to_sink(&path)).unwrap();
        let mut t = hub.tracer(0);
        t.emit(1, EventKind::TxnBegin { txn: 7 });
        t.emit(
            2,
            EventKind::Abort {
                txn: 7,
                rule: crate::event::ConflictRule::Deadlock,
                var: Some(3),
                opponent: Some(8),
            },
        );
        hub.flush();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_jsonl_line(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
