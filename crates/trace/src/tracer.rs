//! The emission handle and its shared plumbing.
//!
//! [`TraceHub`] is built once per run from a [`TraceConfig`] and owns the
//! pieces every shard shares: the global order stamp, the (optional)
//! JSONL sink, and the per-shard flight-recorder rings. It mints one
//! [`Tracer`] per shard; the engine threads the tracer through its hot
//! paths and calls [`Tracer::emit`] at each lifecycle point.
//!
//! A disabled tracer ([`Tracer::off`], the default) is a single `None`
//! check per emission site — no allocation, no locks, no syscalls — so
//! traced-off runs are bit-identical to builds that never heard of
//! tracing, which the differential tests pin down.

use crate::event::{EventKind, TraceEvent};
use crate::recorder::FlightRecorder;
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Lock a trace mutex, recovering from poison: a shard worker that
/// panicked mid-emit leaves its ring poisoned, and the whole point of the
/// flight recorder is to be readable *after* such a crash. Ring and sink
/// state stay well-formed under any interleaving of their short critical
/// sections, so the poison flag carries no information here.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// What to trace and where it goes.
#[derive(Clone, Debug, Default)]
pub struct TraceConfig {
    /// Per-shard flight-recorder capacity in events (0 = no ring).
    pub ring_capacity: usize,
    /// Live JSONL stream: every event from every shard, appended as it
    /// happens (merged order is by `gseq`, not file order).
    pub sink: Option<PathBuf>,
    /// Directory where the fault supervisor writes flight-recorder dumps
    /// (`flight-shard<K>.jsonl`) on worker panic or unrecoverable
    /// storage.
    pub dump_dir: Option<PathBuf>,
}

impl TraceConfig {
    /// Events to a JSONL sink with a default 4096-event ring per shard.
    pub fn to_sink(path: impl Into<PathBuf>) -> TraceConfig {
        TraceConfig {
            ring_capacity: 4096,
            sink: Some(path.into()),
            dump_dir: None,
        }
    }

    /// Ring-only tracing (flight recorder without a live stream).
    pub fn ring(capacity: usize) -> TraceConfig {
        TraceConfig {
            ring_capacity: capacity,
            sink: None,
            dump_dir: None,
        }
    }

    /// Set the flight-recorder dump directory.
    pub fn with_dump_dir(mut self, dir: impl Into<PathBuf>) -> TraceConfig {
        self.dump_dir = Some(dir.into());
        self
    }
}

type Sink = Arc<Mutex<Box<dyn Write + Send>>>;

/// The shared half of a tracing run: global stamp, sink, rings.
pub struct TraceHub {
    gseq: Arc<AtomicU64>,
    sink: Option<Sink>,
    ring_capacity: usize,
    dump_dir: Option<PathBuf>,
    rings: Mutex<Vec<(u32, Arc<Mutex<FlightRecorder>>)>>,
}

impl TraceHub {
    /// Build the hub (opening the sink file when configured).
    pub fn new(cfg: &TraceConfig) -> std::io::Result<TraceHub> {
        let sink: Option<Sink> = match &cfg.sink {
            Some(path) => {
                if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                    std::fs::create_dir_all(parent)?;
                }
                let file = std::fs::File::create(path)?;
                Some(Arc::new(Mutex::new(Box::new(std::io::BufWriter::new(
                    file,
                )))))
            }
            None => None,
        };
        Ok(TraceHub {
            gseq: Arc::new(AtomicU64::new(0)),
            sink,
            ring_capacity: cfg.ring_capacity,
            dump_dir: cfg.dump_dir.clone(),
            rings: Mutex::new(Vec::new()),
        })
    }

    /// Mint the tracer for `shard`, registering its flight-recorder ring
    /// with the hub (so a supervisor can dump it after the shard dies).
    pub fn tracer(&self, shard: u32) -> Tracer {
        let ring = if self.ring_capacity > 0 {
            let ring = Arc::new(Mutex::new(FlightRecorder::new(self.ring_capacity)));
            lock_unpoisoned(&self.rings).push((shard, ring.clone()));
            Some(ring)
        } else {
            None
        };
        Tracer(Some(Box::new(TracerInner {
            shard,
            seq: 0,
            gseq: self.gseq.clone(),
            ring,
            sink: self.sink.clone(),
        })))
    }

    /// The flight-recorder ring of `shard` (the most recently minted
    /// tracer for it), if rings are on.
    pub fn ring(&self, shard: u32) -> Option<Arc<Mutex<FlightRecorder>>> {
        lock_unpoisoned(&self.rings)
            .iter()
            .rev()
            .find(|(s, _)| *s == shard)
            .map(|(_, r)| r.clone())
    }

    /// Snapshot every ring's events, merged into one totally ordered
    /// trace (sorted by `gseq`).
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        let rings = lock_unpoisoned(&self.rings);
        let mut events = Vec::new();
        for (_, ring) in rings.iter() {
            events.extend(lock_unpoisoned(ring).events().copied());
        }
        crate::recorder::merge_ordered(events)
    }

    /// Where flight-recorder dumps go (from the config).
    pub fn dump_dir(&self) -> Option<&PathBuf> {
        self.dump_dir.as_ref()
    }

    /// Dump shard `shard`'s flight-recorder ring to
    /// `<dump_dir>/flight-shard<shard>.jsonl`, returning the path written.
    /// `None` when no dump dir is configured, the shard has no ring, or
    /// the ring is empty. The ring outlives the shard worker (the hub
    /// holds it), so this works *after* the worker panicked — its whole
    /// purpose.
    pub fn dump_ring(&self, shard: u32) -> std::io::Result<Option<PathBuf>> {
        let Some(dir) = &self.dump_dir else {
            return Ok(None);
        };
        let Some(ring) = self.ring(shard) else {
            return Ok(None);
        };
        let body = lock_unpoisoned(&ring).dump_jsonl();
        if body.is_empty() {
            return Ok(None);
        }
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("flight-shard{shard}.jsonl"));
        std::fs::write(&path, body)?;
        Ok(Some(path))
    }

    /// Flush the JSONL sink (call before reading the file).
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            let _ = lock_unpoisoned(sink).flush();
        }
    }
}

struct TracerInner {
    shard: u32,
    seq: u64,
    gseq: Arc<AtomicU64>,
    ring: Option<Arc<Mutex<FlightRecorder>>>,
    sink: Option<Sink>,
}

/// The per-shard emission handle. Default is off: emission is a `None`
/// check and nothing else.
#[derive(Default)]
pub struct Tracer(Option<Box<TracerInner>>);

impl Tracer {
    /// A disabled tracer (the default): every emit is a no-op.
    pub fn off() -> Tracer {
        Tracer(None)
    }

    /// Whether events are being recorded.
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Emit one event at `tick`. On the disabled path this is a single
    /// branch — no allocation, no stamping, no I/O.
    #[inline]
    pub fn emit(&mut self, tick: u64, kind: EventKind) {
        let Some(inner) = self.0.as_mut() else {
            return;
        };
        inner.seq += 1;
        let ev = TraceEvent {
            gseq: inner.gseq.fetch_add(1, Ordering::Relaxed) + 1,
            shard: inner.shard,
            seq: inner.seq,
            tick,
            kind,
        };
        if let Some(ring) = &inner.ring {
            lock_unpoisoned(ring).push(ev);
        }
        if let Some(sink) = &inner.sink {
            let mut w = lock_unpoisoned(sink);
            let _ = writeln!(w, "{}", ev.to_jsonl());
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Some(i) => write!(f, "Tracer(on, shard={}, seq={})", i.shard, i.seq),
            None => write!(f, "Tracer(off)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::validate_jsonl_line;

    #[test]
    fn off_tracer_is_inert() {
        let mut t = Tracer::off();
        assert!(!t.is_on());
        t.emit(0, EventKind::TxnBegin { txn: 1 }); // no-op, no panic
    }

    #[test]
    fn hub_stamps_a_total_order_across_tracers() {
        let hub = TraceHub::new(&TraceConfig::ring(16)).unwrap();
        let mut a = hub.tracer(0);
        let mut b = hub.tracer(1);
        a.emit(1, EventKind::TxnBegin { txn: 1 });
        b.emit(1, EventKind::TxnBegin { txn: 2 });
        a.emit(2, EventKind::Commit { txn: 1 });
        let merged = hub.merged_events();
        assert_eq!(merged.len(), 3);
        // Stamps are unique and sorted.
        for w in merged.windows(2) {
            assert!(w[0].gseq < w[1].gseq);
        }
        // Per-shard sequences are gap-free.
        let shard0: Vec<u64> = merged
            .iter()
            .filter(|e| e.shard == 0)
            .map(|e| e.seq)
            .collect();
        assert_eq!(shard0, vec![1, 2]);
    }

    #[test]
    fn sink_receives_valid_jsonl() {
        let dir = std::env::temp_dir().join("ccopt-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sink-{}.jsonl", std::process::id()));
        let hub = TraceHub::new(&TraceConfig::to_sink(&path)).unwrap();
        let mut t = hub.tracer(0);
        t.emit(1, EventKind::TxnBegin { txn: 7 });
        t.emit(
            2,
            EventKind::Abort {
                txn: 7,
                rule: crate::event::ConflictRule::Deadlock,
                var: Some(3),
                opponent: Some(8),
            },
        );
        hub.flush();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_jsonl_line(line).unwrap();
        }
        let _ = std::fs::remove_file(&path);
    }
}
