//! The adversary game behind Theorem 2, played out move by move.
//!
//! A scheduler that knows only the *format* claims it can pass some
//! non-serial history. The adversary then instantiates the transaction
//! system that breaks it — exactly the proof of Theorem 2.
//!
//! ```text
//! cargo run --example adversary_game
//! ```

use ccopt::core::theorems::counter_adversary_for;
use ccopt::model::exec::Executor;
use ccopt::model::state::GlobalState;
use ccopt::schedule::correct::{incorrectness_witness, is_correct};
use ccopt::schedule::enumerate::all_schedules;

fn main() {
    let format = vec![2u32, 2];
    println!("Format known to the scheduler: {format:?}");
    println!("The scheduler would like to pass every history. The adversary objects:\n");

    let mut defeated = 0;
    let mut serial = 0;
    for h in all_schedules(&format) {
        if h.is_serial() {
            serial += 1;
            println!("{h}  — serial, safe for every system (basic assumption)");
            continue;
        }
        let adv = counter_adversary_for(&format, &h).expect("non-serial has an adversary");
        Executor::new(&adv)
            .verify_basic_assumption()
            .expect("adversary transactions are individually correct");
        assert!(!is_correct(&adv, &h));
        defeated += 1;
        println!(
            "{h}  — DEFEATED: {}",
            incorrectness_witness(&adv, &h).expect("witness")
        );
    }

    println!("\n{serial} serial histories safe; {defeated} non-serial histories defeated.");
    println!("Conclusion (Theorem 2): with format-only information, the serial");
    println!("scheduler is optimal — no correct scheduler may pass anything more.");

    // Show one adversary in full.
    let h = all_schedules(&format)
        .into_iter()
        .find(|h| !h.is_serial())
        .expect("exists");
    let adv = counter_adversary_for(&format, &h).expect("adversary");
    println!("\nThe adversary for {h} is the counter system:");
    println!("  all steps x <- x (identity), except the pattern");
    println!("  T_i,l: x <- x+1;  T_j,m: x <- 2x;  T_i,l+1: x <- x-1");
    println!("  IC: x = 0; initial state x = 0.");
    let ex = Executor::new(&adv);
    let end = ex
        .run_sequence(GlobalState::from_ints(&[0]), h.steps())
        .expect("runs");
    println!(
        "  running {h} from x=0 ends at {} — inconsistent.",
        end.globals
    );
}
