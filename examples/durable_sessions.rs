//! Durable sessions: write-ahead logging, group commit, a simulated
//! crash, and recovery.
//!
//! ```text
//! cargo run --example durable_sessions
//! ```
//!
//! Opens a session database with a redo-only write-ahead log, runs a
//! stream of transactions, *crashes* (drops the database without
//! shutdown), reopens the same path, and verifies the recovered globals —
//! under `Strict` everything acknowledged survives; under group commit
//! the crash may cost at most the open batch, which is the deal group
//! commit offers in exchange for one fsync per batch instead of one per
//! commit.

use ccopt::engine::cc::{MvtoCc, Strict2plCc};
use ccopt::engine::durability::scratch_path;
use ccopt::engine::session::{Op, SessionDb};
use ccopt::engine::DurabilityMode;
use ccopt::model::ids::VarId;
use ccopt::model::state::GlobalState;
use ccopt::model::value::Value;
use std::error::Error;

/// Run `n` increment transactions through the session API.
fn run_stream(db: &mut SessionDb, n: u32) -> Result<(), Box<dyn Error>> {
    for i in 0..n {
        let h = db.begin();
        let var = VarId(i % 2);
        loop {
            match db.update(h, var, |v| Value::Int(v.as_int().unwrap() + 1))? {
                Op::Done(_) => break,
                Op::Wait | Op::Restarted => {}
            }
        }
        while db.commit(h)? != Op::Done(()) {}
        db.retire(h)?;
    }
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let path = scratch_path("durable-sessions-example");
    let init = GlobalState::from_ints(&[0, 0]);

    println!("== strict durability: every commit fsynced ==");
    {
        let mut db = SessionDb::open(
            Box::new(Strict2plCc::default()),
            init.clone(),
            &path,
            DurabilityMode::Strict,
        )?;
        run_stream(&mut db, 50)?;
        println!(
            "50 commits -> {} log records, {} fsyncs, {} bytes; state {}",
            db.metrics.wal_records,
            db.metrics.wal_syncs,
            db.metrics.wal_bytes,
            db.globals()
        );
        // CRASH: drop without shutdown. Nothing is flushed on drop — a
        // durable database dying here is exactly a power failure.
    }
    let mut db = SessionDb::open(
        Box::new(Strict2plCc::default()),
        init.clone(),
        &path,
        DurabilityMode::Strict,
    )?;
    let rec = db.recovery_info().expect("an existing log was recovered");
    println!(
        "recovered {} committed txns (floor {}, torn bytes {}): state {}",
        rec.committed,
        rec.floor,
        rec.truncated_bytes,
        db.globals()
    );
    assert_eq!(db.globals(), GlobalState::from_ints(&[25, 25]));

    println!("\n== the stream resumes on the recovered state ==");
    run_stream(&mut db, 10)?;
    println!("10 more commits -> {}", db.globals());
    db.checkpoint()?; // compact the log to one snapshot record
    println!(
        "checkpointed; log is {} bytes on disk",
        std::fs::metadata(&path)?.len()
    );
    drop(db);
    std::fs::remove_file(&path)?;

    println!("\n== group commit: one fsync per batch, bounded loss window ==");
    let gpath = scratch_path("durable-sessions-group");
    {
        let mut db = SessionDb::open(
            Box::new(MvtoCc::default()),
            init.clone(),
            &gpath,
            DurabilityMode::group(8),
        )?;
        run_stream(&mut db, 50)?;
        println!(
            "50 commits under group(8) -> only {} fsyncs (strict paid 51)",
            db.metrics.wal_syncs
        );
        // CRASH with up to one batch of acknowledged commits buffered.
    }
    let db = SessionDb::open(
        Box::new(MvtoCc::default()),
        init,
        &gpath,
        DurabilityMode::group(8),
    )?;
    let rec = db.recovery_info().expect("recovered");
    let total: i64 = db.globals().iter().map(|(_, v)| v.as_int().unwrap()).sum();
    println!(
        "recovered {} of 50 commits: state {} (lost at most one batch: {} >= 42)",
        rec.committed,
        db.globals(),
        total
    );
    assert!(rec.committed >= 42 && rec.committed <= 50);
    assert_eq!(total, rec.committed as i64);
    drop(db);
    std::fs::remove_file(&gpath)?;
    Ok(())
}
