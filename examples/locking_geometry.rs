//! Locking and its geometry (Section 5): the 2PL and 2PL′ transformations,
//! the progress space with its blocks and deadlock region, and the
//! common-point proof of 2PL's correctness.
//!
//! ```text
//! cargo run --example locking_geometry
//! ```

use ccopt::geometry::common_point::common_point_report;
use ccopt::geometry::deadlock::DeadlockAnalysis;
use ccopt::geometry::render::{legend, render, RenderOptions};
use ccopt::geometry::space::ProgressSpace;
use ccopt::locking::policy::LockingPolicy;
use ccopt::locking::two_phase::TwoPhasePolicy;
use ccopt::locking::variant::TwoPhasePrimePolicy;
use ccopt::model::ids::TxnId;
use ccopt::model::systems;

fn main() {
    // Figure 2: lock the x-y-x-z transaction with 2PL.
    let sys = systems::fig2_like();
    let locked = TwoPhasePolicy.transform(&sys.syntax);
    println!("--- Figure 2: 2PL ---");
    println!("{}", locked.render_txn(0));

    // Figure 5: the same transaction under 2PL'.
    let x = sys.syntax.var_by_name("x").expect("x");
    let prime = TwoPhasePrimePolicy::new(x).transform(&sys.syntax);
    println!("--- Figure 5: 2PL' ---");
    println!("{}", prime.render_txn(0));

    // Figure 3: the progress space of the crossing pair.
    let pair = systems::fig3_pair();
    let lts = TwoPhasePolicy.transform(&pair.syntax);
    let sp = ProgressSpace::new(&lts, TxnId(0), TxnId(1));
    println!("--- Figure 3: progress space (T1: x,y vs T2: y,x) ---");
    print!(
        "{}",
        render(
            &sp,
            None,
            RenderOptions {
                show_deadlock: true
            }
        )
    );
    println!("{}\n", legend());

    let an = DeadlockAnalysis::new(&sp);
    println!(
        "deadlock region D: {:?} ({} points)",
        an.deadlock_region(),
        an.deadlock_region().len()
    );

    // Figure 4(d): all blocks share the phase-shift point u.
    let report = common_point_report(&lts);
    println!(
        "\nFigure 4(d): phase-shift point u = {:?}, common block point = {:?}",
        report.phase_shift, report.common_point
    );
    println!("2PL correct because u lies in every block.");
}
