//! Open-world sessions: dynamic transactions over recycled dense slots.
//!
//! ```text
//! cargo run --example open_sessions
//! ```
//!
//! Walks the session lifecycle — `begin`, per-operation `read`/`write`/
//! `update`, explicit `commit`/`abort`, retirement — shows an epoch-guarded
//! handle going stale when its slot recycles, a 2PL deadlock surfacing as a
//! transparent in-place restart, and an MVTO session stream whose version
//! store stays GC-bounded while the transaction count runs far past the
//! dense-table capacity.
//!
//! Session errors implement `std::error::Error`, so the example threads
//! them with `?` instead of unwrapping.

use ccopt::engine::cc::{MvtoCc, Strict2plCc};
use ccopt::engine::session::{Op, SessionDb, SessionError, Txn};
use ccopt::model::ids::VarId;
use ccopt::model::state::GlobalState;
use ccopt::model::value::Value;
use std::error::Error;

fn transfer(
    db: &mut SessionDb,
    h: Txn,
    from: VarId,
    to: VarId,
    amount: i64,
) -> Result<Op<()>, SessionError> {
    // Replay-aware clients drive one operation at a time; a `Restarted`
    // at any point means the CC rolled us back and we start over.
    match db.update(h, from, |v| Value::Int(v.as_int().unwrap() - amount))? {
        Op::Done(_) => {}
        other => return Ok(other.map_done(|_| ())),
    }
    match db.update(h, to, |v| Value::Int(v.as_int().unwrap() + amount))? {
        Op::Done(_) => {}
        other => return Ok(other.map_done(|_| ())),
    }
    db.commit(h)
}

fn main() -> Result<(), Box<dyn Error>> {
    println!("== the session lifecycle (strict 2PL) ==");
    let mut db = SessionDb::new(
        Box::new(Strict2plCc::default()),
        GlobalState::from_ints(&[100, 50]),
    );
    let (a, b) = (VarId(0), VarId(1));

    let t1 = db.begin();
    println!("begin  -> slot {:?}", t1.id());
    assert_eq!(transfer(&mut db, t1, a, b, 30)?, Op::Done(()));
    db.retire(t1)?;
    println!("commit -> balances {} (slot retired)", db.globals());

    // The slot recycles under a fresh epoch; the old handle is dead.
    let t2 = db.begin();
    println!(
        "begin  -> slot {:?} recycled (table still {} slot(s))",
        t2.id(),
        db.num_slots()
    );
    assert_eq!(db.read(t1, a), Err(SessionError::Stale));
    println!("stale handle t1 -> {}", db.read(t1, a).unwrap_err());
    db.abort(t2)?;

    println!("\n== a deadlock becomes a transparent restart ==");
    let x = db.begin();
    let y = db.begin();
    let _ = db.update(x, a, |v| v)?;
    let _ = db.update(y, b, |v| v)?;
    assert_eq!(db.update(x, b, |v| v)?, Op::Wait);
    // y -> a would close the waits-for cycle: y is chosen as the victim
    // and restarts in place; its handle stays valid.
    assert_eq!(db.update(y, a, |v| v)?, Op::Restarted);
    println!(
        "victim restarted in place: attempts(y) = {}",
        db.attempts(y)?
    );
    for h in [x, y] {
        while transfer(&mut db, h, a, b, 1)? != Op::Done(()) {}
        db.retire(h)?;
    }
    println!("both eventually commit: {}", db.globals());

    println!("\n== an unbounded MVTO stream stays bounded ==");
    let mut db = SessionDb::new(Box::new(MvtoCc::default()), GlobalState::from_ints(&[0, 0]));
    for i in 0..1000u32 {
        let h = db.begin();
        let var = VarId(i % 2);
        let _ = db.update(h, var, |v| Value::Int(v.as_int().unwrap() + 1))?;
        assert_eq!(db.commit(h)?, Op::Done(()));
        db.retire(h)?;
    }
    println!(
        "1000 transactions through {} slot(s); {} versions installed, {} reclaimed, {} live",
        db.num_slots(),
        db.metrics.versions_installed,
        db.metrics.versions_reclaimed,
        db.live_versions().unwrap()
    );
    println!("final state {}", db.globals());
    Ok(())
}
