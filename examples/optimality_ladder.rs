//! The paper's core story on one screen: the more a scheduler knows, the
//! larger its optimal fixpoint set — walked level by level on the Figure 1
//! system.
//!
//! ```text
//! cargo run --example optimality_ladder
//! ```

use ccopt::core::fixpoint::fixpoint_set;
use ccopt::core::info::InfoLevel;
use ccopt::core::optimal::OptimalScheduler;
use ccopt::core::theorems::isomorphism_check;
use ccopt::model::ids::StepId;
use ccopt::model::systems;
use ccopt::schedule::enumerate::count_schedules;
use ccopt::schedule::schedule::Schedule;

fn main() {
    let sys = systems::fig1();
    println!("System: T1 = (x←x+1 ; x←2x), T2 = (x←x+1); no constraints.");
    println!("|H| = {}\n", count_schedules(&sys.format()));

    let h = Schedule::new_unchecked(vec![
        StepId::new(0, 0),
        StepId::new(1, 0),
        StepId::new(0, 1),
    ]);

    for level in InfoLevel::ALL {
        let mut s = OptimalScheduler::for_level(&sys, level);
        let p = fixpoint_set(&mut s, &sys.format());
        let passes_h = p.contains(&h);
        println!(
            "{level:16} -> optimal P has {} schedule(s); passes h = {}: {}",
            p.len(),
            h,
            passes_h
        );
    }

    println!();
    println!("The interesting jump: h is NOT Herbrand-serializable (syntactic");
    println!("level must delay it) but the interpretations commute, so the");
    println!("semantic level passes it — Figure 1's lesson, reproduced.");

    let iso = isomorphism_check(&sys);
    println!(
        "\nOrder isomorphism I ⊆ I' ⇒ P ⊇ P' checked: {}",
        if iso.holds() { "HOLDS" } else { "FAILS" }
    );

    // Beyond the static ladder: the Section 6 assertion scheduler uses the
    // integrity constraints themselves. With invariant-preserving steps it
    // passes every history of a system whose IC is x >= 0.
    use ccopt::core::assertions::{AssertionProgram, AssertionScheduler};
    use ccopt::model::expr::{Cond, Expr};
    use ccopt::model::ids::VarId;
    let inc_sys = {
        use ccopt::model::ic::CondIc;
        use ccopt::model::interp::ExprInterpretation;
        use ccopt::model::syntax::SyntaxBuilder;
        use ccopt::model::system::{StateSpace, TransactionSystem};
        use std::sync::Arc;
        let syn = SyntaxBuilder::new()
            .txn("T1", |t| t.update("x").update("x"))
            .txn("T2", |t| t.update("x").update("x"))
            .build();
        let inc = |j: usize| Expr::add(Expr::Local(j), Expr::Const(1));
        let interp = ExprInterpretation::new(vec![vec![inc(0), inc(1)], vec![inc(0), inc(1)]]);
        TransactionSystem::new(
            "increments",
            syn,
            Arc::new(interp),
            Arc::new(CondIc(Cond::Ge(Expr::Var(VarId(0)), Expr::Const(0)))),
            StateSpace::from_ints(&[&[0]]),
        )
    };
    let prog = AssertionProgram::uniform(&inc_sys, Cond::Ge(Expr::Var(VarId(0)), Expr::Const(0)));
    let mut assertion = AssertionScheduler::new(inc_sys.clone(), prog);
    let p = fixpoint_set(&mut assertion, &inc_sys.format());
    println!(
        "\nSection 6 extension — assertion scheduler on commuting increments:\n\
         passes {} of {} histories (every one), using the IC itself.",
        p.len(),
        ccopt::schedule::enumerate::count_schedules(&inc_sys.format())
    );
}
