//! Quickstart: the banking transaction system of Section 2, executed,
//! broken by an interleaving, and protected by a scheduler.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use ccopt::core::fixpoint::is_fixpoint;
use ccopt::core::scheduler::run_scheduler;
use ccopt::model::exec::Executor;
use ccopt::model::state::GlobalState;
use ccopt::model::systems;
use ccopt::schedule::correct::{incorrectness_witness, is_correct};
use ccopt::schedule::enumerate::for_each_schedule;
use ccopt::schedule::schedule::Schedule;
use ccopt::schedulers::two_phase::two_phase_scheduler;

fn main() {
    // The Section 2 example: accounts A and B, audit sum S, counter C.
    let sys = systems::banking();
    println!("System: {}\n{}", sys.name, sys.syntax);
    println!("IC: {}\n", sys.ic.describe());

    // Every transaction alone preserves consistency (the basic assumption).
    let ex = Executor::new(&sys);
    ex.verify_basic_assumption().expect("basic assumption");
    println!("basic assumption: every transaction is individually correct ✓\n");

    // A serial execution from the paper's initial state.
    let init = GlobalState::from_ints(&[150, 50, 200, 0]);
    let serial = Schedule::serial(
        &sys.format(),
        &[
            ccopt::model::ids::TxnId(1),
            ccopt::model::ids::TxnId(0),
            ccopt::model::ids::TxnId(2),
        ],
    );
    let end = ex.run_sequence(init.clone(), serial.steps()).expect("runs");
    println!(
        "serial withdraw;transfer;audit from {init}: {}",
        end.globals
    );
    println!("consistent: {}\n", sys.ic.is_consistent(&end.globals));

    // Find an interleaving that breaks the invariant.
    let mut bad: Option<Schedule> = None;
    for_each_schedule(&sys.format(), |h| {
        if !is_correct(&sys, h) {
            bad = Some(h.clone());
            false
        } else {
            true
        }
    });
    let bad = bad.expect("banking has incorrect interleavings");
    println!("an incorrect interleaving exists: {bad}");
    println!(
        "  why: {}\n",
        incorrectness_witness(&sys, &bad).expect("witness")
    );

    // The 2PL lock manager (a delay-based scheduler) repairs it.
    let mut lrs = two_phase_scheduler(&sys);
    let run = run_scheduler(&mut lrs, &bad);
    println!("2PL/LRS output: {}", run.output);
    println!(
        "  delayed requests: {}, forced flushes: {}, output correct: {}",
        run.delayed_requests,
        run.forced,
        is_correct(&sys, &run.output)
    );
    assert!(
        is_correct(&sys, &run.output),
        "LRS must repair this history"
    );
    println!(
        "  the bad history is{} a fixpoint of 2PL/LRS",
        if is_fixpoint(&mut lrs, &bad) {
            ""
        } else {
            " not"
        }
    );
}
