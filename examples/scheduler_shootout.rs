//! The scheduler line-up compared on both axes the paper defines:
//! exact fixpoint ratios (order view) and simulated waiting/throughput
//! (engine view).
//!
//! ```text
//! cargo run --release --example scheduler_shootout
//! ```

use ccopt::core::fixpoint::fixpoint_ratio;
use ccopt::engine::cc::{
    ConcurrencyControl, MvtoCc, OccCc, SerialCc, SgtCc, SiCc, Strict2plCc, TimestampCc,
};
use ccopt::model::systems;
use ccopt::schedulers::suite::with_weak;
use ccopt::sim::engine_sim::{simulate_engine, SimConfig};
use ccopt::sim::report::{f3, pct, Table};

fn main() {
    // Axis 1: Pr[no step waits] = |P|/|H| on the private-work pair.
    let sys = systems::rw_pair(2);
    let mut t = Table::new(
        "fixpoint ratios on rw-pair(2)  (|H| = 20)",
        &["scheduler", "|P|/|H|"],
    );
    for mut s in with_weak(&sys) {
        let r = fixpoint_ratio(s.as_mut(), &sys.format());
        t.row(&[s.name().to_string(), pct(r)]);
    }
    println!("{t}");

    // Axis 2: engine simulation on a contended workload.
    let hot = systems::hotspot(4, 2);
    let cfg = SimConfig {
        batches: 16,
        ..SimConfig::default()
    };
    type CcFactory = Box<dyn Fn() -> Box<dyn ConcurrencyControl> + Sync>;
    let ccs: Vec<(&str, CcFactory)> = vec![
        ("serial", Box::new(|| Box::new(SerialCc::default()) as _)),
        (
            "strict-2PL",
            Box::new(|| Box::new(Strict2plCc::default()) as _),
        ),
        ("T/O", Box::new(|| Box::new(TimestampCc::default()) as _)),
        ("OCC", Box::new(|| Box::new(OccCc::default()) as _)),
        ("SGT", Box::new(|| Box::new(SgtCc::default()) as _)),
        ("MVTO", Box::new(|| Box::new(MvtoCc::default()) as _)),
        ("SI", Box::new(|| Box::new(SiCc::default()) as _)),
    ];
    let mut t = Table::new(
        "engine simulation on hotspot(4 txns x 2 steps)",
        &["cc", "throughput", "avg response", "avg waiting", "aborts"],
    );
    for (_, mk) in &ccs {
        let r = simulate_engine(&hot, mk.as_ref(), &cfg);
        t.row(&[
            r.cc_name.clone(),
            f3(r.throughput),
            f3(r.response.mean),
            f3(r.waiting.mean),
            r.aborts.to_string(),
        ]);
    }
    println!("{t}");
    println!("Both axes tell the Section 6 story: richer information ⇒ fewer");
    println!("forced waits; on a pure hotspot everything serializes anyway.");
}
