//! The served system end to end: a TCP server in this process, a fleet
//! of wire clients transferring between accounts that live on different
//! shards, and admission control visibly shedding under pressure.
//!
//! The server is deliberately configured with a tiny open-transaction
//! budget (`max_txns`), so with more clients than budget some `begin`s
//! are refused with a shed response. A shed is not an error: the client
//! backs off and retries, and every transfer still lands exactly once —
//! the final snapshot must conserve the total balance.
//!
//! ```text
//! cargo run --example served_sessions
//! ```

use ccopt::engine::Op;
use ccopt_client::{Client, ClientError};
use ccopt_net::{Server, ServerConfig};
use std::time::Duration;

const ACCOUNTS: u32 = 16;
const CLIENTS: usize = 6;
const TRANSFERS: usize = 20;

/// Move `amount` from `from` to `to`: two affine updates that commit or
/// replay atomically under the server's concurrency control. Returns how
/// many times admission control shed our begin before letting us in.
fn transfer(c: &mut Client, from: u32, to: u32, amount: i64) -> usize {
    let mut sheds = 0;
    let h = loop {
        match c.begin() {
            Ok(h) => break h,
            Err(ClientError::Shed) => {
                // The admission story: back off, then try again.
                sheds += 1;
                std::thread::sleep(Duration::from_millis(1 << sheds.min(5)));
            }
            Err(e) => panic!("begin: {e}"),
        }
    };
    'attempt: loop {
        for (var, delta) in [(from, -amount), (to, amount)] {
            loop {
                match c.update(h, var, 1, delta).expect("update") {
                    Op::Done(_) => break,
                    Op::Wait => std::thread::yield_now(),
                    Op::Restarted => continue 'attempt,
                }
            }
        }
        match c.commit(h).expect("commit") {
            Op::Done(()) => return sheds,
            Op::Wait => std::thread::yield_now(),
            Op::Restarted => continue 'attempt,
        }
    }
}

fn main() {
    // A tiny admission budget on purpose: 6 clients, 2 seats.
    let server = Server::start(ServerConfig {
        cc: "strict-2PL".into(),
        num_vars: ACCOUNTS as usize,
        shards: 4,
        max_txns: 2,
        ..ServerConfig::default()
    })
    .expect("server");
    let addr = server.local_addr();
    println!("server listening on {addr} (4 shards, strict-2PL, max 2 open txns)\n");

    let sheds: usize = std::thread::scope(|s| {
        (0..CLIENTS as u32)
            .map(|t| {
                s.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut sheds = 0;
                    for k in 0..TRANSFERS as u32 {
                        // A rotating pattern that crosses shard
                        // boundaries and overlaps between clients.
                        let from = (t * 5 + k) % ACCOUNTS;
                        let to = (t * 5 + k + ACCOUNTS / 2) % ACCOUNTS;
                        sheds += transfer(&mut c, from, to, 1 + (k % 7) as i64);
                    }
                    sheds
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("client"))
            .sum()
    });
    println!(
        "{} clients x {} transfers done; begins shed and retried: {sheds}",
        CLIENTS, TRANSFERS
    );

    // Conservation: transfers move value around, never create it.
    let mut c = Client::connect(addr).expect("connect");
    let h = loop {
        match c.begin() {
            Ok(h) => break h,
            Err(ClientError::Shed) => std::thread::sleep(Duration::from_millis(2)),
            Err(e) => panic!("begin: {e}"),
        }
    };
    let mut total = 0i64;
    println!("\nfinal balances:");
    for var in 0..ACCOUNTS {
        let v = loop {
            match c.read(h, var).expect("read") {
                Op::Done(v) => break v.as_int().expect("int"),
                _ => continue,
            }
        };
        total += v;
        print!("{v:>5}");
        if (var + 1) % 8 == 0 {
            println!();
        }
    }
    c.abort(h).expect("abort reader");
    assert_eq!(total, 0, "transfers conserve the total balance");
    println!("sum = {total} (conserved)");

    let stats = server.shutdown().expect("drain");
    println!(
        "\nserver drained: commits={} aborted_on_drain={} sheds={}",
        stats.commits,
        stats.aborted_on_drain,
        stats.sheds()
    );
    assert_eq!(stats.commits as usize, CLIENTS * TRANSFERS);
    assert!(stats.sheds() as usize >= sheds, "server counted our sheds");
}
