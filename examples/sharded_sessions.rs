//! Sharded execution, end to end: hash-partitioned shards on worker
//! threads, single-shard fast-path commits, cross-shard two-phase
//! commits, a coordinator crash in the middle of one — and recovery
//! settling the in-doubt vote by consulting the coordinator shard's log.
//!
//! ```sh
//! cargo run --release --example sharded_sessions
//! ```

use ccopt::engine::cc::Strict2plCc;
use ccopt::engine::shard::ShardedDb;
use ccopt::engine::{ConcurrencyControl, DurabilityMode, Op};
use ccopt::model::ids::VarId;
use ccopt::model::state::GlobalState;
use ccopt::model::value::Value;

fn cc() -> Box<dyn ConcurrencyControl> {
    Box::new(Strict2plCc::default())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = ccopt::engine::durability::scratch_path("example-sharded");
    let init = GlobalState::from_ints(&[100; 16]);

    // Four shards, each its own thread, lock table and write-ahead log.
    let mut db = ShardedDb::open(&cc, init.clone(), &dir, DurabilityMode::Strict, 4, 8)?;
    let a = VarId(0);
    let b = (1..16)
        .map(VarId)
        .find(|&v| db.shard_of(v) != db.shard_of(a))
        .expect("two shards own variables");
    println!(
        "16 variables over 4 shards; moving 30 from v{} (shard {}) to v{} (shard {})",
        a.0,
        db.shard_of(a),
        b.0,
        db.shard_of(b)
    );

    // A cross-shard transfer: commits atomically through two-phase commit.
    let h = db.begin();
    let Op::Done(_) = db.update(h, a, |v| Value::Int(v.as_int().unwrap() - 30))? else {
        panic!("uncontended access proceeds")
    };
    let Op::Done(_) = db.update(h, b, |v| Value::Int(v.as_int().unwrap() + 30))? else {
        panic!("uncontended access proceeds")
    };
    assert_eq!(db.commit(h)?, Op::Done(()));
    db.retire(h)?;
    println!(
        "after the transfer: v{} = {:?}, v{} = {:?} (cross-shard commits: {})",
        a.0,
        db.globals().0[a.index()],
        b.0,
        db.globals().0[b.index()],
        db.cross_shard_commits()
    );

    // Crash the coordinator right after both shards voted yes but before
    // the decision is logged: the prepares are durable, the outcome is
    // not — both shards recover in doubt and must agree to roll back.
    db.crash_after_2pc_actions(2);
    let h = db.begin();
    let _ = db.update(h, a, |v| Value::Int(v.as_int().unwrap() - 999))?;
    let _ = db.update(h, b, |v| Value::Int(v.as_int().unwrap() + 999))?;
    let _ = db.commit(h)?; // in memory it "commits" — durably it cannot
    drop(db); // the crash

    let mut db = ShardedDb::open(&cc, init.clone(), &dir, DurabilityMode::Strict, 4, 8)?;
    let info = db.recovery_info().expect("logs recovered");
    println!(
        "crash between prepare and decision: recovery rolled back {} in-doubt vote(s); \
         v{} = {:?}, v{} = {:?}",
        info.in_doubt_aborted,
        a.0,
        db.globals().0[a.index()],
        b.0,
        db.globals().0[b.index()]
    );
    assert_eq!(db.globals().0[a.index()], Value::Int(70));
    assert_eq!(db.globals().0[b.index()], Value::Int(130));

    // Crash after the coordinator's decision instead: the participant's
    // resolve record is lost, but consultation re-derives COMMIT.
    db.crash_after_2pc_actions(3);
    let h = db.begin();
    let _ = db.update(h, a, |v| Value::Int(v.as_int().unwrap() - 30))?;
    let _ = db.update(h, b, |v| Value::Int(v.as_int().unwrap() + 30))?;
    let _ = db.commit(h)?;
    drop(db); // crash with the participant resolve still buffered

    let mut db = ShardedDb::open(&cc, init, &dir, DurabilityMode::Strict, 4, 8)?;
    let info = db.recovery_info().expect("logs recovered");
    println!(
        "crash after the decision: recovery consult-committed {} in-doubt vote(s); \
         v{} = {:?}, v{} = {:?}",
        info.in_doubt_committed,
        a.0,
        db.globals().0[a.index()],
        b.0,
        db.globals().0[b.index()]
    );
    assert_eq!(db.globals().0[a.index()], Value::Int(40));
    assert_eq!(db.globals().0[b.index()], Value::Int(160));
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
