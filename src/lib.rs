//! # `ccopt` — An Optimality Theory of Concurrency Control for Databases
//!
//! Umbrella crate re-exporting the whole workspace. See the individual
//! crates for details:
//!
//! * [`model`] — the transaction-system model of Section 2;
//! * [`schedule`] — schedules, enumeration of `H`, the classes
//!   `serial ⊆ CSR ⊆ SR ⊆ WSR ⊆ C(T)`;
//! * [`core`] — information levels, fixpoint sets, optimal schedulers and
//!   the executable Theorems 1–4;
//! * [`locking`] — locking policies (2PL, 2PL′, tree locking) and the
//!   lock-respecting scheduler;
//! * [`geometry`] — the geometry of locking (Section 5.3);
//! * [`schedulers`] — practical online schedulers (serial, 2PL, SGT,
//!   timestamp ordering, OCC);
//! * [`engine`] — the in-memory database substrate;
//! * [`sim`] — the discrete-event simulator of the Section 6 environment.

pub use ccopt_core as core;
pub use ccopt_engine as engine;
pub use ccopt_geometry as geometry;
pub use ccopt_locking as locking;
pub use ccopt_model as model;
pub use ccopt_schedule as schedule;
pub use ccopt_schedulers as schedulers;
pub use ccopt_sim as sim;
