//! Cross-crate integration: the correctness-class ladder and the optimal
//! schedulers, on randomized systems.

use ccopt::core::fixpoint::fixpoint_set;
use ccopt::core::info::InfoLevel;
use ccopt::core::optimal::{class_set, ClassScheduler, OptimalScheduler};
use ccopt::model::random::{random_system, RandomConfig};
use ccopt::schedule::classes::{Analysis, Class};
use ccopt::schedule::wsr::WsrOptions;
use proptest::prelude::*;

fn small_cfg(read_fraction: f64) -> RandomConfig {
    RandomConfig {
        num_txns: 2,
        steps_per_txn: (1, 3),
        num_vars: 2,
        read_fraction,
        hot_fraction: 0.0,
        num_check_states: 3,
        value_range: (-3, 3),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// serial ⊆ CSR ⊆ SR ⊆ WSR ⊆ C pointwise, on random systems.
    #[test]
    fn ladder_inclusions_hold(seed in 0u64..500, rf in 0.0f64..0.5) {
        let sys = random_system(&small_cfg(rf), seed);
        let a = Analysis::run(&sys, WsrOptions::default());
        prop_assert!(a.check_inclusions().is_ok());
    }

    /// The class scheduler's fixpoint set is exactly its class.
    #[test]
    fn class_scheduler_fixpoints_equal_class(seed in 0u64..200) {
        let sys = random_system(&small_cfg(0.2), seed);
        for class in [Class::Serial, Class::Sr, Class::Correct] {
            let k = class_set(&sys, class, WsrOptions::default());
            let expected: std::collections::BTreeSet<_> = k.iter().cloned().collect();
            let mut s = ClassScheduler::new(k, "t", InfoLevel::Complete);
            let p = fixpoint_set(&mut s, &sys.format());
            prop_assert_eq!(p, expected);
        }
    }

    /// Optimal fixpoint sets grow monotonically with information.
    #[test]
    fn optimal_ladder_is_monotone(seed in 0u64..200) {
        let sys = random_system(&small_cfg(0.0), seed);
        let mut prev: Option<std::collections::BTreeSet<_>> = None;
        for level in InfoLevel::ALL {
            let mut s = OptimalScheduler::for_level(&sys, level);
            let p = fixpoint_set(&mut s, &sys.format());
            if let Some(prev) = &prev {
                prop_assert!(prev.is_subset(&p), "level {level} shrank the fixpoint set");
            }
            prev = Some(p);
        }
    }
}

#[test]
fn ladder_on_the_banking_system_has_sensible_sizes() {
    // One deterministic heavyweight case: the banking format (1260
    // schedules) with a reduced WSR bound.
    let sys = ccopt::model::systems::banking();
    let a = Analysis::run(
        &sys,
        WsrOptions {
            max_len: 3,
            uniform: true,
        },
    );
    a.check_inclusions().unwrap();
    let s = a.sizes();
    assert_eq!(s.h, 1260);
    assert_eq!(s.serial, 6);
    assert!(s.correct < s.h, "banking must have incorrect interleavings");
    assert!(s.csr > s.serial, "banking has non-serial CSR schedules");
}
