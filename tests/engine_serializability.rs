//! Engine-level integration: every concurrency control must be
//! state-serializable and lose no committed work, across random systems
//! and driver orders.

use ccopt::engine::cc::{ConcurrencyControl, OccCc, SerialCc, SgtCc, Strict2plCc, TimestampCc};
use ccopt::engine::db::Database;
use ccopt::model::exec::Executor;
use ccopt::model::ids::TxnId;
use ccopt::model::random::{random_system, RandomConfig};
use ccopt::model::state::GlobalState;
use ccopt::schedule::schedule::permutations;
use proptest::prelude::*;

fn all_ccs() -> Vec<Box<dyn ConcurrencyControl>> {
    vec![
        Box::new(SerialCc::default()),
        Box::new(Strict2plCc::default()),
        Box::new(SgtCc::default()),
        Box::new(TimestampCc::default()),
        Box::new(OccCc::default()),
    ]
}

fn cfg() -> RandomConfig {
    RandomConfig {
        num_txns: 3,
        steps_per_txn: (1, 3),
        num_vars: 2,
        read_fraction: 0.0,
        hot_fraction: 0.3,
        num_check_states: 1,
        value_range: (-2, 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The committed state equals SOME serial execution's state, for every
    /// CC and every round-robin driver order.
    #[test]
    fn state_serializability(seed in 0u64..400, perm in 0usize..6) {
        let sys = random_system(&cfg(), seed);
        let init = sys.space.initial_states[0].clone();
        let ex = Executor::new(&sys);
        let ids: Vec<TxnId> = (0..sys.num_txns() as u32).map(TxnId).collect();
        let serial_states: Vec<GlobalState> = permutations(&ids)
            .into_iter()
            .map(|o| ex.run_concatenation(init.clone(), &o).expect("serial runs"))
            .collect();
        let orders = permutations(&ids);
        let order = &orders[perm % orders.len()];
        for cc in all_ccs() {
            let name = cc.name().to_string();
            let mut db = Database::new(sys.clone(), cc, init.clone());
            let stats = db.run_round_robin(order, 3000);
            prop_assert!(stats.is_some(), "{name} stalled (seed {seed})");
            prop_assert!(db.all_committed());
            let fin = db.globals();
            prop_assert!(
                serial_states.contains(&fin),
                "{name} reached non-serializable state {fin} (seed {seed}, order {order:?})"
            );
        }
    }

    /// Conservation: commits equal the number of transactions; metrics are
    /// internally consistent.
    #[test]
    fn conservation(seed in 0u64..400) {
        let sys = random_system(&cfg(), seed);
        let init = sys.space.initial_states[0].clone();
        let ids: Vec<TxnId> = (0..sys.num_txns() as u32).map(TxnId).collect();
        for cc in all_ccs() {
            let name = cc.name().to_string();
            let mut db = Database::new(sys.clone(), cc, init.clone());
            let stats = db.run_round_robin(&ids, 3000).expect("completes");
            prop_assert_eq!(stats.metrics.commits, sys.num_txns(), "{}", name);
            // Each commit requires at least its steps to have executed.
            let min_steps: usize = sys.format().iter().map(|&m| m as usize).sum();
            prop_assert!(stats.metrics.steps_executed >= min_steps);
        }
    }
}
