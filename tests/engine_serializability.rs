//! Engine-level integration: every concurrency control must be
//! state-serializable and lose no committed work, across random systems,
//! workload mixes and driver orders.
//!
//! The serializability oracle: the committed state must equal the state of
//! SOME serial execution of the committed transactions. All five
//! single-version mechanisms and MVTO are held to it. **Snapshot isolation
//! is deliberately exempt** — SI validates writes but never reads, so it
//! admits non-serializable histories (write skew); the exemption is pinned
//! as its own property below and the concrete anomaly is demonstrated in
//! `tests/mv_anomalies.rs`.

use ccopt::engine::cc::{
    ConcurrencyControl, MvtoCc, OccCc, SerialCc, SgtCc, SiCc, Strict2plCc, TimestampCc,
};
use ccopt::engine::db::Database;
use ccopt::model::exec::Executor;
use ccopt::model::ids::TxnId;
use ccopt::model::random::{random_system, RandomConfig};
use ccopt::model::state::GlobalState;
use ccopt::schedule::schedule::permutations;
use proptest::prelude::*;

/// The mechanisms held to the serializability oracle (SI exempt, see above).
fn serializable_ccs() -> Vec<Box<dyn ConcurrencyControl>> {
    vec![
        Box::new(SerialCc::default()),
        Box::new(Strict2plCc::default()),
        Box::new(SgtCc::default()),
        Box::new(TimestampCc::default()),
        Box::new(OccCc::default()),
        Box::new(MvtoCc::default()),
    ]
}

/// Workload axis: a write-heavy mix and a read-mixed one (where the
/// multi-version snapshot path actually diverges from in-place storage).
fn cfg(read_fraction: f64) -> RandomConfig {
    RandomConfig {
        num_txns: 3,
        steps_per_txn: (1, 3),
        num_vars: 2,
        read_fraction,
        hot_fraction: 0.3,
        num_check_states: 1,
        value_range: (-2, 2),
    }
}

fn read_mix(which: usize) -> f64 {
    [0.0, 0.35][which % 2]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// The committed state equals SOME serial execution's state, for every
    /// serializable CC, every workload mix, and every round-robin order.
    #[test]
    fn state_serializability(seed in 0u64..400, perm in 0usize..6, mix in 0usize..2) {
        let sys = random_system(&cfg(read_mix(mix)), seed);
        let init = sys.space.initial_states[0].clone();
        let ex = Executor::new(&sys);
        let ids: Vec<TxnId> = (0..sys.num_txns() as u32).map(TxnId).collect();
        let serial_states: Vec<GlobalState> = permutations(&ids)
            .into_iter()
            .map(|o| ex.run_concatenation(init.clone(), &o).expect("serial runs"))
            .collect();
        let orders = permutations(&ids);
        let order = &orders[perm % orders.len()];
        for cc in serializable_ccs() {
            let name = cc.name().to_string();
            let mut db = Database::new(sys.clone(), cc, init.clone());
            let stats = db.run_round_robin(order, 3000);
            prop_assert!(stats.is_some(), "{name} stalled (seed {seed})");
            prop_assert!(db.all_committed());
            let fin = db.globals();
            prop_assert!(
                serial_states.contains(&fin),
                "{name} reached non-serializable state {fin} (seed {seed}, order {order:?})"
            );
        }
    }

    /// Conservation: commits equal the number of transactions; metrics are
    /// internally consistent. SI is included — it must still commit
    /// everything and count its write-write aborts within its aborts even
    /// though it is exempt from the serializability oracle.
    #[test]
    fn conservation(seed in 0u64..400, mix in 0usize..2) {
        let sys = random_system(&cfg(read_mix(mix)), seed);
        let init = sys.space.initial_states[0].clone();
        let ids: Vec<TxnId> = (0..sys.num_txns() as u32).map(TxnId).collect();
        let ccs: Vec<Box<dyn ConcurrencyControl>> = {
            let mut v = serializable_ccs();
            v.push(Box::new(SiCc::default()));
            v
        };
        for cc in ccs {
            let name = cc.name().to_string();
            let mut db = Database::new(sys.clone(), cc, init.clone());
            let stats = db.run_round_robin(&ids, 3000).expect("completes");
            prop_assert_eq!(stats.metrics.commits, sys.num_txns(), "{}", name);
            // Each commit requires at least its steps to have executed.
            let min_steps: usize = sys.format().iter().map(|&m| m as usize).sum();
            prop_assert!(stats.metrics.steps_executed >= min_steps);
            prop_assert!(stats.metrics.mv_write_aborts <= stats.metrics.aborts, "{}", name);
        }
    }

    /// SI is exempt from the serializability oracle, but it must still
    /// admit and commit every transaction it is given. (The write-skew
    /// counterexample that justifies the exemption lives in
    /// `tests/mv_anomalies.rs`.)
    #[test]
    fn si_commits_everything_it_admits(seed in 0u64..400) {
        let sys = random_system(&cfg(0.35), seed);
        let init = sys.space.initial_states[0].clone();
        let ids: Vec<TxnId> = (0..sys.num_txns() as u32).map(TxnId).collect();
        let mut db = Database::new(sys.clone(), Box::new(SiCc::default()), init);
        let stats = db.run_round_robin(&ids, 3000).expect("SI completes");
        prop_assert!(db.all_committed());
        prop_assert_eq!(stats.metrics.commits, sys.num_txns());
    }
}
