//! Cross-crate integration: the locking machinery and its geometric view
//! must agree.

use ccopt::geometry::curve::schedule_to_path;
use ccopt::geometry::deadlock::DeadlockAnalysis;
use ccopt::geometry::nd::GridAnalysis;
use ccopt::geometry::space::ProgressSpace;
use ccopt::locking::analysis::output_set;
use ccopt::locking::conservative::ConservativePolicy;
use ccopt::locking::policy::LockingPolicy;
use ccopt::locking::two_phase::TwoPhasePolicy;
use ccopt::model::ids::TxnId;
use ccopt::model::random::{random_system, RandomConfig};
use ccopt::schedule::enumerate::all_schedules;
use ccopt::schedule::graph::is_csr;
use proptest::prelude::*;

fn cfg() -> RandomConfig {
    RandomConfig {
        num_txns: 2,
        steps_per_txn: (1, 3),
        num_vars: 3,
        read_fraction: 0.0,
        hot_fraction: 0.2,
        num_check_states: 2,
        value_range: (-2, 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A schedule is an LRS output iff its locked execution traces a
    /// monotone block-avoiding staircase — the Section 5.3 correspondence.
    #[test]
    fn lrs_outputs_equal_block_avoiding_paths(seed in 0u64..300) {
        let sys = random_system(&cfg(), seed);
        let lts = TwoPhasePolicy.transform(&sys.syntax);
        let out = output_set(&lts);
        prop_assert!(out.complete);
        let sp = ProgressSpace::new(&lts, TxnId(0), TxnId(1));
        for h in all_schedules(&sys.format()) {
            let in_output = out.schedules.contains(&h);
            let path = schedule_to_path(&lts, &h);
            match path {
                Some(p) => {
                    prop_assert!(p.avoids_blocks(&sp), "path through a block for {h}");
                    prop_assert!(in_output, "{h} traces a path but is not an output");
                }
                None => prop_assert!(!in_output, "{h} is an output but has no path"),
            }
        }
    }

    /// Every 2PL output is conflict-serializable (correctness of 2PL).
    #[test]
    fn two_pl_outputs_are_csr(seed in 0u64..300) {
        let sys = random_system(&cfg(), seed);
        let lts = TwoPhasePolicy.transform(&sys.syntax);
        for h in output_set(&lts).schedules {
            prop_assert!(is_csr(&sys.syntax, &h), "2PL emitted non-CSR {h}");
        }
    }

    /// The LRS enumeration sees a deadlock state iff the geometric
    /// deadlock region is non-empty (two transactions).
    #[test]
    fn deadlock_enumeration_matches_geometry(seed in 0u64..300) {
        let sys = random_system(&cfg(), seed);
        let lts = TwoPhasePolicy.transform(&sys.syntax);
        let out = output_set(&lts);
        let sp = ProgressSpace::new(&lts, TxnId(0), TxnId(1));
        let an = DeadlockAnalysis::new(&sp);
        prop_assert_eq!(out.deadlock_states > 0, !an.deadlock_free());
    }

    /// Conservative (ordered, at-start) locking is deadlock-free: the
    /// geometric doomed region is empty on every random system.
    #[test]
    fn conservative_locking_has_empty_deadlock_region(seed in 0u64..300) {
        let sys = random_system(&cfg(), seed);
        let lts = ConservativePolicy.transform(&sys.syntax);
        let sp = ProgressSpace::new(&lts, TxnId(0), TxnId(1));
        let an = DeadlockAnalysis::new(&sp);
        prop_assert!(an.deadlock_free(), "doomed points: {:?}", an.deadlock_region());
        prop_assert_eq!(output_set(&lts).deadlock_states, 0);
    }

    /// The 2-D and n-D analyses agree on two-transaction systems.
    #[test]
    fn nd_matches_2d(seed in 0u64..200) {
        let sys = random_system(&cfg(), seed);
        let lts = TwoPhasePolicy.transform(&sys.syntax);
        let nd = GridAnalysis::new(&lts);
        let sp = ProgressSpace::new(&lts, TxnId(0), TxnId(1));
        let d2 = DeadlockAnalysis::new(&sp);
        prop_assert_eq!(nd.forbidden_points, sp.forbidden_points());
        prop_assert_eq!(nd.doomed_points, d2.deadlock_region().len());
    }
}

#[test]
fn three_transaction_deadlock_is_caught_by_the_grid() {
    use ccopt::model::syntax::SyntaxBuilder;
    let syn = SyntaxBuilder::new()
        .txn("T1", |t| t.update("x").update("y"))
        .txn("T2", |t| t.update("y").update("z"))
        .txn("T3", |t| t.update("z").update("x"))
        .build();
    let lts = TwoPhasePolicy.transform(&syn);
    let nd = GridAnalysis::new(&lts);
    assert!(!nd.deadlock_free());
    // The LRS enumeration agrees.
    let out = output_set(&lts);
    assert!(out.deadlock_states > 0);
    assert!(out.complete);
}
