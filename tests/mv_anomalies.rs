//! The family boundary the paper's information hierarchy predicts, pinned
//! as a regression test: **snapshot isolation admits write skew**, the
//! canonical non-serializable anomaly, while MVTO, strict 2PL and SGT all
//! refuse it on the very same interleaving.
//!
//! The system is the textbook skew pair over `x, y` with disjoint write
//! sets (so SI's first-committer-wins validation never fires):
//!
//! ```text
//! T1: r(x); w(y := x)        T2: r(y); w(x := y)
//! ```
//!
//! From `(x, y) = (0, 1)` the two serial executions produce `(0, 0)` and
//! `(1, 1)`. Run concurrently under SI, both transactions read the initial
//! snapshot and commit `(1, 0)` — a state no serial execution reaches.

use ccopt::engine::cc::{ConcurrencyControl, MvtoCc, SgtCc, SiCc, Strict2plCc};
use ccopt::engine::db::Database;
use ccopt::model::expr::Expr;
use ccopt::model::ic::TrueIc;
use ccopt::model::ids::TxnId;
use ccopt::model::interp::ExprInterpretation;
use ccopt::model::state::GlobalState;
use ccopt::model::syntax::SyntaxBuilder;
use ccopt::model::system::{StateSpace, TransactionSystem};
use std::sync::Arc;

fn skew_pair() -> TransactionSystem {
    let syntax = SyntaxBuilder::new()
        .vars(["x", "y"])
        .txn("T1", |t| t.read("x").write("y"))
        .txn("T2", |t| t.read("y").write("x"))
        .build();
    let interp = ExprInterpretation::new(vec![
        vec![Expr::Local(0), Expr::Local(0)], // t11 = x; y <- t11
        vec![Expr::Local(0), Expr::Local(0)], // t21 = y; x <- t21
    ]);
    interp.validate(&syntax).expect("skew interpretation");
    TransactionSystem::new(
        "write-skew",
        syntax,
        Arc::new(interp),
        Arc::new(TrueIc),
        StateSpace::from_ints(&[&[0, 1]]),
    )
}

fn serial_states() -> [GlobalState; 2] {
    [
        GlobalState::from_ints(&[0, 0]), // T1 then T2
        GlobalState::from_ints(&[1, 1]), // T2 then T1
    ]
}

/// Drive the crossing interleaving: both transactions read before either
/// writes. Returns the final state once everything committed.
fn run_crossed(cc: Box<dyn ConcurrencyControl>) -> (GlobalState, usize) {
    let sys = skew_pair();
    let init = sys.space.initial_states[0].clone();
    let mut db = Database::new(sys, cc, init);
    // r(x) by T1, r(y) by T2, then the writes; aborted or waiting
    // transactions are driven to completion afterwards.
    let _ = db.step(TxnId(0));
    let _ = db.step(TxnId(1));
    let _ = db.step(TxnId(0));
    let _ = db.step(TxnId(1));
    db.run_round_robin(&[TxnId(0), TxnId(1)], 1000)
        .expect("completes");
    (db.globals(), db.metrics.aborts)
}

#[test]
fn snapshot_isolation_admits_write_skew() {
    let (fin, aborts) = run_crossed(Box::new(SiCc::default()));
    // Disjoint write sets: first-committer-wins passes both, no aborts.
    assert_eq!(aborts, 0, "SI must admit the skew without restarts");
    // Both read the (0, 1) snapshot: x <- old y = 1, y <- old x = 0.
    assert_eq!(
        fin,
        GlobalState::from_ints(&[1, 0]),
        "SI write skew: both transactions read the initial snapshot"
    );
    assert!(
        !serial_states().contains(&fin),
        "the skew state must not be reachable by any serial execution"
    );
}

#[test]
fn serializable_mechanisms_refuse_write_skew() {
    for cc in [
        Box::new(MvtoCc::default()) as Box<dyn ConcurrencyControl>,
        Box::new(Strict2plCc::default()),
        Box::new(SgtCc::default()),
    ] {
        let name = cc.name().to_string();
        let (fin, _) = run_crossed(cc);
        assert!(
            serial_states().contains(&fin),
            "{name} produced non-serial state {fin} on the skew interleaving"
        );
    }
}
