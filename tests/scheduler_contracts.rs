//! Contract tests every online scheduler must satisfy, randomized over
//! systems and histories.

use ccopt::core::scheduler::run_scheduler;
use ccopt::model::random::{random_system, RandomConfig};
use ccopt::schedule::enumerate::sample_schedule;
use ccopt::schedule::graph::is_csr;
use ccopt::schedule::herbrand::HerbrandCtx;
use ccopt::schedule::sr::is_sr;
use ccopt::schedulers::suite::scheduler_suite;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn cfg() -> RandomConfig {
    RandomConfig {
        num_txns: 3,
        steps_per_txn: (1, 3),
        num_vars: 3,
        read_fraction: 0.2,
        hot_fraction: 0.1,
        num_check_states: 2,
        value_range: (-2, 2),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every scheduler's output is a legal schedule (each step once, in
    /// program order), for random histories of random systems.
    #[test]
    fn outputs_are_legal(seed in 0u64..500, hseed in 0u64..500) {
        let sys = random_system(&cfg(), seed);
        let format = sys.format();
        let mut rng = SmallRng::seed_from_u64(hseed);
        let h = sample_schedule(&format, &mut rng);
        for mut s in scheduler_suite(&sys) {
            let run = run_scheduler(s.as_mut(), &h);
            prop_assert!(
                run.output.is_legal(&format),
                "{} emitted illegal output for {h}",
                s.name()
            );
        }
    }

    /// When a run needed no forced flush, syntactic schedulers stay inside
    /// CSR ⊆ SR — the correctness contract of delay-based operation.
    #[test]
    fn unforced_outputs_are_serializable(seed in 0u64..300, hseed in 0u64..300) {
        let sys = random_system(&cfg(), seed);
        let format = sys.format();
        let ctx = HerbrandCtx::for_system(&sys);
        let mut rng = SmallRng::seed_from_u64(hseed);
        let h = sample_schedule(&format, &mut rng);
        for mut s in scheduler_suite(&sys) {
            if s.name() == "serial" {
                continue; // serial outputs are serial: checked below
            }
            if s.name() == "OCC" {
                // OCC's validation models the Kung-Robinson *deferred*
                // write phase; the grant order therefore does not claim
                // serializability as an in-place execution order. The
                // corresponding correctness property lives at the engine
                // layer (tests/engine_serializability.rs), where writes
                // really are deferred.
                continue;
            }
            let run = run_scheduler(s.as_mut(), &h);
            if run.forced == 0 {
                prop_assert!(
                    is_csr(&sys.syntax, &run.output) || is_sr(&ctx, &run.output),
                    "{} unforced output {} is not serializable (input {h})",
                    s.name(),
                    run.output
                );
            }
        }
    }

    /// The serial scheduler always emits serial schedules.
    #[test]
    fn serial_scheduler_emits_serial(seed in 0u64..300, hseed in 0u64..300) {
        let sys = random_system(&cfg(), seed);
        let format = sys.format();
        let mut rng = SmallRng::seed_from_u64(hseed);
        let h = sample_schedule(&format, &mut rng);
        let mut suite = scheduler_suite(&sys);
        let run = run_scheduler(suite[0].as_mut(), &h);
        prop_assert!(run.output.is_serial());
        prop_assert_eq!(run.forced, 0);
    }

    /// Fixpoint runs reproduce the input exactly.
    #[test]
    fn fixpoints_pass_untouched(seed in 0u64..300) {
        let sys = random_system(&cfg(), seed);
        let format = sys.format();
        // Serial histories are fixpoints of everything in the suite.
        let serial = ccopt::schedule::schedule::Schedule::all_serials(&format)
            .into_iter()
            .next()
            .expect("non-empty");
        for mut s in scheduler_suite(&sys) {
            let run = run_scheduler(s.as_mut(), &serial);
            prop_assert!(run.no_delays, "{} delayed a serial history", s.name());
            prop_assert_eq!(&run.output, &serial);
        }
    }
}
