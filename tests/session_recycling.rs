//! Differential property: a transaction run in a **recycled** dense slot
//! behaves identically — operation outcomes, observed values, metric
//! deltas, final state — to the same transaction in a **fresh** database
//! that starts from the warmed-up state. Across all 7 mechanisms, which
//! covers both store kinds (single-version with undo logs, multi-version
//! with GC'd chains).
//!
//! The warm database first serves a concurrent batch of random sessions
//! (with restarts, client abandons, and retirements — so the probe's slot
//! really was occupied, dirtied and recycled, possibly several times);
//! the fresh database is constructed directly from the warm one's
//! committed state. Any leak of per-slot CC state, write-buffer content,
//! undo entries, or version bookkeeping across retirement shows up as a
//! divergence.

use ccopt::engine::cc::{
    ConcurrencyControl, MvtoCc, OccCc, SerialCc, SgtCc, SiCc, Strict2plCc, TimestampCc,
};
use ccopt::engine::session::{Op, SessionDb, Txn};
use ccopt::engine::Metrics;
use ccopt::model::ids::VarId;
use ccopt::model::state::GlobalState;
use ccopt::model::syntax::StepKind;
use ccopt::model::value::Value;
use ccopt::sim::open_sim::{submit_op, OpSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const VARS: usize = 4;

fn make_cc(idx: usize) -> Box<dyn ConcurrencyControl> {
    match idx {
        0 => Box::new(SerialCc::default()),
        1 => Box::new(Strict2plCc::default()),
        2 => Box::new(SgtCc::default()),
        3 => Box::new(TimestampCc::default()),
        4 => Box::new(OccCc::default()),
        5 => Box::new(MvtoCc::default()),
        _ => Box::new(SiCc::default()),
    }
}

/// Draw a random program of the open-world [`OpSpec`] shape (the op
/// semantics — affine update, blind write, modular bound — live in one
/// place, `ccopt::sim::open_sim`, shared with the simulator).
fn gen_program(rng: &mut SmallRng, len: (usize, usize)) -> Vec<OpSpec> {
    let n = rng.gen_range(len.0..=len.1);
    (0..n)
        .map(|_| {
            let kind = match rng.gen_range(0..4u32) {
                0 => StepKind::Read,
                1 => StepKind::Write,
                _ => StepKind::Update,
            };
            OpSpec {
                var: VarId(rng.gen_range(0..VARS as u32)),
                kind,
                a: [1i64, 1, 2, -1][rng.gen_range(0..4usize)],
                c: rng.gen_range(-2i64..=2),
            }
        })
        .collect()
}

/// Drive a concurrent batch of sessions to completion: a round-robin sweep
/// with replay-on-restart, commit-and-retire at the end, a random fifth of
/// them abandoned mid-flight (client abort), and a stall valve mirroring
/// the engine's round-robin driver.
fn warmup(db: &mut SessionDb, rng: &mut SmallRng, sessions: usize) {
    struct Live {
        h: Txn,
        prog: Vec<OpSpec>,
        next: usize,
        /// Abandon (client-abort) after this many ops instead of committing.
        abandon_at: Option<usize>,
        done: bool,
    }
    let mut live: Vec<Live> = (0..sessions)
        .map(|_| {
            let prog = gen_program(rng, (2, 5));
            let abandon_at = if rng.gen_range(0..5u32) == 0 {
                Some(rng.gen_range(0..=prog.len()))
            } else {
                None
            };
            Live {
                h: db.begin(),
                prog,
                next: 0,
                abandon_at,
                done: false,
            }
        })
        .collect();
    // Phase 1: concurrent round-robin sweeps (restart ping-pong between
    // mechanisms like T/O can keep this phase from converging — that is a
    // scheduling artifact of the lockstep driver, handled by phase 2).
    for _sweep in 0..500 {
        let mut progressed = false;
        let mut all_done = true;
        for s in live.iter_mut() {
            if s.done {
                continue;
            }
            all_done = false;
            if s.abandon_at == Some(s.next) {
                db.abort(s.h).expect("live handle");
                s.done = true;
                progressed = true;
                continue;
            }
            if s.next == s.prog.len() {
                match db.commit(s.h).expect("live handle") {
                    Op::Done(()) => {
                        db.retire(s.h).expect("committed");
                        s.done = true;
                        progressed = true;
                    }
                    Op::Restarted => {
                        s.next = 0;
                        progressed = true;
                    }
                    Op::Wait => {}
                }
            } else {
                match submit_op(db, s.h, s.prog[s.next]) {
                    Op::Done(_) => {
                        s.next += 1;
                        progressed = true;
                    }
                    Op::Restarted => {
                        s.next = 0;
                        progressed = true;
                    }
                    Op::Wait => {}
                }
            }
        }
        if all_done {
            return;
        }
        if !progressed {
            // Everyone waited: restart the first waiter (the engine's
            // live-lock safety valve).
            let s = live.iter_mut().find(|s| !s.done).expect("not all done");
            db.restart(s.h).expect("live handle");
            s.next = 0;
        }
    }
    // Phase 2: serialize the stragglers. Restart every other unfinished
    // session (dropping its locks, stamps and pending writes), then drive
    // the chosen one solo to completion; repeat. Always converges.
    for i in 0..live.len() {
        if live[i].done {
            continue;
        }
        'one: for _attempt in 0..10_000 {
            for (k, other) in live.iter_mut().enumerate() {
                if k != i && !other.done {
                    db.restart(other.h).expect("live handle");
                    other.next = 0;
                }
            }
            let s = &mut live[i];
            if s.abandon_at == Some(s.next) {
                db.abort(s.h).expect("live handle");
                s.done = true;
                break 'one;
            }
            let outcome = if s.next == s.prog.len() {
                db.commit(s.h)
                    .expect("live handle")
                    .map_done(|()| Value::Int(0))
            } else {
                submit_op(db, s.h, s.prog[s.next])
            };
            match outcome {
                Op::Done(_) if s.next == s.prog.len() => {
                    db.retire(s.h).expect("committed");
                    s.done = true;
                    break 'one;
                }
                Op::Done(_) => s.next += 1,
                Op::Restarted => s.next = 0,
                Op::Wait => {}
            }
        }
        assert!(live[i].done, "serialized straggler did not converge");
    }
}

/// Execute the probe solo and record everything observable.
fn run_probe(db: &mut SessionDb, prog: &[OpSpec]) -> (Vec<Value>, GlobalState, Metrics, u32) {
    let before = db.metrics;
    let h = db.begin();
    let mut observed = Vec::with_capacity(prog.len());
    for &op in prog {
        match submit_op(db, h, op) {
            Op::Done(v) => observed.push(v),
            other => panic!("solo probe must execute directly, got {other:?}"),
        }
    }
    assert_eq!(db.commit(h), Ok(Op::Done(())));
    let attempts = db.attempts(h).expect("committed handle");
    db.retire(h).expect("committed handle");
    let after = db.metrics;
    let delta = Metrics {
        steps_executed: after.steps_executed - before.steps_executed,
        waits: after.waits - before.waits,
        aborts: after.aborts - before.aborts,
        commits: after.commits - before.commits,
        mv_write_aborts: after.mv_write_aborts - before.mv_write_aborts,
        versions_installed: after.versions_installed - before.versions_installed,
        // GC and chain gauges depend on the surrounding history, not the
        // probe's behavior: excluded from the differential. WAL counters
        // stay zero here (these databases run without durability).
        versions_reclaimed: 0,
        max_chain_len: 0,
        retires: after.retires - before.retires,
        ..Metrics::default()
    };
    (observed, db.globals(), delta, attempts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The differential: warm (recycled slots) vs fresh (virgin slots),
    /// same probe, identical behavior — exhaustively over all 7
    /// mechanisms per generated case.
    #[test]
    fn recycled_slot_is_indistinguishable_from_fresh(seed in 0u64..400) {
        for cc_idx in 0..7usize {
        let mut rng = SmallRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(cc_idx as u64));
        let init = GlobalState::from_ints(&[0; VARS]);

        // Warm database: concurrent batch, everything finished and retired.
        let mut warm = SessionDb::with_capacity(make_cc(cc_idx), init, 5);
        warmup(&mut warm, &mut rng, 5);
        prop_assert_eq!(warm.open_sessions(), 0, "warmup must retire everything");
        prop_assert_eq!(warm.pending_retires(), 0, "quiescent retirement must drain");
        let warmed_state = warm.globals();
        let slots_before_probe = warm.num_slots();
        prop_assert!(slots_before_probe >= 1);

        // The probe program, run in a recycled slot of the warm database...
        let probe = gen_program(&mut rng, (3, 6));
        let (obs_w, fin_w, delta_w, attempts_w) = run_probe(&mut warm, &probe);
        prop_assert_eq!(
            warm.num_slots(),
            slots_before_probe,
            "the probe must recycle a retired slot, not grow the table"
        );

        // ... and in slot 0 of a fresh database starting from the same state.
        let mut fresh = SessionDb::new(make_cc(cc_idx), warmed_state);
        let (obs_f, fin_f, delta_f, attempts_f) = run_probe(&mut fresh, &probe);

        prop_assert_eq!(&obs_w, &obs_f, "observed values diverged (cc {})", cc_idx);
        prop_assert_eq!(&fin_w, &fin_f, "final state diverged (cc {})", cc_idx);
        prop_assert_eq!(delta_w, delta_f, "metric deltas diverged (cc {})", cc_idx);
        prop_assert_eq!(attempts_w, 1u32);
        prop_assert_eq!(attempts_f, 1u32);
        }
    }
}
