//! End-to-end theorem verification beyond the canonical systems.

use ccopt::core::adversary::{semantic_family, syntactic_family};
use ccopt::core::theorems::{isomorphism_check, theorem1, theorem2, theorem3, theorem4};
use ccopt::model::random::{random_system, RandomConfig};
use ccopt::model::systems;
use ccopt::schedule::wsr::WsrOptions;
use proptest::prelude::*;

#[test]
fn theorem2_on_three_transactions() {
    let report = theorem2(&[2, 2, 1]);
    assert!(report.holds(), "{:?}", report.violations);
    assert!(report.checked > 20);
}

#[test]
fn theorem3_on_the_counter_syntax() {
    let sys = systems::thm2_adversary();
    let report = theorem3(&sys, 20, 3);
    assert!(report.holds(), "{:?}", report.violations);
}

#[test]
fn theorem4_on_fig3_pair() {
    let sys = systems::fig3_pair();
    let report = theorem4(&sys, 6, WsrOptions::default());
    assert!(report.holds(), "{:?}", report.violations);
}

#[test]
fn theorem1_on_a_format_family() {
    // Family built from the format alone (coarsest information).
    let family = ccopt::core::adversary::format_family(&[2, 1], 2, 24);
    assert!(!family.is_empty());
    let report = theorem1(&family, &[2, 1]);
    assert!(report.holds(), "{:?}", report.violations);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The isomorphism (I ⊆ I' ⇒ P ⊇ P') holds on random systems.
    #[test]
    fn isomorphism_on_random_systems(seed in 0u64..200) {
        let cfg = RandomConfig {
            num_txns: 2,
            steps_per_txn: (1, 2),
            num_vars: 2,
            read_fraction: 0.0,
            hot_fraction: 0.3,
            num_check_states: 2,
            value_range: (-2, 2),
        };
        let sys = random_system(&cfg, seed);
        let report = isomorphism_check(&sys);
        prop_assert!(report.holds(), "{:?}", report.violations);
    }

    /// Theorem 1 over syntactic families of random systems: the
    /// intersection of C(T') is an upper bound witnessed by adversaries.
    #[test]
    fn theorem1_on_random_syntax(seed in 0u64..100) {
        let cfg = RandomConfig {
            num_txns: 2,
            steps_per_txn: (1, 2),
            num_vars: 1,
            read_fraction: 0.0,
            hot_fraction: 0.0,
            num_check_states: 1,
            value_range: (-1, 1),
        };
        let sys = random_system(&cfg, seed);
        let family = syntactic_family(&sys.syntax, 30);
        prop_assert!(!family.is_empty());
        let report = theorem1(&family, &sys.format());
        prop_assert!(report.holds(), "{:?}", report.violations);
    }

    /// Semantic families keep the basic assumption and share projections.
    #[test]
    fn semantic_family_is_well_formed(seed in 0u64..100) {
        let cfg = RandomConfig {
            num_txns: 2,
            steps_per_txn: (1, 2),
            num_vars: 2,
            read_fraction: 0.2,
            hot_fraction: 0.0,
            num_check_states: 2,
            value_range: (-2, 2),
        };
        let sys = random_system(&cfg, seed);
        for member in semantic_family(&sys, 6) {
            prop_assert!(
                ccopt::model::Executor::new(&member).verify_basic_assumption().is_ok()
            );
            prop_assert_eq!(&member.syntax, &sys.syntax);
        }
    }
}
